//! Offline stand-in for the `serde` facade.
//!
//! The container has no route to crates.io, so this shim keeps the
//! `#[derive(Serialize, Deserialize)]` annotations across the workspace
//! compiling without pulling in the real crate. The traits are empty markers
//! with blanket impls and the derives are no-ops; anything that actually
//! needs to serialize uses the hand-rolled `lfi_json` crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
