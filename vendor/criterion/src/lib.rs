//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking API surface the workspace's benches use —
//! `Criterion::{bench_function, benchmark_group}`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock harness: each
//! benchmark runs a warm-up pass and `sample_size` timed samples, then
//! prints the per-iteration mean, min, and max.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id: `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iterations: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, called `iterations` times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iterations as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up sample, discarded.
    let mut bencher = Bencher {
        iterations: 1,
        samples: Vec::new(),
    };
    f(&mut bencher);

    let mut bencher = Bencher {
        iterations: 1,
        samples: Vec::new(),
    };
    for _ in 0..sample_size.max(1) {
        f(&mut bencher);
    }
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label:<40} (no samples: bencher.iter was never called)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!("{label:<40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}");
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Run an unparameterized benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.effective_sample_size(), &mut f);
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut calls = 0u32;
        let mut criterion = Criterion::default();
        criterion.bench_function("counter", |b| b.iter(|| calls += 1));
        // One warm-up + 10 samples, one iteration each.
        assert_eq!(calls, 11);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut calls = 0u32;
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, _| {
            b.iter(|| calls += 1)
        });
        group.finish();
        assert_eq!(calls, 4);
    }
}
