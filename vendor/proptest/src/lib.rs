//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the subset of the proptest API the workspace's property tests use:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, integer-range and
//! regex-subset string strategies, tuple/`Vec` composition,
//! `collection::{vec, btree_map}`, `option::of`, `bool::ANY`, `any::<T>()`,
//! `prop_oneof!`, and the [`proptest!`] macro itself.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible runs,
//! no environment variables), and failing cases are *not* shrunk — the
//! panic message simply carries the failing assertion.

use std::marker::PhantomData;
use std::ops::Range;

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

// ---------------------------------------------------------------------------
// RNG.
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used to produce test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator from an arbitrary string (e.g. the test name), so
    /// every test gets its own reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.start + 1 >= range.end {
            return range.start;
        }
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Config.
// ---------------------------------------------------------------------------

/// Per-block configuration (only the knobs the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy.
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Build a second strategy from each generated value and sample it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        })*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A `Vec` of strategies generates element-wise (proptest's `Vec<S>` impl).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// any::<T>().
// ---------------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

// ---------------------------------------------------------------------------
// String strategies from a regex subset.
// ---------------------------------------------------------------------------

enum Atom {
    /// Characters the atom may produce.
    Class(Vec<char>),
    /// `{min, max}` repetitions (inclusive).
    Quantified(Vec<char>, usize, usize),
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7F).map(char::from).collect()
}

/// Parse the regex subset used in scenario tests: character classes
/// (`[a-z0-9_.]`), `\PC` (printable), literal characters, and `{m,n}` /
/// `{m}` / `?` / `+` / `*` quantifiers.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<char> = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing `]`
                set
            }
            '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                i += 3;
                printable_ascii()
            }
            '\\' => {
                let c = chars.get(i + 1).copied().unwrap_or('\\');
                i += 2;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                let close = close.expect("unterminated `{` quantifier in pattern");
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => {
                atoms.push(Atom::Class(class));
                continue;
            }
        };
        atoms.push(Atom::Quantified(class, min, max));
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let (class, count) = match atom {
                Atom::Class(class) => (class, 1),
                Atom::Quantified(class, min, max) => {
                    let count = rng.usize_in(min..max + 1);
                    (class, count)
                }
            };
            if class.is_empty() {
                continue;
            }
            for _ in 0..count {
                let index = rng.below(class.len() as u64) as usize;
                out.push(class[index]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collection / option / bool modules.
// ---------------------------------------------------------------------------

pub mod collection {
    //! Strategies over collections.

    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec`s of `size` elements drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vectors whose lengths fall in `size` (half-open, like proptest).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s built from key/value strategies.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Maps with up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod option {
    //! Strategies over `Option`.

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (see [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` or `Some(value)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    //! Strategies over `bool`.

    use super::{Strategy, TestRng};

    /// Strategy producing both booleans (see [`ANY`]).
    pub struct AnyBool;

    /// Either boolean, uniformly.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert within a property (no shrinking; forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property (forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property (forwards to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( @cfg($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        let strat = (0u64..10, -5i64..5);
        for _ in 0..256 {
            let (a, b) = Strategy::generate(&strat, &mut rng);
            assert!(a < 10);
            assert!((-5..5).contains(&b));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::from_name("pattern");
        for _ in 0..128 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,10}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 11, "bad length: {s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_pattern_has_no_controls() {
        let mut rng = TestRng::from_name("printable");
        for _ in 0..64 {
            let s = Strategy::generate(&"\\PC{0,300}", &mut rng);
            assert!(s.len() <= 300);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::from_name("oneof");
        let strat = prop_oneof![Just(0usize), Just(1), Just(2)];
        let mut seen = [false; 3];
        for _ in 0..128 {
            seen[Strategy::generate(&strat, &mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, flag in crate::bool::ANY) {
            prop_assert!(x < 100);
            let _ = flag;
        }
    }
}
