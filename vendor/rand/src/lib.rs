//! Offline stand-in for the `rand` crate.
//!
//! Provides the small slice of the rand 0.8 API the workspace uses:
//! `Rng::{gen, gen_bool, gen_range}`, `SeedableRng::seed_from_u64`, and a
//! deterministic `rngs::StdRng`. The generator is SplitMix64 — not
//! cryptographic, but uniform, fast, and fully reproducible from a seed,
//! which is exactly what deterministic fault-injection runs need.

use std::ops::Range;

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of real rand, flattened into a trait).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {
        $(impl Standard for $ty {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait RangeSample: Copy {
    /// Draw a value uniformly from `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($ty:ty),*) => {
        $(impl RangeSample for $ty {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $ty
            }
        })*
    };
}

impl_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The random-number-generator interface.
pub trait Rng {
    /// The core primitive: the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        let roll = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        roll < p
    }

    /// Draw a value uniformly from the half-open `range`.
    fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..256 {
            let v = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits");
    }
}
