//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the API surface the workspace uses is provided: `Mutex` with a
//! non-poisoning `lock()`. Poisoned std locks are recovered transparently,
//! matching parking_lot's behavior of not propagating panics through locks.

use std::fmt;
use std::sync::{self, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard { inner }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
