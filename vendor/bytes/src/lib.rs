//! Offline stand-in for the `bytes` crate.
//!
//! Implements the little slice of `Buf`/`BufMut` the object-format code
//! uses: little-endian integer reads on `&[u8]` (advancing the slice, like
//! the real crate) and integer/slice writes on `Vec<u8>`.

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `n` bytes. Panics if fewer than `n` remain.
    fn advance(&mut self, n: usize);

    /// Copy `dst.len()` bytes out, advancing. Panics if too few remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Append-only write cursor.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_integers() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xyz");

        let mut cursor = &out[..];
        assert_eq!(cursor.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn advance_skips_bytes() {
        let data = [1u8, 2, 3, 4];
        let mut cursor = &data[..];
        cursor.advance(2);
        assert_eq!(cursor.get_u8(), 3);
    }
}
