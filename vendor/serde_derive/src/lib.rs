//! No-op stand-ins for serde's `Serialize`/`Deserialize` derives.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serde facade. The derives expand to nothing;
//! the sibling `serde` shim provides blanket trait impls so `T: Serialize`
//! bounds stay satisfiable. Real serialization in this codebase goes through
//! `lfi_json` instead.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
