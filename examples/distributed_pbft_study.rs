//! Studying the behaviour of a distributed system under failures (§7.3):
//! run the bft-lite replication cluster while a distributed trigger injects
//! faults into the inter-replica communication according to a global policy.
//!
//! Run with: `cargo run --release --example distributed_pbft_study`

use std::collections::BTreeMap;

use lfi::core::{DistributedController, DistributedPolicy, FunctionAssoc, Scenario, TriggerDecl};
use lfi::prelude::*;
use lfi::targets::{run_bft_cluster, BftClusterConfig};

fn loss_scenario() -> Scenario {
    let mut scenario = Scenario::new().with_trigger(TriggerDecl {
        id: "net".into(),
        class: "DistributedTrigger".into(),
        params: BTreeMap::new(),
        frames: vec![],
    });
    for function in ["sendto", "recvfrom"] {
        scenario.functions.push(FunctionAssoc {
            function: function.into(),
            argc: 5,
            retval: Some(-1),
            errno: Some(lfi::arch::errno::EIO),
            triggers: vec!["net".into()],
        });
    }
    scenario
}

fn run_policy(label: &str, policy: DistributedPolicy) -> f64 {
    let coordinator = DistributedController::new(policy, 42);
    let mut registry = TriggerRegistry::default();
    coordinator.register(&mut registry);
    let result = run_bft_cluster(&BftClusterConfig {
        requests: 6,
        scenario: loss_scenario(),
        registry,
        ..BftClusterConfig::default()
    });
    println!(
        "{label:<45} completed {:>2} requests, throughput {:>8.2} req/Mtick, {} injections",
        result.completed, result.throughput, result.injections
    );
    result.throughput
}

fn main() {
    println!("bft-lite (4 replicas, f = 1) under distributed fault-injection policies:\n");
    let baseline = run_policy("baseline (no injection)", DistributedPolicy::Never);
    let light = run_policy(
        "10% random loss on all replicas",
        DistributedPolicy::GlobalRandom { probability: 0.1 },
    );
    let blackout = run_policy(
        "blackout of one backup replica",
        DistributedPolicy::TargetNode { node: 3 },
    );
    let rotating = run_policy(
        "rotating 50-fault bursts (DoS schedule)",
        DistributedPolicy::RotatingBursts {
            nodes: vec![1, 2, 3, 4],
            burst: 50,
        },
    );
    println!("\nrelative to baseline:");
    for (label, value) in [
        ("10% random loss", light),
        ("single-replica blackout", blackout),
        ("rotating bursts", rotating),
    ] {
        println!("  {label:<25} {:+.1}%", (value / baseline - 1.0) * 100.0);
    }
}
