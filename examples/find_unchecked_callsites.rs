//! Run the call-site analyzer (Algorithm 1) over every bundled target
//! application and print, per library function, how many call sites are
//! fully / partially / completely unchecked — the analysis behind §5 and
//! Table 4 of the paper.
//!
//! Run with: `cargo run --example find_unchecked_callsites`

use lfi::prelude::*;
use lfi::targets;

fn main() {
    let controller = targets::standard_controller();
    for (name, exe) in targets::all_targets() {
        println!("== {name} ==");
        let mut total_unchecked = 0;
        for report in controller.analyze(&exe) {
            let checked = report.checked().len();
            let partial = report.partially_checked().len();
            let unchecked = report.unchecked().len();
            total_unchecked += unchecked;
            println!(
                "  {:<12} sites: {:>2}  checked: {:>2}  partial: {:>2}  unchecked: {:>2}",
                report.function,
                report.sites.len(),
                checked,
                partial,
                unchecked
            );
            for site in report.unchecked() {
                let location = site
                    .source
                    .clone()
                    .map(|(file, line)| format!("{file}:{line}"))
                    .unwrap_or_else(|| format!("{:#x}", site.offset));
                println!(
                    "      unchecked call in {:<20} at {}",
                    site.caller.clone().unwrap_or_default(),
                    location
                );
            }
        }
        println!("  -> {total_unchecked} injection targets\n");
    }

    // The same information drives automatic scenario generation:
    let exe = targets::git_lite();
    let scenario = controller.generate_scenario(&exe, false);
    println!(
        "git-lite: generated {} injections targeting unchecked sites",
        scenario.functions.len()
    );
    let _ = TestConfig::default(); // (prelude demonstration)
}
