//! Writing a custom trigger (the paper's §3.1 extensibility story) and using
//! it to reproduce the MySQL double-unlock bug with 100% precision, as in
//! Table 2's third scenario.
//!
//! The custom trigger fires when a `close` call happens within a few source
//! lines of the last `pthread_mutex_unlock`, so the injected failure lands
//! exactly where the cleanup path performs the second unlock.
//!
//! Run with: `cargo run --example custom_trigger_bughunt`

use std::collections::BTreeMap;

use lfi::prelude::*;
use lfi::targets::{self, FsSetupWorkload};

/// A custom trigger: fire on `close` calls made while the calling thread
/// still holds no mutex but a `pthread_mutex_unlock` happened within
/// `distance` source lines of the call site.
struct CloseAfterUnlock {
    distance: u32,
    last_unlock: Option<(String, u32)>,
}

impl Trigger for CloseAfterUnlock {
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool {
        if ctx.function == "pthread_mutex_unlock" {
            self.last_unlock = ctx.call.call_site_source();
            return false;
        }
        match (&self.last_unlock, ctx.call.call_site_source()) {
            (Some((unlock_file, unlock_line)), Some((file, line))) => {
                file == *unlock_file && line.abs_diff(*unlock_line) <= self.distance
            }
            _ => false,
        }
    }
}

fn main() {
    let mut controller = targets::standard_controller();

    // Register the custom trigger class; scenarios can now reference it by
    // name, exactly like a stock trigger.
    controller
        .registry_mut()
        .register("CloseAfterUnlock", |decl| {
            let distance = decl
                .params
                .get("distance")
                .and_then(|v| v.parse().ok())
                .unwrap_or(2);
            Ok(Box::new(CloseAfterUnlock {
                distance,
                last_unlock: None,
            }))
        });

    // The scenario: fail `close` (with EIO) when the custom trigger fires,
    // and let the trigger observe the unlock calls.
    let scenario = Scenario::new()
        .with_trigger(TriggerDecl {
            id: "nearUnlock".into(),
            class: "CloseAfterUnlock".into(),
            params: BTreeMap::from([("distance".to_string(), "2".to_string())]),
            frames: vec![],
        })
        .with_function(FunctionAssoc {
            function: "close".into(),
            argc: 1,
            retval: Some(-1),
            errno: Some(lfi::arch::errno::EIO),
            triggers: vec!["nearUnlock".into()],
        })
        .with_function(FunctionAssoc {
            function: "pthread_mutex_unlock".into(),
            argc: 1,
            retval: None,
            errno: None,
            triggers: vec!["nearUnlock".into()],
        });

    // Run the db-lite "merge-big" workload 20 times: the bug must reproduce
    // every single time (the paper reports 100% precision for this trigger).
    let exe = targets::db_lite();
    let mut reproduced = 0;
    for seed in 0..20 {
        let config = TestConfig {
            args: vec!["merge-big".into(), "1".into()],
            seed,
            ..TestConfig::default()
        };
        let report = controller
            .run_test(&exe, &scenario, &mut FsSetupWorkload, &config)
            .expect("run");
        if let TestOutcome::Crashed(reason) = &report.outcome {
            if reason.contains("mutex") {
                reproduced += 1;
            }
        }
    }
    println!("double-unlock reproduced in {reproduced}/20 runs");
    assert_eq!(reproduced, 20);
}
