//! Quickstart: the complete LFI workflow on a small program.
//!
//! 1. Compile a program (mini-C) that uses the simulated libc.
//! 2. Profile the library to learn how its functions fail.
//! 3. Run the call-site analyzer to find unchecked call sites.
//! 4. Let LFI generate an injection scenario and run the test.
//!
//! Run with: `cargo run --example quickstart`

use lfi::prelude::*;

fn main() {
    // A program with one properly handled and one unchecked library call.
    let exe = lfi::cc::Compiler::new("demo", lfi::obj::ModuleKind::Executable)
        .needs("libc")
        .add_source(
            "demo.c",
            r#"
            int load_config() {
                int fd = open("/etc/app.conf", O_RDONLY, 0);
                if (fd == -1) {
                    print("no config, using defaults\n");
                    return 0;
                }
                int buf[32];
                read(fd, buf, 200);
                close(fd);
                return 1;
            }
            int main() {
                load_config();
                int p = malloc(256);
                *p = 1;                      // missing NULL check
                print("demo finished\n");
                return 0;
            }
            "#,
        )
        .compile()
        .expect("compile");

    // The controller owns the shared libraries of the system under test.
    let mut controller = Controller::new();
    controller.add_library(lfi::libc::build());

    // Step 1: the library fault profile (what can fail, and how).
    let profile = controller.profile_libraries();
    let malloc = profile.function("malloc").unwrap();
    println!(
        "malloc error returns: {:?}, errno values: {:?}",
        malloc.error_return_values(),
        malloc.errno_values()
    );

    // Step 2: call-site analysis — which call sites don't check errors?
    for report in controller.analyze(&exe) {
        for site in &report.sites {
            println!(
                "call to {:<8} at {:#06x} in {:<12} -> {:?}",
                report.function,
                site.offset,
                site.caller.clone().unwrap_or_default(),
                site.class
            );
        }
    }

    // Step 3: generate the injection scenario for unchecked sites and run it.
    let scenario = controller.generate_scenario(&exe, false);
    println!("\ngenerated scenario:\n{}", scenario.to_xml());

    let report = controller
        .run_test(
            &exe,
            &scenario,
            &mut RunToCompletion,
            &TestConfig::default(),
        )
        .expect("test run");
    println!("test outcome: {:?}", report.outcome);
    println!("injection log:\n{}", report.injections.to_json());
    assert!(report.outcome.is_crash(), "the unchecked malloc must crash");
}
