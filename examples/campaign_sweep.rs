//! A fault-injection campaign across every evaluation target.
//!
//! Demonstrates the campaign subsystem end to end: enumerate the fault
//! space of all `*-lite` targets, annotate it with analyzer classifications
//! and baseline reachability, build a `CampaignDriver` with the adaptive
//! coverage-feedback scheduler, stream typed progress events while the
//! worker pool drains it, triage the crashes into deduplicated signatures,
//! and resume from the driver's own per-batch checkpoint without
//! re-running anything. `--shard i/n` runs just one mergeable slice — the
//! same flag a multi-process sweep would pass to each worker process.
//!
//! Usage: campaign_sweep [--jobs N] [--strategy exhaustive|guided|adaptive|random]
//!                       [--backend fresh|snapshot] [--shard I/N]

use lfi::campaign::{
    default_test_suite, Campaign, CampaignEvent, CoverageAdaptive, ExecBackend, Exhaustive,
    InjectionGuided, RandomSample, ShardSpec, StandardExecutor, Strategy, STOCK_TARGETS,
};
use lfi::targets::standard_controller;

fn usage() -> ! {
    eprintln!(
        "usage: campaign_sweep [--jobs N] [--strategy exhaustive|guided|adaptive|random] \
         [--backend fresh|snapshot] [--shard I/N]"
    );
    std::process::exit(2);
}

/// Parse a flag value, printing the parse error (which names the accepted
/// values) before the usage text.
fn parse_flag<T>(value: Option<String>) -> T
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let value = value.unwrap_or_else(|| usage());
    value.parse().unwrap_or_else(|err| {
        eprintln!("campaign_sweep: {err}");
        usage()
    })
}

fn main() {
    let mut jobs = 2usize;
    let mut backend = ExecBackend::Fresh;
    let mut shard = ShardSpec::FULL;
    let mut strategy: Box<dyn Strategy> = Box::new(CoverageAdaptive::default());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--strategy" => {
                strategy = match args.next().as_deref() {
                    Some("exhaustive") => Box::new(Exhaustive),
                    Some("random") => Box::new(RandomSample { count: 40, seed: 7 }),
                    Some("guided") => Box::new(InjectionGuided),
                    Some("adaptive") => Box::new(CoverageAdaptive::default()),
                    _ => usage(),
                }
            }
            "--backend" => backend = parse_flag(args.next()),
            "--shard" => shard = parse_flag(args.next()),
            _ => usage(),
        }
    }

    // 1. Enumerate and annotate the fault space of every runnable target.
    let executor = StandardExecutor::new(&STOCK_TARGETS);
    let profile = standard_controller().profile_libraries();
    let targets = ["bind-lite", "git-lite", "db-lite", "httpd-lite", "bft-lite"];
    let mut space = executor.fault_space(&targets, &profile);
    // A full cluster run per fault point is expensive; restrict bft-lite to
    // the functions its harness exercises.
    space.retain(|p| {
        p.target != "bft-lite"
            || matches!(
                p.function.as_str(),
                "recvfrom" | "sendto" | "fopen" | "fwrite"
            )
    });
    executor.annotate_baseline_reachability(&mut space, 7);
    println!(
        "fault space: {} points across {} targets ({} workload runs if exhaustive)",
        space.len(),
        space.targets().len(),
        space
            .points
            .iter()
            .map(|p| default_test_suite(&p.target).len())
            .sum::<usize>()
    );

    // 2. Build the driver: strategy, backend, worker pool, shard slice, a
    // progress sink, and a checkpoint file the driver maintains per batch.
    // With the adaptive scheduler, completed batches feed back into the
    // schedule: fault points near fresh crash signatures are escalated,
    // repeatedly-passing caller neighborhoods sink to the back.
    let checkpoint = std::env::temp_dir().join(format!(
        "lfi_campaign_sweep_{}_of_{}.json",
        shard.index, shard.count
    ));
    let _ = std::fs::remove_file(&checkpoint); // this run starts fresh
    let progress = |event: &CampaignEvent| match event {
        CampaignEvent::BatchPlanned {
            batch,
            points,
            pending,
            ..
        } => println!("batch {batch}: {points} fault points, {pending} units to run"),
        CampaignEvent::CrashFound(signature) => println!(
            "  crash: {} into {} -> {}+{:#x}",
            signature.function,
            signature.frame.as_deref().unwrap_or("?"),
            signature.module,
            signature.offset
        ),
        _ => {}
    };
    let driver = Campaign::builder(space, &executor)
        .boxed_strategy(strategy)
        .jobs(jobs)
        .seed(7)
        .backend(backend)
        .shard(shard)
        .events(&progress)
        .checkpoint(&checkpoint)
        .build();
    println!(
        "shard {shard}: {} of {} canonical units\n",
        driver.shard_units(),
        driver.campaign().total_units()
    );
    let outcome = driver.run_to_completion();
    println!("\n{}", outcome.report);

    // 3. Resume from the driver's checkpoint: nothing is re-executed. The
    // state tag (strategy fingerprint @ plan hash # shard) guarantees the
    // checkpoint is only ever applied to the exact plan and shard that
    // produced it — re-annotating the space, editing a test suite, or
    // handing the file to another shard would start fresh instead.
    let again = driver.run_to_completion();
    println!(
        "resumed from {}: {} units re-executed (state held {} records)",
        checkpoint.display(),
        again.report.executed_now,
        again.report.records.len()
    );
}
