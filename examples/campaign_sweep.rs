//! A fault-injection campaign across every evaluation target.
//!
//! Demonstrates the campaign subsystem end to end: enumerate the fault
//! space of all `*-lite` targets, annotate it with analyzer classifications
//! and baseline reachability, explore it with the adaptive coverage-feedback
//! scheduler on a worker pool, triage the crashes into deduplicated
//! signatures, and resume from persisted JSON state without re-running
//! anything.
//!
//! Usage: campaign_sweep [--jobs N] [--strategy exhaustive|guided|adaptive|random]
//!                       [--backend fresh|snapshot]

use lfi::campaign::{
    default_test_suite, Campaign, CampaignConfig, CampaignState, CoverageAdaptive, ExecBackend,
    Exhaustive, InjectionGuided, RandomSample, StandardExecutor, Strategy, STOCK_TARGETS,
};
use lfi::targets::standard_controller;

fn usage() -> ! {
    eprintln!(
        "usage: campaign_sweep [--jobs N] [--strategy exhaustive|guided|adaptive|random] \
         [--backend fresh|snapshot]"
    );
    std::process::exit(2);
}

fn main() {
    let mut jobs = 2usize;
    let mut backend = ExecBackend::Fresh;
    let mut strategy: Box<dyn Strategy> = Box::new(CoverageAdaptive::default());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--strategy" => {
                strategy = match args.next().as_deref() {
                    Some("exhaustive") => Box::new(Exhaustive),
                    Some("random") => Box::new(RandomSample { count: 40, seed: 7 }),
                    Some("guided") => Box::new(InjectionGuided),
                    Some("adaptive") => Box::new(CoverageAdaptive::default()),
                    _ => usage(),
                }
            }
            "--backend" => {
                backend = args
                    .next()
                    .as_deref()
                    .and_then(ExecBackend::parse)
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }

    // 1. Enumerate and annotate the fault space of every runnable target.
    let executor = StandardExecutor::new(&STOCK_TARGETS);
    let profile = standard_controller().profile_libraries();
    let targets = ["bind-lite", "git-lite", "db-lite", "httpd-lite", "bft-lite"];
    let mut space = executor.fault_space(&targets, &profile);
    // A full cluster run per fault point is expensive; restrict bft-lite to
    // the functions its harness exercises.
    space.retain(|p| {
        p.target != "bft-lite"
            || matches!(
                p.function.as_str(),
                "recvfrom" | "sendto" | "fopen" | "fwrite"
            )
    });
    executor.annotate_baseline_reachability(&mut space, 7);
    println!(
        "fault space: {} points across {} targets ({} workload runs if exhaustive)",
        space.len(),
        space.targets().len(),
        space
            .points
            .iter()
            .map(|p| default_test_suite(&p.target).len())
            .sum::<usize>()
    );

    // 2. Explore it on the worker pool, batch by batch. With the adaptive
    // scheduler, completed batches feed back into the schedule: fault
    // points near fresh crash signatures are escalated, repeatedly-passing
    // caller neighborhoods sink to the back.
    let campaign = Campaign::new(
        space,
        &executor,
        CampaignConfig {
            jobs,
            seed: 7,
            backend,
        },
    );
    let mut state = CampaignState::default();
    let report = campaign.run(strategy.as_ref(), &mut state);
    println!("\n{report}");

    // 3. Persist the state and resume: nothing is re-executed. The state
    // tag (strategy fingerprint @ plan hash) guarantees the checkpoint is
    // only ever applied to the exact plan that produced it — re-annotating
    // the space or editing a test suite would start fresh instead.
    let checkpoint = std::env::temp_dir().join("lfi_campaign_sweep.json");
    std::fs::write(&checkpoint, state.to_json()).expect("write checkpoint");
    let json = std::fs::read_to_string(&checkpoint).expect("read checkpoint");
    let mut resumed = CampaignState::from_json(&json).expect("parse checkpoint");
    let again = campaign.run(strategy.as_ref(), &mut resumed);
    println!(
        "resumed from {}: {} units re-executed (state held {} records)",
        checkpoint.display(),
        again.executed_now,
        again.records.len()
    );
}
