//! # LFI — library-level fault injection with high-precision triggers
//!
//! This is the facade crate of a from-scratch reproduction of
//! *"An Extensible Technique for High-Precision Testing of Recovery Code"*
//! (Marinescu, Banabic, Candea — USENIX ATC 2010). It re-exports the whole
//! tool chain:
//!
//! * [`core`](lfi_core) — triggers, the XML scenario language, the
//!   interposition/injection runtime and the test controller (the paper's
//!   contribution);
//! * [`profiler`](lfi_profiler) — library fault profiles (error returns and
//!   errno side effects inferred from binaries);
//! * [`analyzer`](lfi_analyzer) — call-site analysis (Algorithm 1) and
//!   recovery-block identification;
//! * [`campaign`](lfi_campaign) — parallel fault-space exploration: enumerate
//!   every (call site × error case) fault point, schedule it batch-by-batch
//!   with pluggable strategies (including the adaptive coverage-feedback
//!   scheduler) on a worker pool, triage crashes into signatures, resume
//!   interrupted sweeps from JSON state tagged with the full plan identity,
//!   shard one campaign across processes/machines with byte-identical
//!   mergeable results, and stream typed progress events while it runs;
//! * [`supervisor`](lfi_supervisor) — the distributed control plane on top of
//!   the campaign layer: spawn elastic worker processes, lease them unit
//!   ranges, monitor heartbeats, migrate leases off dead or hung workers
//!   (restarting them from per-lease checkpoints), steal queued leases for
//!   idle workers, and broadcast first-seen crash signatures so every
//!   shard's adaptive strategy learns globally;
//! * the substrate: [`arch`](lfi_arch), [`obj`](lfi_obj), [`asm`](lfi_asm),
//!   [`cc`](lfi_cc), [`vm`](lfi_vm), [`libc`](lfi_libc);
//! * [`targets`](lfi_targets) — the BIND/MySQL/Git/PBFT/Apache analogues with
//!   the paper's seeded bugs and workloads;
//! * [`telemetry`](lfi_telemetry) — the lock-light metrics registry, span
//!   timing, and serializable [`MetricsSnapshot`](lfi_telemetry::MetricsSnapshot)s
//!   behind campaign observability.
//!
//! ## Quick start
//!
//! ```
//! use lfi::prelude::*;
//!
//! // The system under test: a program with an unchecked library call.
//! let exe = lfi::cc::Compiler::new("demo", lfi::obj::ModuleKind::Executable)
//!     .needs("libc")
//!     .add_source(
//!         "demo.c",
//!         r#"
//!         int main() {
//!             int p = malloc(64);
//!             *p = 42;              // no NULL check
//!             return 0;
//!         }
//!         "#,
//!     )
//!     .compile()
//!     .unwrap();
//!
//! // The LFI workflow: profile the library, find unchecked call sites,
//! // generate a scenario, and run the test.
//! let mut controller = Controller::new();
//! controller.add_library(lfi::libc::build());
//! let scenario = controller.generate_scenario(&exe, false);
//! let report = controller
//!     .run_test(&exe, &scenario, &mut RunToCompletion, &TestConfig::default())
//!     .unwrap();
//! assert!(report.outcome.is_crash());
//! ```

pub use lfi_analyzer as analyzer;
pub use lfi_arch as arch;
pub use lfi_asm as asm;
pub use lfi_campaign as campaign;
pub use lfi_cc as cc;
pub use lfi_core as core;
pub use lfi_libc as libc;
pub use lfi_obj as obj;
pub use lfi_profiler as profiler;
pub use lfi_supervisor as supervisor;
pub use lfi_targets as targets;
pub use lfi_telemetry as telemetry;
pub use lfi_vm as vm;

/// The most commonly used items, for `use lfi::prelude::*`.
pub mod prelude {
    pub use lfi_analyzer::{analyze_program, AnalysisConfig, CallSiteClass};
    // The `Strategy` trait itself stays at `lfi::campaign::Strategy`: its
    // name collides with `proptest::prelude::Strategy` under glob imports.
    pub use lfi_campaign::{
        Campaign, CampaignBuilder, CampaignConfig, CampaignDriver, CampaignEvent, CampaignHistory,
        CampaignState, CoverageAdaptive, EventLog, EventSink, ExecBackend, Exhaustive, FaultPoint,
        FaultSpace, InjectionGuided, RandomSample, ShardOutcome, ShardSpec, StandardExecutor,
    };
    pub use lfi_core::{
        Controller, FrameSpec, FunctionAssoc, InjectionEngine, RunToCompletion, Scenario,
        TestConfig, TestOutcome, Trigger, TriggerCtx, TriggerDecl, TriggerRegistry, Workload,
    };
    pub use lfi_profiler::{profile_library, FaultProfile};
    pub use lfi_supervisor::{
        run_supervised, SpaceSpec, SupervisedOutcome, SupervisorOptions, WorkerMessage,
    };
    pub use lfi_vm::{HookAction, Machine, MachineSnapshot, NetHandle, RunExit};
}
