//! Execution tests: compile mini-C programs and run them on the VM,
//! checking observable behaviour (exit codes, output, memory effects).

use lfi_cc::Compiler;
use lfi_obj::ModuleKind;
use lfi_vm::{Loader, Machine, NoHooks, ProcessConfig, RunExit};

fn run(src: &str) -> (Machine, RunExit) {
    run_with(src, |_| {})
}

fn run_with(src: &str, setup: impl FnOnce(&mut Machine)) -> (Machine, RunExit) {
    let exe = Compiler::new("app", ModuleKind::Executable)
        .add_source("app.c", src)
        .compile()
        .expect("compile");
    let loader = Loader::new();
    let image = loader.load(exe).expect("load");
    let mut machine = Machine::new(image, ProcessConfig::default());
    setup(&mut machine);
    let exit = machine.run_to_completion(&mut NoHooks);
    (machine, exit)
}

fn exit_code(src: &str) -> i64 {
    match run(src).1 {
        RunExit::Exited(code) => code,
        other => panic!("expected clean exit, got {other:?}"),
    }
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(exit_code("int main() { return 2 + 3 * 4; }"), 14);
    assert_eq!(exit_code("int main() { return (2 + 3) * 4; }"), 20);
    assert_eq!(exit_code("int main() { return 17 % 5 + 100 / 25; }"), 6);
    assert_eq!(exit_code("int main() { return 1 << 4 | 3; }"), 19);
    assert_eq!(exit_code("int main() { return -5 + 8; }"), 3);
    assert_eq!(exit_code("int main() { return ~0 & 255; }"), 255);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(exit_code("int main() { return 3 < 5; }"), 1);
    assert_eq!(exit_code("int main() { return 5 <= 4; }"), 0);
    assert_eq!(exit_code("int main() { return 7 == 7 && 2 != 3; }"), 1);
    assert_eq!(exit_code("int main() { return 0 || 0; }"), 0);
    assert_eq!(exit_code("int main() { return !0 + !7; }"), 1);
}

#[test]
fn short_circuit_does_not_evaluate_rhs() {
    // If the right-hand side ran, it would crash on a null dereference.
    let src = r#"
        int main() {
            int p = 0;
            if (p != 0 && *p == 5) { return 1; }
            return 42;
        }
    "#;
    assert_eq!(exit_code(src), 42);
}

#[test]
fn locals_params_and_recursion() {
    let src = r#"
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        int main() { return fact(5); }
    "#;
    assert_eq!(exit_code(src), 120);
}

#[test]
fn while_loops_break_continue() {
    let src = r#"
        int main() {
            int sum = 0;
            int i = 0;
            while (i < 100) {
                i = i + 1;
                if (i % 2 == 0) { continue; }
                if (i > 20) { break; }
                sum = sum + i;
            }
            return sum;
        }
    "#;
    // Sum of odd numbers 1..=19 = 100.
    assert_eq!(exit_code(src), 100);
}

#[test]
fn globals_and_global_arrays() {
    let src = r#"
        int counter = 10;
        int table[8];
        int bump(int n) { counter = counter + n; return counter; }
        int main() {
            table[3] = bump(5);
            table[4] = bump(7);
            return table[3] + table[4] - counter;
        }
    "#;
    let (machine, exit) = run(src);
    assert_eq!(exit, RunExit::Exited(15 + 22 - 22));
    assert_eq!(machine.read_global("counter"), Some(22));
}

#[test]
fn local_arrays_pointers_and_address_of() {
    let src = r#"
        int main() {
            int buf[4];
            int p = &buf[2];
            *p = 99;
            buf[0] = 1;
            int q = buf;
            return q[0] + buf[2];
        }
    "#;
    assert_eq!(exit_code(src), 100);
}

#[test]
fn byte_builtins_roundtrip() {
    let src = r#"
        int main() {
            int buf[2];
            __store8(buf, 65);
            __store8(buf + 1, 66);
            return __load8(buf) + __load8(buf + 1);
        }
    "#;
    assert_eq!(exit_code(src), 131);
}

#[test]
fn errno_reads_and_writes_are_thread_local_storage() {
    let src = r#"
        int main() {
            errno = 0;
            int r = __sys(SYS_OPEN, "/missing", O_RDONLY, 0);
            if (r < 0) { errno = -r; }
            return errno;
        }
    "#;
    assert_eq!(exit_code(src), lfi_arch::errno::ENOENT);
}

#[test]
fn syscall_builtin_writes_output() {
    let src = r#"
        int main() {
            __sys(SYS_WRITE, STDOUT, "hello from mini-C\n", 18);
            return 0;
        }
    "#;
    let (machine, exit) = run(src);
    assert_eq!(exit, RunExit::Exited(0));
    assert_eq!(machine.output_string(), "hello from mini-C\n");
}

#[test]
fn filesystem_via_syscalls() {
    let src = r#"
        int main() {
            int fd = __sys(SYS_OPEN, "/data/config", O_RDONLY, 0);
            if (fd < 0) { return 1; }
            int buf[16];
            int n = __sys(SYS_READ, fd, buf, 100);
            __sys(SYS_CLOSE, fd);
            return n;
        }
    "#;
    let (_, exit) = run_with(src, |m| {
        m.fs_mut().mkdir_all("/data");
        m.fs_mut().write_file("/data/config", b"key=value").unwrap();
    });
    assert_eq!(exit, RunExit::Exited(9));
}

#[test]
fn null_dereference_crashes_like_a_real_program() {
    let src = r#"
        int main() {
            int p = 0;
            return *p;
        }
    "#;
    let (_, exit) = run(src);
    assert!(matches!(exit, RunExit::Fault(f) if f.to_string().contains("null dereference")));
}

#[test]
fn named_constants_are_available() {
    assert_eq!(
        exit_code("int main() { return EINVAL; }"),
        lfi_arch::errno::EINVAL
    );
    assert_eq!(
        exit_code("int main() { return O_CREAT | O_TRUNC; }"),
        64 | 512
    );
    assert_eq!(
        exit_code("const LIMIT = 16 * 4;\nint main() { return LIMIT; }"),
        64
    );
}

#[test]
fn function_pointers_via_fnaddr_and_threads() {
    let src = r#"
        int done = 0;
        int result = 0;
        int worker(int arg) {
            result = arg * 2;
            done = 1;
            __sys(SYS_THREAD_EXIT);
            return 0;
        }
        int main() {
            __sys(SYS_THREAD_CREATE, __fnaddr(worker), 21);
            while (done == 0) { __sys(SYS_YIELD); }
            return result;
        }
    "#;
    assert_eq!(exit_code(src), 42);
}

#[test]
fn nested_calls_preserve_arguments() {
    let src = r#"
        int add3(int a, int b, int c) { return a + b + c; }
        int twice(int x) { return x * 2; }
        int main() {
            return add3(twice(1), twice(2), add3(1, twice(3), 4));
        }
    "#;
    assert_eq!(exit_code(src), 2 + 4 + 11);
}

#[test]
fn else_if_chains_execute_correctly() {
    let src = r#"
        int classify(int x) {
            if (x < 0) { return 1; }
            else if (x == 0) { return 2; }
            else if (x < 10) { return 3; }
            else { return 4; }
        }
        int main() {
            return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
        }
    "#;
    assert_eq!(exit_code(src), 1234);
}

#[test]
fn multi_file_modules_share_globals_and_functions() {
    let exe = Compiler::new("app", ModuleKind::Executable)
        .add_source("state.c", "int shared = 5;\nint get() { return shared; }\n")
        .add_source(
            "main.c",
            "int main() { shared = shared + 1; return get(); }\n",
        )
        .compile()
        .expect("compile");
    let image = Loader::new().load(exe).expect("load");
    let mut machine = Machine::new(image, ProcessConfig::default());
    assert_eq!(machine.run_to_completion(&mut NoHooks), RunExit::Exited(6));
}

#[test]
fn uninitialized_locals_and_arrays_read_zero() {
    let src = r#"
        int main() {
            int x;
            int buf[8];
            return x + buf[5];
        }
    "#;
    assert_eq!(exit_code(src), 0);
}

#[test]
fn exit_code_is_main_return_value_via_exit_syscall_too() {
    let src = r#"
        int main() {
            __sys(SYS_EXIT, 7);
            return 1;
        }
    "#;
    assert_eq!(exit_code(src), 7);
}
