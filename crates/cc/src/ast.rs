//! Abstract syntax tree for mini-C.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl BinOp {
    /// Whether this operator is a comparison producing a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`): 0 becomes 1, everything else becomes 0.
    Not,
    /// Bitwise not (`~`).
    BitNot,
    /// Word dereference (`*p`).
    Deref,
    /// Address-of (`&x`).
    Addr,
}

/// Expressions. Every expression evaluates to a 64-bit word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal; evaluates to the address of a NUL-terminated copy in
    /// the data section.
    Str(String),
    /// Variable or named constant reference.
    Ident(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Word indexing: `base[index]` reads the word at `base + 8*index`.
    Index {
        /// Base address expression.
        base: Box<Expr>,
        /// Element index expression.
        index: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions, in order.
        args: Vec<Expr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local scalar declaration with optional initializer.
    Local {
        /// Variable name.
        name: String,
        /// Initializer, if any.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// Local array declaration (size in words).
    LocalArray {
        /// Array name (evaluates to its address).
        name: String,
        /// Number of 8-byte words.
        words: i64,
        /// Source line.
        line: u32,
    },
    /// Assignment to an lvalue (identifier, `*expr`, or `base[index]`).
    Assign {
        /// Target lvalue.
        target: Expr,
        /// Value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// Expression evaluated for its side effects (usually a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// While loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// Return with optional value (defaults to 0).
    Return {
        /// Returned value.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// Break out of the innermost loop.
    Break {
        /// Source line.
        line: u32,
    },
    /// Continue the innermost loop.
    Continue {
        /// Source line.
        line: u32,
    },
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Whether the function was declared `static` (kept for fidelity; both
    /// static and non-static definitions are called directly within the
    /// module, and exported either way so backtraces can name them).
    pub is_static: bool,
    /// Line of the definition.
    pub line: u32,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A compile-time constant.
    Const {
        /// Constant name.
        name: String,
        /// Value.
        value: i64,
    },
    /// A global scalar with optional initializer (defaults to 0).
    Global {
        /// Global name (exported as a data symbol).
        name: String,
        /// Initial value.
        init: i64,
    },
    /// A global array of zero-initialized words.
    GlobalArray {
        /// Array name (exported as a data symbol).
        name: String,
        /// Number of 8-byte words.
        words: i64,
    },
    /// A function definition.
    Func(Function),
}

/// A parsed source file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::LogAnd.is_comparison());
    }
}
