//! Mini-C compiler for the LFI reproduction.
//!
//! The paper's target systems (BIND, MySQL, Git, PBFT, Apache) are C programs
//! whose binaries mix properly checked and unchecked library call sites. To
//! reproduce those binaries we compile analogues written in a small C-like
//! language ("mini-C") down to the simulated ISA. The language is word-typed
//! (every value is a 64-bit integer; pointers are integers), but it keeps the
//! C idioms that matter for the LFI analyses:
//!
//! * library calls compile to `callsym` instructions with symbol relocations,
//! * `if (ret == -1)`-style checks compile to `cmp`/`jcc` against literals,
//! * `errno` compiles to TLS loads/stores,
//! * every global is an exported data symbol (so program-state triggers can
//!   inspect it), and
//! * every statement carries file/line debug info for file-and-line triggers
//!   and coverage reports.
//!
//! # Example
//!
//! ```
//! use lfi_cc::Compiler;
//! use lfi_obj::ModuleKind;
//!
//! let src = r#"
//!     int main() {
//!         int fd = open("/etc/passwd", O_RDONLY, 0);
//!         if (fd == -1) { return errno; }
//!         return 0;
//!     }
//! "#;
//! let module = Compiler::new("demo", ModuleKind::Executable)
//!     .add_source("demo.c", src)
//!     .compile()
//!     .unwrap();
//! assert_eq!(module.call_sites_of("open").len(), 1);
//! ```

pub mod ast;
pub mod codegen;
pub mod consts;
pub mod lexer;
pub mod parser;

use lfi_obj::{Module, ModuleKind};

pub use ast::{BinOp, Expr, Function, Item, Program, Stmt, UnOp};
pub use lexer::{LexError, Token, TokenKind};

/// A compilation error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Source file name.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Multi-file compiler driver producing one [`Module`].
#[derive(Debug, Clone)]
pub struct Compiler {
    name: String,
    kind: ModuleKind,
    needed: Vec<String>,
    sources: Vec<(String, String)>,
}

impl Compiler {
    /// Start compiling a module with the given name and kind.
    pub fn new(name: impl Into<String>, kind: ModuleKind) -> Compiler {
        Compiler {
            name: name.into(),
            kind,
            needed: Vec::new(),
            sources: Vec::new(),
        }
    }

    /// Declare a shared-library dependency (recorded as `needed`).
    pub fn needs(mut self, lib: impl Into<String>) -> Compiler {
        self.needed.push(lib.into());
        self
    }

    /// Add a source file to the module.
    pub fn add_source(mut self, file: impl Into<String>, text: impl Into<String>) -> Compiler {
        self.sources.push((file.into(), text.into()));
        self
    }

    /// Parse and compile all source files into a module.
    pub fn compile(self) -> Result<Module, CompileError> {
        let mut programs = Vec::new();
        for (file, text) in &self.sources {
            let tokens = lexer::lex(file, text)?;
            let program = parser::parse(file, tokens)?;
            programs.push((file.clone(), program));
        }
        codegen::generate(&self.name, self.kind, &self.needed, &programs)
    }
}
