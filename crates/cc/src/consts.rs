//! Named constants predefined by the compiler.
//!
//! Mini-C programs can use the familiar POSIX spellings (`O_RDONLY`,
//! `EINVAL`, `SEEK_SET`, ...) without declaring them; the compiler resolves
//! them to the ABI values defined in `lfi-arch`. Syscall numbers are exposed
//! with a `SYS_` prefix for use with the `__sys` builtin in the simulated
//! libc sources.

use lfi_arch::{abi::fcntlcmd, abi::filekind, abi::openflags, errno, sys};

/// Look up a predefined named constant.
pub fn predefined(name: &str) -> Option<i64> {
    if let Some(v) = errno::from_name(name) {
        return Some(v);
    }
    if let Some(rest) = name.strip_prefix("SYS_") {
        let lower = rest.to_lowercase();
        for num in sys::EXIT..=sys::TRUNCATE {
            if sys::name(num) == Some(lower.as_str()) {
                return Some(num);
            }
        }
    }
    Some(match name {
        "NULL" => 0,
        "O_RDONLY" => openflags::RDONLY,
        "O_WRONLY" => openflags::WRONLY,
        "O_RDWR" => openflags::RDWR,
        "O_CREAT" => openflags::CREAT,
        "O_TRUNC" => openflags::TRUNC,
        "O_APPEND" => openflags::APPEND,
        "O_NONBLOCK" => openflags::NONBLOCK,
        "SEEK_SET" => 0,
        "SEEK_CUR" => 1,
        "SEEK_END" => 2,
        "S_REGULAR" => filekind::REGULAR,
        "S_DIRECTORY" => filekind::DIRECTORY,
        "S_FIFO" => filekind::FIFO,
        "S_SOCKET" => filekind::SOCKET,
        "S_SYMLINK" => filekind::SYMLINK,
        "F_GETFL" => fcntlcmd::GETFL,
        "F_SETFL" => fcntlcmd::SETFL,
        "F_GETLK" => fcntlcmd::GETLK,
        "F_SETLK" => fcntlcmd::SETLK,
        "STDOUT" => 1,
        "STDERR" => 2,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_and_sys_constants_resolve() {
        assert_eq!(predefined("EINVAL"), Some(errno::EINVAL));
        assert_eq!(predefined("ENOENT"), Some(errno::ENOENT));
        assert_eq!(predefined("SYS_READ"), Some(sys::READ));
        assert_eq!(predefined("SYS_MUTEX_UNLOCK"), Some(sys::MUTEX_UNLOCK));
    }

    #[test]
    fn posix_flags_resolve() {
        assert_eq!(predefined("O_CREAT"), Some(openflags::CREAT));
        assert_eq!(predefined("NULL"), Some(0));
        assert_eq!(predefined("F_GETLK"), Some(fcntlcmd::GETLK));
        assert_eq!(predefined("S_SOCKET"), Some(filekind::SOCKET));
    }

    #[test]
    fn unknown_names_are_not_constants() {
        assert_eq!(predefined("not_a_constant"), None);
        assert_eq!(predefined("SYS_NOPE"), None);
    }
}
