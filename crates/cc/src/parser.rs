//! Recursive-descent parser for mini-C.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Function, Item, Program, Stmt, UnOp};
use crate::consts::predefined;
use crate::lexer::{Token, TokenKind};
use crate::CompileError;

struct Parser {
    file: String,
    tokens: Vec<Token>,
    pos: usize,
    consts: HashMap<String, i64>,
}

/// Parse a token stream into a [`Program`].
pub fn parse(file: &str, tokens: Vec<Token>) -> Result<Program, CompileError> {
    let mut parser = Parser {
        file: file.to_string(),
        tokens,
        pos: 0,
        consts: HashMap::new(),
    };
    parser.program()
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> CompileError {
        CompileError {
            file: self.file.clone(),
            line: self.peek().line,
            message: message.into(),
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn line(&self) -> u32 {
        self.peek().line
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(w) if w == word)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.at_ident(word) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek().kind)))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.advance().kind {
            TokenKind::Ident(name) => Ok(name),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<(), CompileError> {
        if self.eat_ident(word) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{word}`, found {:?}", self.peek().kind)))
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut items = Vec::new();
        while !matches!(self.peek().kind, TokenKind::Eof) {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        if self.eat_ident("const") {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let expr = self.expr()?;
            self.expect_punct(";")?;
            let value = self.const_eval(&expr)?;
            self.consts.insert(name.clone(), value);
            return Ok(Item::Const { name, value });
        }
        let is_static = self.eat_ident("static");
        self.expect_keyword("int")?;
        let line = self.line();
        let name = self.expect_ident()?;
        if self.at_punct("(") {
            // Function definition.
            self.expect_punct("(")?;
            let mut params = Vec::new();
            if !self.at_punct(")") {
                loop {
                    self.expect_keyword("int")?;
                    params.push(self.expect_ident()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Item::Func(Function {
                name,
                params,
                body,
                is_static,
                line,
            }));
        }
        if self.eat_punct("[") {
            let size_expr = self.expr()?;
            let words = self.const_eval(&size_expr)?;
            self.expect_punct("]")?;
            self.expect_punct(";")?;
            if words <= 0 {
                return Err(self.err(format!("array `{name}` must have a positive size")));
            }
            return Ok(Item::GlobalArray { name, words });
        }
        let init = if self.eat_punct("=") {
            let expr = self.expr()?;
            self.const_eval(&expr)?
        } else {
            0
        };
        self.expect_punct(";")?;
        Ok(Item::Global { name, init })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            if matches!(self.peek().kind, TokenKind::Eof) {
                return Err(self.err("unexpected end of file inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect_punct("}")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.eat_ident("int") {
            let name = self.expect_ident()?;
            if self.eat_punct("[") {
                let size_expr = self.expr()?;
                let words = self.const_eval(&size_expr)?;
                self.expect_punct("]")?;
                self.expect_punct(";")?;
                if words <= 0 {
                    return Err(self.err(format!("array `{name}` must have a positive size")));
                }
                return Ok(Stmt::LocalArray { name, words, line });
            }
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Local { name, init, line });
        }
        if self.at_ident("if") {
            return self.if_stmt();
        }
        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body, line });
        }
        if self.eat_ident("return") {
            let value = if self.at_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return { value, line });
        }
        if self.eat_ident("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break { line });
        }
        if self.eat_ident("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue { line });
        }
        // Assignment or expression statement.
        let expr = self.expr()?;
        if self.eat_punct("=") {
            let value = self.expr()?;
            self.expect_punct(";")?;
            if !matches!(expr, Expr::Ident(_) | Expr::Index { .. })
                && !matches!(
                    expr,
                    Expr::Unary {
                        op: UnOp::Deref,
                        ..
                    }
                )
            {
                return Err(self.err("left-hand side of `=` is not assignable"));
            }
            return Ok(Stmt::Assign {
                target: expr,
                value,
                line,
            });
        }
        self.expect_punct(";")?;
        Ok(Stmt::Expr { expr, line })
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        self.expect_keyword("if")?;
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_body = self.block()?;
        let else_body = if self.eat_ident("else") {
            if self.at_ident("if") {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        })
    }

    // Expression parsing: precedence climbing, one method per level.

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.logical_or()
    }

    fn binary_level<F>(&mut self, ops: &[(&str, BinOp)], mut next: F) -> Result<Expr, CompileError>
    where
        F: FnMut(&mut Self) -> Result<Expr, CompileError>,
    {
        let mut lhs = next(self)?;
        loop {
            let mut matched = None;
            for (punct, op) in ops {
                if self.at_punct(punct) {
                    matched = Some(*op);
                    self.advance();
                    break;
                }
            }
            let Some(op) = matched else {
                return Ok(lhs);
            };
            let rhs = next(self)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn logical_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("||", BinOp::LogOr)], |p| p.logical_and())
    }

    fn logical_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("&&", BinOp::LogAnd)], |p| p.bit_or())
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("|", BinOp::Or)], |p| p.bit_xor())
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("^", BinOp::Xor)], |p| p.bit_and())
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("&", BinOp::And)], |p| p.equality())
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("==", BinOp::Eq), ("!=", BinOp::Ne)], |p| p.relational())
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            |p| p.shift(),
        )
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("<<", BinOp::Shl), (">>", BinOp::Shr)], |p| p.additive())
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("+", BinOp::Add), ("-", BinOp::Sub)], |p| p.term())
    }

    fn term(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Mod)],
            |p| p.unary(),
        )
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let op = if self.eat_punct("-") {
            Some(UnOp::Neg)
        } else if self.eat_punct("!") {
            Some(UnOp::Not)
        } else if self.eat_punct("~") {
            Some(UnOp::BitNot)
        } else if self.eat_punct("*") {
            Some(UnOp::Deref)
        } else if self.eat_punct("&") {
            Some(UnOp::Addr)
        } else {
            None
        };
        if let Some(op) = op {
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.primary()?;
        while self.eat_punct("[") {
            let index = self.expr()?;
            self.expect_punct("]")?;
            expr = Expr::Index {
                base: Box::new(expr),
                index: Box::new(index),
            };
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.advance().kind {
            TokenKind::Int(value) => Ok(Expr::Int(value)),
            TokenKind::Str(text) => Ok(Expr::Str(text)),
            TokenKind::Ident(name) => {
                if self.at_punct("(") {
                    self.expect_punct("(")?;
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            TokenKind::Punct("(") => {
                let expr = self.expr()?;
                self.expect_punct(")")?;
                Ok(expr)
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }

    /// Evaluate a constant expression (used for const items, global
    /// initializers and array sizes).
    fn const_eval(&self, expr: &Expr) -> Result<i64, CompileError> {
        match expr {
            Expr::Int(v) => Ok(*v),
            Expr::Ident(name) => self
                .consts
                .get(name)
                .copied()
                .or_else(|| predefined(name))
                .ok_or_else(|| self.err(format!("`{name}` is not a constant"))),
            Expr::Unary { op, expr } => {
                let v = self.const_eval(expr)?;
                match op {
                    UnOp::Neg => Ok(-v),
                    UnOp::BitNot => Ok(!v),
                    UnOp::Not => Ok((v == 0) as i64),
                    _ => Err(self.err("operator not allowed in constant expression")),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.const_eval(lhs)?;
                let b = self.const_eval(rhs)?;
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div if b != 0 => a / b,
                    BinOp::Mod if b != 0 => a % b,
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    _ => return Err(self.err("operator not allowed in constant expression")),
                })
            }
            _ => Err(self.err("expression is not constant")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Program, CompileError> {
        parse("t.c", lex("t.c", src)?)
    }

    #[test]
    fn parses_globals_consts_and_arrays() {
        let p = parse_src("const MAX = 4 * 8;\nint counter = 2;\nint table[MAX];\nint bare;\n")
            .unwrap();
        assert_eq!(
            p.items[0],
            Item::Const {
                name: "MAX".into(),
                value: 32
            }
        );
        assert_eq!(
            p.items[1],
            Item::Global {
                name: "counter".into(),
                init: 2
            }
        );
        assert_eq!(
            p.items[2],
            Item::GlobalArray {
                name: "table".into(),
                words: 32
            }
        );
        assert_eq!(
            p.items[3],
            Item::Global {
                name: "bare".into(),
                init: 0
            }
        );
    }

    #[test]
    fn parses_function_with_control_flow() {
        let p = parse_src(
            r#"
            int f(int a, int b) {
                int x = a + b * 2;
                if (x >= 10) { return x; } else { x = x + 1; }
                while (x < 10) { x = x + 1; if (x == 7) { break; } }
                return x;
            }
            "#,
        )
        .unwrap();
        let Item::Func(f) = &p.items[0] else {
            panic!("expected a function");
        };
        assert_eq!(f.name, "f");
        assert_eq!(f.params, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(f.body.len(), 4);
        assert!(matches!(f.body[1], Stmt::If { .. }));
        assert!(matches!(f.body[2], Stmt::While { .. }));
    }

    #[test]
    fn precedence_binds_multiplication_tighter_than_comparison() {
        let p = parse_src("int f() { return 1 + 2 * 3 == 7; }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        let Stmt::Return { value: Some(e), .. } = &f.body[0] else {
            panic!()
        };
        // Top node must be the comparison.
        assert!(matches!(e, Expr::Binary { op: BinOp::Eq, .. }));
    }

    #[test]
    fn parses_calls_indexing_deref_and_addr() {
        let p = parse_src(
            r#"
            int f(int p) {
                int buf[4];
                buf[0] = read(3, buf, 32);
                *p = buf[1] + peek(&buf);
                errno = 0;
                return buf[0];
            }
            "#,
        )
        .unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(matches!(f.body[0], Stmt::LocalArray { words: 4, .. }));
        assert!(matches!(
            &f.body[1],
            Stmt::Assign {
                target: Expr::Index { .. },
                value: Expr::Call { .. },
                ..
            }
        ));
        assert!(matches!(
            &f.body[2],
            Stmt::Assign {
                target: Expr::Unary {
                    op: UnOp::Deref,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn else_if_chains_parse() {
        let p = parse_src(
            "int f(int x) { if (x == 1) { return 1; } else if (x == 2) { return 2; } else { return 3; } }",
        )
        .unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        let Stmt::If { else_body, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn rejects_bad_lvalues_and_missing_semicolons() {
        assert!(parse_src("int f() { 1 + 2 = 3; }").is_err());
        assert!(parse_src("int f() { return 1 }").is_err());
        assert!(parse_src("int f() { int x = ; }").is_err());
    }

    #[test]
    fn rejects_non_constant_global_initializers() {
        assert!(parse_src("int g = f();").is_err());
        assert!(parse_src("int a[0];").is_err());
        assert!(parse_src("const C = g;").is_err());
    }

    #[test]
    fn predefined_constants_work_in_const_contexts() {
        let p = parse_src("const MODE = O_CREAT | O_TRUNC;\n").unwrap();
        let Item::Const { value, .. } = p.items[0] else {
            panic!()
        };
        assert_eq!(value, 64 | 512);
    }

    #[test]
    fn static_functions_are_marked() {
        let p =
            parse_src("static int helper() { return 1; } int main() { return helper(); }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(f.is_static);
        let Item::Func(m) = &p.items[1] else { panic!() };
        assert!(!m.is_static);
    }
}
