//! Tokenizer for mini-C.

use crate::CompileError;

/// Lexer error alias (same shape as every other compile error).
pub type LexError = CompileError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal, hex, or character constant).
    Int(i64),
    /// String literal (unescaped contents).
    Str(String),
    /// A punctuation or operator token, e.g. `==`, `{`, `+`.
    Punct(&'static str),
    /// End of input marker.
    Eof,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

const PUNCTS: &[&str] = &[
    // Longest first so maximal munch works.
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")", "{", "}", "[", "]", ";", ",", "=",
    "+", "-", "*", "/", "%", "<", ">", "!", "&", "|", "^", "~",
];

fn err(file: &str, line: u32, message: impl Into<String>) -> CompileError {
    CompileError {
        file: file.to_string(),
        line,
        message: message.into(),
    }
}

/// Tokenize a source file.
pub fn lex(file: &str, text: &str) -> Result<Vec<Token>, CompileError> {
    let bytes: Vec<char> = text.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                if bytes[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            if i + 1 >= bytes.len() {
                return Err(err(file, line, "unterminated block comment"));
            }
            i += 2;
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            tokens.push(Token {
                kind: TokenKind::Ident(word),
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            let value = if let Some(hex) = word.strip_prefix("0x").or(word.strip_prefix("0X")) {
                i64::from_str_radix(hex, 16)
                    .map_err(|_| err(file, line, format!("bad hex literal `{word}`")))?
            } else {
                word.parse::<i64>()
                    .map_err(|_| err(file, line, format!("bad integer literal `{word}`")))?
            };
            tokens.push(Token {
                kind: TokenKind::Int(value),
                line,
            });
            continue;
        }
        // Character constants.
        if c == '\'' {
            i += 1;
            if i >= bytes.len() {
                return Err(err(file, line, "unterminated character constant"));
            }
            let value = if bytes[i] == '\\' {
                i += 1;
                let esc = bytes.get(i).copied().unwrap_or('\0');
                i += 1;
                match esc {
                    'n' => '\n' as i64,
                    't' => '\t' as i64,
                    '0' => 0,
                    '\\' => '\\' as i64,
                    '\'' => '\'' as i64,
                    other => return Err(err(file, line, format!("bad escape `\\{other}`"))),
                }
            } else {
                let v = bytes[i] as i64;
                i += 1;
                v
            };
            if bytes.get(i) != Some(&'\'') {
                return Err(err(file, line, "unterminated character constant"));
            }
            i += 1;
            tokens.push(Token {
                kind: TokenKind::Int(value),
                line,
            });
            continue;
        }
        // String literals.
        if c == '"' {
            i += 1;
            let mut out = String::new();
            loop {
                let Some(&ch) = bytes.get(i) else {
                    return Err(err(file, line, "unterminated string literal"));
                };
                i += 1;
                match ch {
                    '"' => break,
                    '\\' => {
                        let esc = bytes.get(i).copied().unwrap_or('\0');
                        i += 1;
                        match esc {
                            'n' => out.push('\n'),
                            't' => out.push('\t'),
                            '0' => out.push('\0'),
                            '"' => out.push('"'),
                            '\\' => out.push('\\'),
                            other => {
                                return Err(err(file, line, format!("bad escape `\\{other}`")))
                            }
                        }
                    }
                    '\n' => return Err(err(file, line, "newline inside string literal")),
                    other => out.push(other),
                }
            }
            tokens.push(Token {
                kind: TokenKind::Str(out),
                line,
            });
            continue;
        }
        // Punctuation / operators.
        let rest: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            tokens.push(Token {
                kind: TokenKind::Punct(p),
                line,
            });
            i += p.len();
            continue;
        }
        return Err(err(file, line, format!("unexpected character `{c}`")));
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex("t.c", src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_identifiers_numbers_and_puncts() {
        let toks = kinds("int x = 0x10 + 42;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(16),
                TokenKind::Punct("+"),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_strings_and_chars_with_escapes() {
        let toks = kinds(r#""a\nb" '\n' 'x'"#);
        assert_eq!(
            toks,
            vec![
                TokenKind::Str("a\nb".into()),
                TokenKind::Int(10),
                TokenKind::Int(120),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn maximal_munch_for_two_char_operators() {
        let toks = kinds("a <= b == c && d");
        assert!(toks.contains(&TokenKind::Punct("<=")));
        assert!(toks.contains(&TokenKind::Punct("==")));
        assert!(toks.contains(&TokenKind::Punct("&&")));
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let toks = lex("t.c", "// one\n/* two\nthree */ x").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let e = lex("t.c", "x\n$").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unexpected"));
        assert!(lex("t.c", "\"abc").is_err());
        assert!(lex("t.c", "/* no end").is_err());
    }
}
