//! Code generation: AST to `lfi-asm` builder calls.
//!
//! The generated code is deliberately simple (all locals spilled to the
//! stack, intermediates pushed/popped), but it preserves the binary patterns
//! the LFI analyses depend on:
//!
//! * calls to functions not defined in the module become `callsym`
//!   instructions (the analyzer's call sites),
//! * `x == CONST` / `x < CONST` comparisons compile to `cmpi` + `jcc`
//!   (the dataflow analysis classifies them as equality/inequality checks),
//! * the return value of a call lands in `r0` and is spilled to a fixed
//!   frame slot when stored in a local (the analyzer tracks those copies),
//! * `errno` reads/writes become TLS loads/stores.

use std::collections::HashMap;

use lfi_arch::{AluOp, Cond, Insn, Reg};
use lfi_asm::AsmBuilder;
use lfi_obj::{Module, ModuleKind, SymKind};

use crate::ast::{BinOp, Expr, Function, Item, Program, Stmt, UnOp};
use crate::consts::predefined;
use crate::CompileError;

/// Scratch register for the left operand / addresses.
const SCRATCH_A: Reg = Reg::R(7);
/// Scratch register for the right operand / stored values.
const SCRATCH_B: Reg = Reg::R(8);
/// Result register.
const RESULT: Reg = Reg::R(0);

#[derive(Debug, Clone, Copy)]
struct LocalSlot {
    /// Positive displacement below the frame pointer.
    offset: i64,
    /// Arrays evaluate to their address rather than a loaded value.
    is_array: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GlobalKind {
    Scalar,
    Array,
}

struct ModuleCtx {
    consts: HashMap<String, i64>,
    globals: HashMap<String, GlobalKind>,
    defined_funcs: HashMap<String, usize>,
    str_count: usize,
}

/// Generate a module from parsed programs.
pub fn generate(
    name: &str,
    kind: ModuleKind,
    needed: &[String],
    programs: &[(String, Program)],
) -> Result<Module, CompileError> {
    let mut builder = AsmBuilder::new(name, kind);
    for lib in needed {
        builder.needs(lib.clone());
    }

    let mut ctx = ModuleCtx {
        consts: HashMap::new(),
        globals: HashMap::new(),
        defined_funcs: HashMap::new(),
        str_count: 0,
    };

    // Pass 1: collect constants, globals and function names across all files.
    for (file, program) in programs {
        for item in &program.items {
            match item {
                Item::Const { name, value } => {
                    ctx.consts.insert(name.clone(), *value);
                }
                Item::Global { name, init } => {
                    if ctx.globals.contains_key(name) {
                        return Err(err(file, 0, format!("duplicate global `{name}`")));
                    }
                    let off = builder.add_words(&[*init]);
                    builder.export_data(name.clone(), off, 8);
                    ctx.globals.insert(name.clone(), GlobalKind::Scalar);
                }
                Item::GlobalArray { name, words } => {
                    if ctx.globals.contains_key(name) {
                        return Err(err(file, 0, format!("duplicate global `{name}`")));
                    }
                    // Global arrays are laid out in the (zero-initialized)
                    // data section rather than BSS so their offsets stay
                    // stable while later passes append string literals.
                    let off = builder.add_words(&vec![0; *words as usize]);
                    builder.export_data(name.clone(), off, *words as u64 * 8);
                    ctx.globals.insert(name.clone(), GlobalKind::Array);
                }
                Item::Func(func) => {
                    if ctx
                        .defined_funcs
                        .insert(func.name.clone(), func.params.len())
                        .is_some()
                    {
                        return Err(err(
                            file,
                            func.line,
                            format!("duplicate function `{}`", func.name),
                        ));
                    }
                }
            }
        }
    }

    // Pass 2: generate code for every function.
    for (file, program) in programs {
        for item in &program.items {
            if let Item::Func(func) = item {
                let mut gen = FuncGen::new(&mut builder, &mut ctx, file, func)?;
                gen.generate()?;
            }
        }
    }

    builder.finish().map_err(|errors| CompileError {
        file: name.to_string(),
        line: 0,
        message: errors
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("; "),
    })
}

fn err(file: &str, line: u32, message: impl Into<String>) -> CompileError {
    CompileError {
        file: file.to_string(),
        line,
        message: message.into(),
    }
}

struct FuncGen<'a> {
    builder: &'a mut AsmBuilder,
    ctx: &'a mut ModuleCtx,
    file: &'a str,
    func: &'a Function,
    locals: HashMap<String, LocalSlot>,
    frame_size: i64,
    label_count: usize,
    loop_stack: Vec<(String, String)>, // (continue target, break target)
}

impl<'a> FuncGen<'a> {
    fn new(
        builder: &'a mut AsmBuilder,
        ctx: &'a mut ModuleCtx,
        file: &'a str,
        func: &'a Function,
    ) -> Result<FuncGen<'a>, CompileError> {
        let mut gen = FuncGen {
            builder,
            ctx,
            file,
            func,
            locals: HashMap::new(),
            frame_size: 0,
            label_count: 0,
            loop_stack: Vec::new(),
        };
        if func.params.len() > 6 {
            return Err(gen.error(func.line, "functions take at most 6 parameters"));
        }
        for param in &func.params {
            gen.declare_local(param, 1, false, func.line)?;
        }
        gen.collect_locals(&func.body)?;
        Ok(gen)
    }

    fn error(&self, line: u32, message: impl Into<String>) -> CompileError {
        err(self.file, line, message)
    }

    fn declare_local(
        &mut self,
        name: &str,
        words: i64,
        is_array: bool,
        line: u32,
    ) -> Result<(), CompileError> {
        if name == "errno" {
            return Err(self.error(line, "`errno` cannot be redeclared"));
        }
        if self.locals.contains_key(name) {
            return Err(self.error(line, format!("duplicate local `{name}`")));
        }
        self.frame_size += words * 8;
        self.locals.insert(
            name.to_string(),
            LocalSlot {
                offset: self.frame_size,
                is_array,
            },
        );
        Ok(())
    }

    fn collect_locals(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        for stmt in body {
            match stmt {
                Stmt::Local { name, line, .. } => self.declare_local(name, 1, false, *line)?,
                Stmt::LocalArray { name, words, line } => {
                    self.declare_local(name, *words, true, *line)?
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.collect_locals(then_body)?;
                    self.collect_locals(else_body)?;
                }
                Stmt::While { body, .. } => self.collect_locals(body)?,
                _ => {}
            }
        }
        Ok(())
    }

    fn fresh_label(&mut self, hint: &str) -> String {
        self.label_count += 1;
        format!("__{}_{}_{}", self.func.name, hint, self.label_count)
    }

    fn generate(&mut self) -> Result<(), CompileError> {
        self.builder.set_file(self.file.to_string());
        self.builder.export_func(self.func.name.clone());
        self.builder.mark_line(self.func.line);
        // Prologue.
        self.builder.emit(Insn::Push { src: Reg::Fp });
        self.builder.emit(Insn::MovR {
            dst: Reg::Fp,
            src: Reg::Sp,
        });
        if self.frame_size > 0 {
            self.builder.emit(Insn::AluI {
                op: AluOp::Sub,
                dst: Reg::Sp,
                imm: self.frame_size,
            });
        }
        // Spill parameters.
        for (i, param) in self.func.params.iter().enumerate() {
            let slot = self.locals[param];
            self.builder.emit(Insn::Store {
                base: Reg::Fp,
                off: -slot.offset,
                src: Reg::ARGS[i],
            });
        }
        let body = self.func.body.clone();
        self.gen_block(&body)?;
        // Implicit `return 0`.
        self.builder.emit(Insn::MovI {
            dst: RESULT,
            imm: 0,
        });
        self.gen_epilogue();
        Ok(())
    }

    fn gen_epilogue(&mut self) {
        self.builder.emit(Insn::MovR {
            dst: Reg::Sp,
            src: Reg::Fp,
        });
        self.builder.emit(Insn::Pop { dst: Reg::Fp });
        self.builder.emit(Insn::Ret);
    }

    fn gen_block(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        for stmt in body {
            self.gen_stmt(stmt)?;
        }
        Ok(())
    }

    fn gen_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Local { name, init, line } => {
                self.builder.mark_line(*line);
                let slot = self.locals[name.as_str()];
                if let Some(init) = init {
                    self.gen_expr(init, *line)?;
                } else {
                    self.builder.emit(Insn::MovI {
                        dst: RESULT,
                        imm: 0,
                    });
                }
                self.builder.emit(Insn::Store {
                    base: Reg::Fp,
                    off: -slot.offset,
                    src: RESULT,
                });
            }
            Stmt::LocalArray { name, words, line } => {
                self.builder.mark_line(*line);
                // Zero the array so repeated frames behave deterministically.
                let slot = self.locals[name.as_str()];
                let loop_label = self.fresh_label("zero");
                let done_label = self.fresh_label("zero_done");
                self.builder.emit(Insn::Lea {
                    dst: SCRATCH_A,
                    base: Reg::Fp,
                    off: -slot.offset,
                });
                self.builder.emit(Insn::MovI {
                    dst: SCRATCH_B,
                    imm: *words,
                });
                self.builder.bind(loop_label.clone());
                self.builder.emit(Insn::CmpI {
                    a: SCRATCH_B,
                    imm: 0,
                });
                self.builder.j(Cond::Eq, done_label.clone());
                self.builder.emit(Insn::MovI {
                    dst: RESULT,
                    imm: 0,
                });
                self.builder.emit(Insn::Store {
                    base: SCRATCH_A,
                    off: 0,
                    src: RESULT,
                });
                self.builder.emit(Insn::AluI {
                    op: AluOp::Add,
                    dst: SCRATCH_A,
                    imm: 8,
                });
                self.builder.emit(Insn::AluI {
                    op: AluOp::Sub,
                    dst: SCRATCH_B,
                    imm: 1,
                });
                self.builder.jmp(loop_label);
                self.builder.bind(done_label);
            }
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                self.builder.mark_line(*line);
                self.gen_assign(target, value, *line)?;
            }
            Stmt::Expr { expr, line } => {
                self.builder.mark_line(*line);
                self.gen_expr(expr, *line)?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                self.builder.mark_line(*line);
                let else_label = self.fresh_label("else");
                let end_label = self.fresh_label("endif");
                self.gen_branch_if_false(cond, &else_label, *line)?;
                self.gen_block(then_body)?;
                if else_body.is_empty() {
                    self.builder.bind(else_label);
                } else {
                    self.builder.jmp(end_label.clone());
                    self.builder.bind(else_label);
                    self.gen_block(else_body)?;
                    self.builder.bind(end_label);
                }
            }
            Stmt::While { cond, body, line } => {
                self.builder.mark_line(*line);
                let start = self.fresh_label("loop");
                let end = self.fresh_label("endloop");
                self.builder.bind(start.clone());
                self.gen_branch_if_false(cond, &end, *line)?;
                self.loop_stack.push((start.clone(), end.clone()));
                self.gen_block(body)?;
                self.loop_stack.pop();
                self.builder.jmp(start);
                self.builder.bind(end);
            }
            Stmt::Return { value, line } => {
                self.builder.mark_line(*line);
                if let Some(value) = value {
                    self.gen_expr(value, *line)?;
                } else {
                    self.builder.emit(Insn::MovI {
                        dst: RESULT,
                        imm: 0,
                    });
                }
                self.gen_epilogue();
            }
            Stmt::Break { line } => {
                let Some((_, end)) = self.loop_stack.last().cloned() else {
                    return Err(self.error(*line, "`break` outside of a loop"));
                };
                self.builder.jmp(end);
            }
            Stmt::Continue { line } => {
                let Some((start, _)) = self.loop_stack.last().cloned() else {
                    return Err(self.error(*line, "`continue` outside of a loop"));
                };
                self.builder.jmp(start);
            }
        }
        Ok(())
    }

    fn gen_assign(&mut self, target: &Expr, value: &Expr, line: u32) -> Result<(), CompileError> {
        match target {
            Expr::Ident(name) if name == "errno" => {
                self.gen_expr(value, line)?;
                self.builder.tls_store("errno", RESULT);
            }
            Expr::Ident(name) => {
                if let Some(slot) = self.locals.get(name).copied() {
                    if slot.is_array {
                        return Err(self.error(line, format!("cannot assign to array `{name}`")));
                    }
                    self.gen_expr(value, line)?;
                    self.builder.emit(Insn::Store {
                        base: Reg::Fp,
                        off: -slot.offset,
                        src: RESULT,
                    });
                } else if let Some(kind) = self.ctx.globals.get(name).copied() {
                    if kind == GlobalKind::Array {
                        return Err(self.error(line, format!("cannot assign to array `{name}`")));
                    }
                    self.gen_expr(value, line)?;
                    self.builder.lea_sym(SCRATCH_A, name.clone(), SymKind::Data);
                    self.builder.emit(Insn::Store {
                        base: SCRATCH_A,
                        off: 0,
                        src: RESULT,
                    });
                } else if self.ctx.consts.contains_key(name) || predefined(name).is_some() {
                    return Err(self.error(line, format!("cannot assign to constant `{name}`")));
                } else {
                    return Err(self.error(line, format!("unknown variable `{name}`")));
                }
            }
            Expr::Unary {
                op: UnOp::Deref,
                expr,
            } => {
                self.gen_expr(expr, line)?;
                self.builder.emit(Insn::Push { src: RESULT });
                self.gen_expr(value, line)?;
                self.builder.emit(Insn::Pop { dst: SCRATCH_A });
                self.builder.emit(Insn::Store {
                    base: SCRATCH_A,
                    off: 0,
                    src: RESULT,
                });
            }
            Expr::Index { base, index } => {
                self.gen_address_of_index(base, index, line)?;
                self.builder.emit(Insn::Push { src: RESULT });
                self.gen_expr(value, line)?;
                self.builder.emit(Insn::Pop { dst: SCRATCH_A });
                self.builder.emit(Insn::Store {
                    base: SCRATCH_A,
                    off: 0,
                    src: RESULT,
                });
            }
            _ => return Err(self.error(line, "invalid assignment target")),
        }
        Ok(())
    }

    /// Leave the address `base + 8*index` in `RESULT`.
    fn gen_address_of_index(
        &mut self,
        base: &Expr,
        index: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        self.gen_expr(base, line)?;
        if let Expr::Int(i) = index {
            self.builder.emit(Insn::AluI {
                op: AluOp::Add,
                dst: RESULT,
                imm: i * 8,
            });
            return Ok(());
        }
        self.builder.emit(Insn::Push { src: RESULT });
        self.gen_expr(index, line)?;
        self.builder.emit(Insn::AluI {
            op: AluOp::Shl,
            dst: RESULT,
            imm: 3,
        });
        self.builder.emit(Insn::Pop { dst: SCRATCH_A });
        self.builder.emit(Insn::Alu {
            op: AluOp::Add,
            dst: RESULT,
            src: SCRATCH_A,
        });
        Ok(())
    }

    fn cond_of(op: BinOp) -> Cond {
        match op {
            BinOp::Eq => Cond::Eq,
            BinOp::Ne => Cond::Ne,
            BinOp::Lt => Cond::Lt,
            BinOp::Le => Cond::Le,
            BinOp::Gt => Cond::Gt,
            BinOp::Ge => Cond::Ge,
            _ => unreachable!("not a comparison"),
        }
    }

    /// Evaluate a comparison's operands and set the machine flags.
    fn gen_compare_flags(&mut self, lhs: &Expr, rhs: &Expr, line: u32) -> Result<(), CompileError> {
        // Fold a constant right-hand side (including named constants) into a
        // `cmpi`, which is both what a real compiler does and the pattern the
        // call-site analyzer classifies.
        if let Some(value) = self.const_value(rhs) {
            self.gen_expr(lhs, line)?;
            self.builder.emit(Insn::CmpI {
                a: RESULT,
                imm: value,
            });
            return Ok(());
        }
        self.gen_expr(lhs, line)?;
        self.builder.emit(Insn::Push { src: RESULT });
        self.gen_expr(rhs, line)?;
        self.builder.emit(Insn::Pop { dst: SCRATCH_A });
        self.builder.emit(Insn::Cmp {
            a: SCRATCH_A,
            b: RESULT,
        });
        Ok(())
    }

    /// Jump to `target` when `cond` evaluates to false.
    fn gen_branch_if_false(
        &mut self,
        cond: &Expr,
        target: &str,
        line: u32,
    ) -> Result<(), CompileError> {
        match cond {
            Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
                self.gen_compare_flags(lhs, rhs, line)?;
                self.builder.j(Self::cond_of(*op).negate(), target);
            }
            Expr::Binary {
                op: BinOp::LogAnd,
                lhs,
                rhs,
            } => {
                self.gen_branch_if_false(lhs, target, line)?;
                self.gen_branch_if_false(rhs, target, line)?;
            }
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => {
                self.gen_expr(expr, line)?;
                self.builder.emit(Insn::CmpI { a: RESULT, imm: 0 });
                self.builder.j(Cond::Ne, target);
            }
            other => {
                self.gen_expr(other, line)?;
                self.builder.emit(Insn::CmpI { a: RESULT, imm: 0 });
                self.builder.j(Cond::Eq, target);
            }
        }
        Ok(())
    }

    /// The compile-time value of an expression, if it is a constant.
    fn const_value(&self, expr: &Expr) -> Option<i64> {
        match expr {
            Expr::Int(v) => Some(*v),
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => self.const_value(expr).map(|v| v.wrapping_neg()),
            Expr::Unary {
                op: UnOp::BitNot,
                expr,
            } => self.const_value(expr).map(|v| !v),
            Expr::Binary { op, lhs, rhs } => {
                let a = self.const_value(lhs)?;
                let b = self.const_value(rhs)?;
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div if b != 0 => a.wrapping_div(b),
                    BinOp::Mod if b != 0 => a.wrapping_rem(b),
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    _ => return None,
                })
            }
            Expr::Ident(name) => {
                if self.locals.contains_key(name) || self.ctx.globals.contains_key(name) {
                    None
                } else {
                    self.ctx
                        .consts
                        .get(name)
                        .copied()
                        .or_else(|| predefined(name))
                }
            }
            _ => None,
        }
    }

    /// Evaluate an expression into `RESULT` (`r0`).
    fn gen_expr(&mut self, expr: &Expr, line: u32) -> Result<(), CompileError> {
        // Fold constant expressions (including `-1`, `-ENOENT`, `A | B`) into
        // a single immediate load; this is what a real compiler does and it
        // keeps error-return constants visible to the binary analyses.
        if let Some(value) = self.const_value(expr) {
            self.builder.emit(Insn::MovI {
                dst: RESULT,
                imm: value,
            });
            return Ok(());
        }
        match expr {
            Expr::Int(value) => {
                self.builder.emit(Insn::MovI {
                    dst: RESULT,
                    imm: *value,
                });
            }
            Expr::Str(text) => {
                let symbol = format!("__str_{}", self.ctx.str_count);
                self.ctx.str_count += 1;
                let off = self.builder.add_cstring(text);
                self.builder
                    .export_data(symbol.clone(), off, text.len() as u64 + 1);
                self.builder.lea_sym(RESULT, symbol, SymKind::Data);
            }
            Expr::Ident(name) => self.gen_ident(name, line)?,
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => {
                    self.gen_expr(expr, line)?;
                    self.builder.emit(Insn::Neg { dst: RESULT });
                }
                UnOp::BitNot => {
                    self.gen_expr(expr, line)?;
                    self.builder.emit(Insn::Not { dst: RESULT });
                }
                UnOp::Not => {
                    self.gen_expr(expr, line)?;
                    let one = self.fresh_label("one");
                    let end = self.fresh_label("end");
                    self.builder.emit(Insn::CmpI { a: RESULT, imm: 0 });
                    self.builder.j(Cond::Eq, one.clone());
                    self.builder.emit(Insn::MovI {
                        dst: RESULT,
                        imm: 0,
                    });
                    self.builder.jmp(end.clone());
                    self.builder.bind(one);
                    self.builder.emit(Insn::MovI {
                        dst: RESULT,
                        imm: 1,
                    });
                    self.builder.bind(end);
                }
                UnOp::Deref => {
                    self.gen_expr(expr, line)?;
                    self.builder.emit(Insn::Load {
                        dst: RESULT,
                        base: RESULT,
                        off: 0,
                    });
                }
                UnOp::Addr => self.gen_addr_of(expr, line)?,
            },
            Expr::Binary { op, lhs, rhs } => self.gen_binary(*op, lhs, rhs, line)?,
            Expr::Index { base, index } => {
                self.gen_address_of_index(base, index, line)?;
                self.builder.emit(Insn::Load {
                    dst: RESULT,
                    base: RESULT,
                    off: 0,
                });
            }
            Expr::Call { name, args } => self.gen_call(name, args, line)?,
        }
        Ok(())
    }

    fn gen_ident(&mut self, name: &str, line: u32) -> Result<(), CompileError> {
        if name == "errno" {
            self.builder.tls_load(RESULT, "errno");
            return Ok(());
        }
        if let Some(slot) = self.locals.get(name).copied() {
            if slot.is_array {
                self.builder.emit(Insn::Lea {
                    dst: RESULT,
                    base: Reg::Fp,
                    off: -slot.offset,
                });
            } else {
                self.builder.emit(Insn::Load {
                    dst: RESULT,
                    base: Reg::Fp,
                    off: -slot.offset,
                });
            }
            return Ok(());
        }
        if let Some(value) = self.ctx.consts.get(name).copied() {
            self.builder.emit(Insn::MovI {
                dst: RESULT,
                imm: value,
            });
            return Ok(());
        }
        if let Some(kind) = self.ctx.globals.get(name).copied() {
            match kind {
                GlobalKind::Scalar => {
                    self.builder.lea_sym(SCRATCH_A, name, SymKind::Data);
                    self.builder.emit(Insn::Load {
                        dst: RESULT,
                        base: SCRATCH_A,
                        off: 0,
                    });
                }
                GlobalKind::Array => {
                    self.builder.lea_sym(RESULT, name, SymKind::Data);
                }
            }
            return Ok(());
        }
        if let Some(value) = predefined(name) {
            self.builder.emit(Insn::MovI {
                dst: RESULT,
                imm: value,
            });
            return Ok(());
        }
        Err(self.error(line, format!("unknown identifier `{name}`")))
    }

    fn gen_addr_of(&mut self, expr: &Expr, line: u32) -> Result<(), CompileError> {
        match expr {
            Expr::Ident(name) => {
                if let Some(slot) = self.locals.get(name).copied() {
                    self.builder.emit(Insn::Lea {
                        dst: RESULT,
                        base: Reg::Fp,
                        off: -slot.offset,
                    });
                    Ok(())
                } else if self.ctx.globals.contains_key(name) {
                    self.builder.lea_sym(RESULT, name, SymKind::Data);
                    Ok(())
                } else {
                    Err(self.error(line, format!("cannot take the address of `{name}`")))
                }
            }
            Expr::Index { base, index } => self.gen_address_of_index(base, index, line),
            _ => Err(self.error(line, "cannot take the address of this expression")),
        }
    }

    fn gen_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        if op.is_comparison() {
            self.gen_compare_flags(lhs, rhs, line)?;
            let yes = self.fresh_label("true");
            let end = self.fresh_label("cmp_end");
            self.builder.j(Self::cond_of(op), yes.clone());
            self.builder.emit(Insn::MovI {
                dst: RESULT,
                imm: 0,
            });
            self.builder.jmp(end.clone());
            self.builder.bind(yes);
            self.builder.emit(Insn::MovI {
                dst: RESULT,
                imm: 1,
            });
            self.builder.bind(end);
            return Ok(());
        }
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let short = self.fresh_label("short");
            let end = self.fresh_label("logic_end");
            self.gen_expr(lhs, line)?;
            self.builder.emit(Insn::CmpI { a: RESULT, imm: 0 });
            match op {
                BinOp::LogAnd => self.builder.j(Cond::Eq, short.clone()),
                BinOp::LogOr => self.builder.j(Cond::Ne, short.clone()),
                _ => unreachable!(),
            };
            // Left side did not decide the result; the right side does.
            self.gen_expr(rhs, line)?;
            self.builder.emit(Insn::CmpI { a: RESULT, imm: 0 });
            let yes = self.fresh_label("logic_one");
            self.builder.j(Cond::Ne, yes.clone());
            self.builder.emit(Insn::MovI {
                dst: RESULT,
                imm: 0,
            });
            self.builder.jmp(end.clone());
            self.builder.bind(yes);
            self.builder.emit(Insn::MovI {
                dst: RESULT,
                imm: 1,
            });
            self.builder.jmp(end.clone());
            self.builder.bind(short);
            self.builder.emit(Insn::MovI {
                dst: RESULT,
                imm: match op {
                    BinOp::LogAnd => 0,
                    BinOp::LogOr => 1,
                    _ => unreachable!(),
                },
            });
            self.builder.bind(end);
            return Ok(());
        }
        let alu = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => AluOp::Div,
            BinOp::Mod => AluOp::Mod,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
            BinOp::Xor => AluOp::Xor,
            BinOp::Shl => AluOp::Shl,
            BinOp::Shr => AluOp::Shr,
            _ => unreachable!(),
        };
        if let Some(value) = self.const_value(rhs) {
            self.gen_expr(lhs, line)?;
            self.builder.emit(Insn::AluI {
                op: alu,
                dst: RESULT,
                imm: value,
            });
            return Ok(());
        }
        self.gen_expr(lhs, line)?;
        self.builder.emit(Insn::Push { src: RESULT });
        self.gen_expr(rhs, line)?;
        self.builder.emit(Insn::MovR {
            dst: SCRATCH_B,
            src: RESULT,
        });
        self.builder.emit(Insn::Pop { dst: RESULT });
        self.builder.emit(Insn::Alu {
            op: alu,
            dst: RESULT,
            src: SCRATCH_B,
        });
        Ok(())
    }

    fn gen_call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<(), CompileError> {
        // Builtins first.
        match name {
            "__sys" => {
                if args.is_empty() || args.len() > 7 {
                    return Err(self.error(line, "__sys takes 1 to 7 arguments"));
                }
                let Some(num) = self.const_value(&args[0]) else {
                    return Err(self.error(line, "__sys number must be a constant"));
                };
                let rest = &args[1..];
                for arg in rest {
                    self.gen_expr(arg, line)?;
                    self.builder.emit(Insn::Push { src: RESULT });
                }
                for i in (0..rest.len()).rev() {
                    self.builder.emit(Insn::Pop { dst: Reg::ARGS[i] });
                }
                self.builder.emit(Insn::Sys { num });
                return Ok(());
            }
            "__fnaddr" => {
                let [Expr::Ident(func)] = args else {
                    return Err(self.error(line, "__fnaddr takes a single function name"));
                };
                self.builder.lea_sym(RESULT, func.clone(), SymKind::Func);
                return Ok(());
            }
            "__load8" => {
                let [ptr] = args else {
                    return Err(self.error(line, "__load8 takes a single pointer"));
                };
                self.gen_expr(ptr, line)?;
                self.builder.emit(Insn::Load8 {
                    dst: RESULT,
                    base: RESULT,
                    off: 0,
                });
                return Ok(());
            }
            "__store8" => {
                let [ptr, value] = args else {
                    return Err(self.error(line, "__store8 takes a pointer and a value"));
                };
                self.gen_expr(ptr, line)?;
                self.builder.emit(Insn::Push { src: RESULT });
                self.gen_expr(value, line)?;
                self.builder.emit(Insn::Pop { dst: SCRATCH_A });
                self.builder.emit(Insn::Store8 {
                    base: SCRATCH_A,
                    off: 0,
                    src: RESULT,
                });
                return Ok(());
            }
            _ => {}
        }
        if args.len() > 6 {
            return Err(self.error(line, "calls take at most 6 arguments"));
        }
        for arg in args {
            self.gen_expr(arg, line)?;
            self.builder.emit(Insn::Push { src: RESULT });
        }
        for i in (0..args.len()).rev() {
            self.builder.emit(Insn::Pop { dst: Reg::ARGS[i] });
        }
        if self.ctx.defined_funcs.contains_key(name) {
            // Defined in this module: a direct call, not interposable —
            // exactly like an intra-module call on a real system.
            self.builder.call_local(name.to_string());
        } else {
            // Imported: a `callsym` with a relocation, the unit the LFI
            // call-site analyzer and interposition runtime operate on.
            self.builder.call_sym(name.to_string());
        }
        Ok(())
    }
}

/// Convenience used by tests and benches: `(name, words)` pairs describing
/// exported globals of a compiled module.
pub fn exported_globals(module: &Module) -> Vec<(String, u64)> {
    module
        .exports
        .iter()
        .filter(|e| e.kind == SymKind::Data && !e.name.starts_with("__str_"))
        .map(|e| (e.name.clone(), e.size / 8))
        .collect()
}

#[allow(unused_imports)]
#[cfg(test)]
mod tests {
    use lfi_arch::Insn;
    use lfi_obj::ModuleKind;

    use crate::Compiler;

    fn compile(src: &str) -> lfi_obj::Module {
        Compiler::new("test", ModuleKind::SharedLib)
            .add_source("test.c", src)
            .compile()
            .expect("compile")
    }

    #[test]
    fn library_calls_become_callsym_sites() {
        let m = compile(
            r#"
            int f() {
                int fd = open("/x", O_RDONLY, 0);
                if (fd == -1) { return -1; }
                close(fd);
                return 0;
            }
            "#,
        );
        assert_eq!(m.call_sites_of("open").len(), 1);
        assert_eq!(m.call_sites_of("close").len(), 1);
        assert_eq!(m.imported_functions(), vec!["close", "open"]);
    }

    #[test]
    fn intra_module_calls_are_direct() {
        let m = compile(
            r#"
            int helper(int x) { return x + 1; }
            int f() { return helper(1); }
            "#,
        );
        assert!(m.call_sites_of("helper").is_empty());
        // A direct `call` instruction exists.
        assert!(m
            .decode_code()
            .iter()
            .any(|(_, i)| matches!(i, Insn::Call { .. })));
    }

    #[test]
    fn errno_compiles_to_tls_accesses() {
        let m = compile("int f() { errno = 5; return errno; }");
        let insns: Vec<Insn> = m.decode_code().into_iter().map(|(_, i)| i).collect();
        assert!(insns.iter().any(|i| matches!(i, Insn::TlsStore { .. })));
        assert!(insns.iter().any(|i| matches!(i, Insn::TlsLoad { .. })));
    }

    #[test]
    fn comparisons_against_constants_use_cmpi() {
        let m = compile(
            r#"
            int f() {
                int r = read(0, 0, 0);
                if (r == -1) { return 1; }
                if (r < 0) { return 2; }
                return 0;
            }
            "#,
        );
        let insns: Vec<Insn> = m.decode_code().into_iter().map(|(_, i)| i).collect();
        let cmpi_count = insns
            .iter()
            .filter(|i| matches!(i, Insn::CmpI { imm: -1, .. } | Insn::CmpI { imm: 0, .. }))
            .count();
        assert!(cmpi_count >= 2, "expected cmpi checks, got {insns:?}");
    }

    #[test]
    fn globals_are_exported_data_symbols() {
        let m = compile(
            "int counter = 7;\nint table[4];\nint f() { counter = counter + 1; return table[0]; }",
        );
        assert!(m.export("counter", lfi_obj::SymKind::Data).is_some());
        assert!(m.export("table", lfi_obj::SymKind::Data).is_some());
        // Initialized value is in the data section.
        let counter = m.export("counter", lfi_obj::SymKind::Data).unwrap();
        let bytes = &m.data[counter.offset as usize..counter.offset as usize + 8];
        assert_eq!(i64::from_le_bytes(bytes.try_into().unwrap()), 7);
    }

    #[test]
    fn line_table_maps_statements_to_lines() {
        let src = "int f() {\n    int a = 1;\n    int b = 2;\n    return a + b;\n}\n";
        let m = compile(src);
        assert!(!m.line_table.is_empty());
        let lines: Vec<u32> = m.line_table.iter().map(|e| e.line).collect();
        assert!(lines.contains(&2));
        assert!(lines.contains(&4));
    }

    #[test]
    fn compile_errors_carry_location() {
        let err = Compiler::new("bad", ModuleKind::SharedLib)
            .add_source("bad.c", "int f() {\n    return unknown_var;\n}\n")
            .compile()
            .unwrap_err();
        assert_eq!(err.file, "bad.c");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown_var"));
    }

    #[test]
    fn duplicate_definitions_are_rejected() {
        assert!(Compiler::new("bad", ModuleKind::SharedLib)
            .add_source("a.c", "int f() { return 0; }")
            .add_source("b.c", "int f() { return 1; }")
            .compile()
            .is_err());
        assert!(Compiler::new("bad", ModuleKind::SharedLib)
            .add_source("a.c", "int g;\nint g;\n")
            .compile()
            .is_err());
        assert!(Compiler::new("bad", ModuleKind::SharedLib)
            .add_source("a.c", "int f() { int x; int x; return 0; }")
            .compile()
            .is_err());
    }

    #[test]
    fn break_and_continue_require_a_loop() {
        assert!(Compiler::new("bad", ModuleKind::SharedLib)
            .add_source("a.c", "int f() { break; return 0; }")
            .compile()
            .is_err());
    }

    #[test]
    fn string_literals_land_in_rodata() {
        let m = compile(r#"int f() { return puts("hello world"); }"#);
        let data = String::from_utf8_lossy(&m.data);
        assert!(data.contains("hello world"));
        assert_eq!(m.call_sites_of("puts").len(), 1);
    }
}
