//! Register file definition and the calling convention register roles.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A machine register.
///
/// There are 16 general-purpose registers plus the stack pointer and the
/// frame pointer. The calling convention (see [`crate::abi::CallConv`]) gives
/// `R0` the return-value role and `R1..=R6` the argument roles, mirroring the
/// x86-64 System V convention the paper's analyses implicitly rely on
/// (the return value of a library call lives in one well-known register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Reg {
    /// General purpose register `rN` for `N` in `0..16`.
    R(u8),
    /// Stack pointer.
    Sp,
    /// Frame pointer.
    Fp,
}

impl Reg {
    /// Number of encodable registers (16 GPRs + SP + FP).
    pub const COUNT: usize = 18;

    /// The return-value register (`r0`).
    pub const RET: Reg = Reg::R(0);

    /// Argument registers, in order.
    pub const ARGS: [Reg; 6] = [
        Reg::R(1),
        Reg::R(2),
        Reg::R(3),
        Reg::R(4),
        Reg::R(5),
        Reg::R(6),
    ];

    /// Encode the register into its one-byte binary representation.
    pub fn encode(self) -> u8 {
        match self {
            Reg::R(n) => {
                debug_assert!(n < 16, "general register index out of range: {n}");
                n
            }
            Reg::Sp => 16,
            Reg::Fp => 17,
        }
    }

    /// Decode a register from its one-byte binary representation.
    pub fn decode(byte: u8) -> Option<Reg> {
        match byte {
            0..=15 => Some(Reg::R(byte)),
            16 => Some(Reg::Sp),
            17 => Some(Reg::Fp),
            _ => None,
        }
    }

    /// A dense index in `0..Reg::COUNT`, usable for register-file arrays.
    pub fn index(self) -> usize {
        self.encode() as usize
    }

    /// Iterate over every register.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(|b| Reg::decode(b).expect("index in range"))
    }

    /// Whether the register is callee-saved under the default calling
    /// convention (`r10..r15`, `fp`).
    pub fn is_callee_saved(self) -> bool {
        matches!(self, Reg::R(10..=15) | Reg::Fp)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::R(n) => write!(f, "r{n}"),
            Reg::Sp => write!(f, "sp"),
            Reg::Fp => write!(f, "fp"),
        }
    }
}

impl std::str::FromStr for Reg {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sp" => Ok(Reg::Sp),
            "fp" => Ok(Reg::Fp),
            _ => {
                let rest = s
                    .strip_prefix('r')
                    .ok_or_else(|| format!("unknown register `{s}`"))?;
                let n: u8 = rest
                    .parse()
                    .map_err(|_| format!("unknown register `{s}`"))?;
                if n < 16 {
                    Ok(Reg::R(n))
                } else {
                    Err(format!("register index out of range `{s}`"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for reg in Reg::all() {
            assert_eq!(Reg::decode(reg.encode()), Some(reg));
        }
    }

    #[test]
    fn decode_rejects_out_of_range() {
        assert_eq!(Reg::decode(18), None);
        assert_eq!(Reg::decode(255), None);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for reg in Reg::all() {
            let text = reg.to_string();
            let parsed: Reg = text.parse().expect("parse back");
            assert_eq!(parsed, reg);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("r16".parse::<Reg>().is_err());
        assert!("x3".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
    }

    #[test]
    fn callee_saved_set() {
        assert!(Reg::R(10).is_callee_saved());
        assert!(Reg::Fp.is_callee_saved());
        assert!(!Reg::R(0).is_callee_saved());
        assert!(!Reg::R(1).is_callee_saved());
        assert!(!Reg::Sp.is_callee_saved());
    }

    #[test]
    fn ret_and_args_are_distinct() {
        for a in Reg::ARGS {
            assert_ne!(a, Reg::RET);
        }
    }
}
