//! Simulated instruction-set architecture for the LFI reproduction.
//!
//! The LFI paper operates on x86 Linux binaries. This crate defines the
//! architecture our substrate uses instead: a small, fixed-width register
//! machine that keeps every property the LFI analyses rely on —
//! a dedicated return-value register, compare-and-branch sequences,
//! call/return with a stack, direct calls to imported symbols (relocations),
//! and thread-local storage accesses used for `errno`.
//!
//! The crate is intentionally dependency-light: it only defines data types,
//! the binary encoding of instructions, and the ABI constants (error numbers
//! and syscall numbers) shared by the compiler, the VM, the simulated libc,
//! the profiler and the call-site analyzer.

pub mod abi;
pub mod insn;
pub mod reg;

pub use abi::{errno, fcntlcmd, filekind, openflags, sys, CallConv};
pub use insn::{decode_all, AluOp, Cond, DecodeError, Insn, INSN_SIZE};
pub use reg::Reg;

/// Machine word type. All registers and memory words are 64-bit signed.
pub type Word = i64;

/// Unsigned virtual address.
pub type Addr = u64;
