//! ABI constants shared by the whole tool chain.
//!
//! The simulated operating environment follows the Linux convention the paper
//! assumes: library functions report failures through an error return value
//! (most commonly `-1` or a null pointer) plus the thread-local `errno`
//! variable, and the kernel-facing syscall layer reports failures as negative
//! `errno` values that the simulated libc translates.

use serde::{Deserialize, Serialize};

use crate::Reg;

/// Error numbers (`errno` values) used by the simulated environment.
///
/// The numeric values follow Linux so that fault profiles read naturally.
pub mod errno {
    /// Operation not permitted.
    pub const EPERM: i64 = 1;
    /// No such file or directory.
    pub const ENOENT: i64 = 2;
    /// Interrupted system call.
    pub const EINTR: i64 = 4;
    /// Input/output error.
    pub const EIO: i64 = 5;
    /// Bad file descriptor.
    pub const EBADF: i64 = 9;
    /// Resource temporarily unavailable (would block).
    pub const EAGAIN: i64 = 11;
    /// Cannot allocate memory.
    pub const ENOMEM: i64 = 12;
    /// Permission denied.
    pub const EACCES: i64 = 13;
    /// Device or resource busy.
    pub const EBUSY: i64 = 16;
    /// File exists.
    pub const EEXIST: i64 = 17;
    /// Not a directory.
    pub const ENOTDIR: i64 = 20;
    /// Is a directory.
    pub const EISDIR: i64 = 21;
    /// Invalid argument.
    pub const EINVAL: i64 = 22;
    /// Too many open files.
    pub const EMFILE: i64 = 24;
    /// No space left on device.
    pub const ENOSPC: i64 = 28;
    /// Broken pipe.
    pub const EPIPE: i64 = 32;
    /// Message too long.
    pub const EMSGSIZE: i64 = 90;
    /// Connection refused.
    pub const ECONNREFUSED: i64 = 111;

    /// Human-readable name for an errno value, if it is one we define.
    pub fn name(value: i64) -> Option<&'static str> {
        Some(match value {
            EPERM => "EPERM",
            ENOENT => "ENOENT",
            EINTR => "EINTR",
            EIO => "EIO",
            EBADF => "EBADF",
            EAGAIN => "EAGAIN",
            ENOMEM => "ENOMEM",
            EACCES => "EACCES",
            EBUSY => "EBUSY",
            EEXIST => "EEXIST",
            ENOTDIR => "ENOTDIR",
            EISDIR => "EISDIR",
            EINVAL => "EINVAL",
            EMFILE => "EMFILE",
            ENOSPC => "ENOSPC",
            EPIPE => "EPIPE",
            EMSGSIZE => "EMSGSIZE",
            ECONNREFUSED => "ECONNREFUSED",
            _ => return None,
        })
    }

    /// Parse a symbolic errno name (`"EINTR"`) into its value.
    pub fn from_name(name: &str) -> Option<i64> {
        Some(match name {
            "EPERM" => EPERM,
            "ENOENT" => ENOENT,
            "EINTR" => EINTR,
            "EIO" => EIO,
            "EBADF" => EBADF,
            "EAGAIN" => EAGAIN,
            "ENOMEM" => ENOMEM,
            "EACCES" => EACCES,
            "EBUSY" => EBUSY,
            "EEXIST" => EEXIST,
            "ENOTDIR" => ENOTDIR,
            "EISDIR" => EISDIR,
            "EINVAL" => EINVAL,
            "EMFILE" => EMFILE,
            "ENOSPC" => ENOSPC,
            "EPIPE" => EPIPE,
            "EMSGSIZE" => EMSGSIZE,
            "ECONNREFUSED" => ECONNREFUSED,
            _ => return None,
        })
    }

    /// All errno values this environment defines.
    pub const ALL: [i64; 18] = [
        EPERM,
        ENOENT,
        EINTR,
        EIO,
        EBADF,
        EAGAIN,
        ENOMEM,
        EACCES,
        EBUSY,
        EEXIST,
        ENOTDIR,
        EISDIR,
        EINVAL,
        EMFILE,
        ENOSPC,
        EPIPE,
        EMSGSIZE,
        ECONNREFUSED,
    ];
}

/// Syscall numbers exposed by the VM to the simulated libc.
///
/// Arguments are passed in `r1..r6`; the result is returned in `r0` using the
/// kernel convention: non-negative on success, `-errno` on failure.
pub mod sys {
    /// Terminate the process with the exit code in `r1`.
    pub const EXIT: i64 = 1;
    /// Open a file: `r1` = path pointer, `r2` = flags, `r3` = mode. Returns fd.
    pub const OPEN: i64 = 2;
    /// Close a file descriptor in `r1`.
    pub const CLOSE: i64 = 3;
    /// Read: `r1` = fd, `r2` = buffer, `r3` = count. Returns bytes read.
    pub const READ: i64 = 4;
    /// Write: `r1` = fd, `r2` = buffer, `r3` = count. Returns bytes written.
    pub const WRITE: i64 = 5;
    /// Seek: `r1` = fd, `r2` = offset, `r3` = whence.
    pub const LSEEK: i64 = 6;
    /// Stat by fd: `r1` = fd, `r2` = stat buffer pointer.
    pub const FSTAT: i64 = 7;
    /// Stat by path: `r1` = path pointer, `r2` = stat buffer pointer.
    pub const STAT: i64 = 8;
    /// Remove a file: `r1` = path pointer.
    pub const UNLINK: i64 = 9;
    /// Create a directory: `r1` = path pointer.
    pub const MKDIR: i64 = 10;
    /// Open a directory for iteration: `r1` = path pointer. Returns a handle.
    pub const OPENDIR: i64 = 11;
    /// Read the next directory entry: `r1` = handle, `r2` = name buffer,
    /// `r3` = buffer capacity. Returns name length, 0 at end.
    pub const READDIR: i64 = 12;
    /// Close a directory handle in `r1`.
    pub const CLOSEDIR: i64 = 13;
    /// Read a symlink target: `r1` = path, `r2` = buffer, `r3` = capacity.
    pub const READLINK: i64 = 14;
    /// Create a symlink: `r1` = target, `r2` = link path.
    pub const SYMLINK: i64 = 15;
    /// Rename: `r1` = old path, `r2` = new path.
    pub const RENAME: i64 = 16;
    /// Grow the heap break by `r1` bytes. Returns the previous break address.
    pub const SBRK: i64 = 17;
    /// Set an environment variable: `r1` = name, `r2` = value.
    pub const SETENV: i64 = 18;
    /// Get an environment variable: `r1` = name, `r2` = buffer, `r3` = cap.
    /// Returns value length or -ENOENT.
    pub const GETENV: i64 = 19;
    /// Create a datagram socket. Returns a socket descriptor.
    pub const SOCKET: i64 = 20;
    /// Bind a socket: `r1` = sockfd, `r2` = port.
    pub const BIND: i64 = 21;
    /// Send a datagram: `r1` = sockfd, `r2` = buffer, `r3` = length,
    /// `r4` = destination node id, `r5` = destination port.
    pub const SENDTO: i64 = 22;
    /// Receive a datagram: `r1` = sockfd, `r2` = buffer, `r3` = capacity,
    /// `r4` = pointer to sender info (2 words: node, port) or 0.
    pub const RECVFROM: i64 = 23;
    /// File-descriptor control: `r1` = fd, `r2` = command, `r3` = argument.
    pub const FCNTL: i64 = 24;
    /// Current virtual time in ticks.
    pub const GETTIME: i64 = 25;
    /// Abort the process (SIGABRT analogue).
    pub const ABORT: i64 = 26;
    /// Spawn a green thread: `r1` = entry address, `r2` = argument word.
    pub const THREAD_CREATE: i64 = 27;
    /// Terminate the calling thread.
    pub const THREAD_EXIT: i64 = 28;
    /// Yield the processor to another runnable thread.
    pub const YIELD: i64 = 29;
    /// Initialize a mutex: `r1` = mutex id.
    pub const MUTEX_INIT: i64 = 30;
    /// Lock a mutex: `r1` = mutex id.
    pub const MUTEX_LOCK: i64 = 31;
    /// Unlock a mutex: `r1` = mutex id. Unlocking a mutex that is not held is
    /// a fatal process fault (error-checking mutex, as in glibc).
    pub const MUTEX_UNLOCK: i64 = 32;
    /// Pseudo-random number from the process-deterministic stream.
    pub const RANDOM: i64 = 33;
    /// Truncate a file: `r1` = path, `r2` = length.
    pub const TRUNCATE: i64 = 34;

    /// Human-readable name of a syscall number (for traces and logs).
    pub fn name(num: i64) -> Option<&'static str> {
        Some(match num {
            EXIT => "exit",
            OPEN => "open",
            CLOSE => "close",
            READ => "read",
            WRITE => "write",
            LSEEK => "lseek",
            FSTAT => "fstat",
            STAT => "stat",
            UNLINK => "unlink",
            MKDIR => "mkdir",
            OPENDIR => "opendir",
            READDIR => "readdir",
            CLOSEDIR => "closedir",
            READLINK => "readlink",
            SYMLINK => "symlink",
            RENAME => "rename",
            SBRK => "sbrk",
            SETENV => "setenv",
            GETENV => "getenv",
            SOCKET => "socket",
            BIND => "bind",
            SENDTO => "sendto",
            RECVFROM => "recvfrom",
            FCNTL => "fcntl",
            GETTIME => "gettime",
            ABORT => "abort",
            THREAD_CREATE => "thread_create",
            THREAD_EXIT => "thread_exit",
            YIELD => "yield",
            MUTEX_INIT => "mutex_init",
            MUTEX_LOCK => "mutex_lock",
            MUTEX_UNLOCK => "mutex_unlock",
            RANDOM => "random",
            TRUNCATE => "truncate",
            _ => return None,
        })
    }
}

/// File-descriptor kinds reported by `fstat`/`stat` in the `kind` field of the
/// stat buffer (word 0). Mirrors `S_ISREG`/`S_ISFIFO`/`S_ISSOCK`/`S_ISDIR`.
pub mod filekind {
    /// Regular file.
    pub const REGULAR: i64 = 1;
    /// Directory.
    pub const DIRECTORY: i64 = 2;
    /// Pipe / FIFO.
    pub const FIFO: i64 = 3;
    /// Socket.
    pub const SOCKET: i64 = 4;
    /// Symbolic link.
    pub const SYMLINK: i64 = 5;
}

/// `open` flag bits used by the simulated environment.
pub mod openflags {
    /// Open for reading.
    pub const RDONLY: i64 = 0;
    /// Open for writing.
    pub const WRONLY: i64 = 1;
    /// Open for reading and writing.
    pub const RDWR: i64 = 2;
    /// Create the file if it does not exist.
    pub const CREAT: i64 = 64;
    /// Truncate the file on open.
    pub const TRUNC: i64 = 512;
    /// Append on every write.
    pub const APPEND: i64 = 1024;
    /// Non-blocking I/O.
    pub const NONBLOCK: i64 = 2048;
}

/// `fcntl` commands.
pub mod fcntlcmd {
    /// Get file status flags.
    pub const GETFL: i64 = 3;
    /// Set file status flags.
    pub const SETFL: i64 = 4;
    /// Get lock information (the MySQL Table 6 experiment injects here).
    pub const GETLK: i64 = 5;
    /// Set a lock.
    pub const SETLK: i64 = 6;
}

/// The calling convention used by compiled code and enforced by the VM at
/// interposition points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallConv;

impl CallConv {
    /// Register holding a function's return value.
    pub const RETURN: Reg = Reg::RET;

    /// Registers holding the first six arguments, in order.
    pub const ARGUMENTS: [Reg; 6] = Reg::ARGS;

    /// Maximum number of register arguments; additional arguments go on the
    /// stack (pushed right-to-left by the caller).
    pub const MAX_REG_ARGS: usize = 6;

    /// Name of the thread-local symbol that carries the C error number.
    pub const ERRNO_SYMBOL: &'static str = "errno";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_names_roundtrip() {
        for value in errno::ALL {
            let name = errno::name(value).expect("every listed errno has a name");
            assert_eq!(errno::from_name(name), Some(value));
        }
    }

    #[test]
    fn errno_unknown_values() {
        assert_eq!(errno::name(0), None);
        assert_eq!(errno::name(-1), None);
        assert_eq!(errno::from_name("EWHATEVER"), None);
    }

    #[test]
    fn errno_values_are_unique() {
        let mut values = errno::ALL.to_vec();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), errno::ALL.len());
    }

    #[test]
    fn syscall_names_cover_contiguous_range() {
        for num in sys::EXIT..=sys::TRUNCATE {
            assert!(sys::name(num).is_some(), "syscall {num} has no name");
        }
        assert_eq!(sys::name(0), None);
        assert_eq!(sys::name(sys::TRUNCATE + 1), None);
    }

    #[test]
    fn calling_convention_registers_are_disjoint() {
        for arg in CallConv::ARGUMENTS {
            assert_ne!(arg, CallConv::RETURN);
        }
    }
}
