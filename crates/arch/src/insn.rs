//! Instruction set, binary encoding and decoding.
//!
//! Every instruction occupies exactly [`INSN_SIZE`] bytes:
//! `[opcode, a, b, c, imm as i64 little-endian]`. The fixed width keeps the
//! disassembly step of the profiler and call-site analyzer trivial and
//! reliable (the paper notes >99% disassembly accuracy is achievable on x86;
//! our substrate makes it exact), while preserving the properties the
//! analyses actually exploit: explicit `CMP`/`Jcc` sequences, calls to
//! imported symbols, and TLS stores for `errno`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Reg, Word};

/// Size in bytes of every encoded instruction.
pub const INSN_SIZE: u64 = 12;

/// Arithmetic / logical operation selector for [`Insn::Alu`] and [`Insn::AluI`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division (division by zero faults).
    Div,
    /// Signed remainder (division by zero faults).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

impl AluOp {
    /// All operations, in encoding order.
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Mod,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
    ];

    fn encode(self) -> u8 {
        AluOp::ALL.iter().position(|&op| op == self).unwrap() as u8
    }

    fn decode(byte: u8) -> Option<AluOp> {
        AluOp::ALL.get(byte as usize).copied()
    }

    /// Mnemonic suffix used by the textual assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Mod => "mod",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        }
    }
}

/// Branch condition, evaluated against the flags set by the last `CMP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// All conditions, in encoding order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

    fn encode(self) -> u8 {
        Cond::ALL.iter().position(|&c| c == self).unwrap() as u8
    }

    fn decode(byte: u8) -> Option<Cond> {
        Cond::ALL.get(byte as usize).copied()
    }

    /// Whether the comparison outcome `ordering` (of `a` versus `b`) satisfies
    /// this condition.
    pub fn holds(self, ordering: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Cond::Eq => ordering == Equal,
            Cond::Ne => ordering != Equal,
            Cond::Lt => ordering == Less,
            Cond::Le => ordering != Greater,
            Cond::Gt => ordering == Greater,
            Cond::Ge => ordering != Less,
        }
    }

    /// Is this an equality-style check (`==` / `!=`)?
    ///
    /// Algorithm 1 in the paper distinguishes error codes checked via
    /// equality from those checked via inequality; the analyzer uses this.
    pub fn is_equality(self) -> bool {
        matches!(self, Cond::Eq | Cond::Ne)
    }

    /// Mnemonic suffix used by the textual assembler (`je`, `jne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "e",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }

    /// The condition with operands' roles preserved but outcome negated.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

/// A decoded machine instruction.
///
/// Code offsets (`target` fields) are byte offsets from the start of the
/// containing module's code section; symbol references (`sym` fields) are
/// indices into the containing module's symbol-reference table
/// (see `lfi-obj`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Insn {
    /// Do nothing.
    Nop,
    /// Stop the machine (normally unreachable; `exit` goes through a syscall).
    Halt,
    /// Debug trap; faults the process.
    Brk,
    /// `dst = imm`.
    MovI { dst: Reg, imm: Word },
    /// `dst = src`.
    MovR { dst: Reg, src: Reg },
    /// `dst = *(word*)(base + off)`.
    Load { dst: Reg, base: Reg, off: Word },
    /// `*(word*)(base + off) = src`.
    Store { base: Reg, off: Word, src: Reg },
    /// `dst = *(byte*)(base + off)`, zero-extended.
    Load8 { dst: Reg, base: Reg, off: Word },
    /// `*(byte*)(base + off) = low byte of src`.
    Store8 { base: Reg, off: Word, src: Reg },
    /// `dst = base + off` (address arithmetic without a memory access).
    Lea { dst: Reg, base: Reg, off: Word },
    /// `dst = address of symbol` (data or function symbol; relocated at load).
    LeaSym { dst: Reg, sym: u32 },
    /// Push `src` on the stack.
    Push { src: Reg },
    /// Pop the top of the stack into `dst`.
    Pop { dst: Reg },
    /// `dst = dst op src`.
    Alu { op: AluOp, dst: Reg, src: Reg },
    /// `dst = dst op imm`.
    AluI { op: AluOp, dst: Reg, imm: Word },
    /// `dst = -dst`.
    Neg { dst: Reg },
    /// `dst = !dst` (bitwise not).
    Not { dst: Reg },
    /// Compare `a` with `b` and set the flags.
    Cmp { a: Reg, b: Reg },
    /// Compare `a` with an immediate and set the flags.
    CmpI { a: Reg, imm: Word },
    /// Unconditional jump to a module-local code offset.
    Jmp { target: Word },
    /// Conditional jump to a module-local code offset.
    J { cond: Cond, target: Word },
    /// Direct call to a module-local code offset.
    Call { target: Word },
    /// Call through the symbol table (imported or exported function).
    ///
    /// This is the instruction the call-site analyzer looks for: calls to
    /// library functions are always `CallSym` referencing an import, exactly
    /// like PLT-mediated calls in ELF binaries.
    CallSym { sym: u32 },
    /// Indirect call through a register holding an absolute address.
    CallR { reg: Reg },
    /// Return to the caller.
    Ret,
    /// `dst = value of thread-local variable sym` (e.g. `errno`).
    TlsLoad { dst: Reg, sym: u32 },
    /// `thread-local variable sym = src`.
    TlsStore { sym: u32, src: Reg },
    /// Invoke VM syscall `num`; arguments in `r1..r6`, result in `r0`.
    Sys { num: Word },
}

mod opcode {
    pub const NOP: u8 = 0;
    pub const HALT: u8 = 1;
    pub const BRK: u8 = 2;
    pub const MOVI: u8 = 3;
    pub const MOVR: u8 = 4;
    pub const LOAD: u8 = 5;
    pub const STORE: u8 = 6;
    pub const LOAD8: u8 = 7;
    pub const STORE8: u8 = 8;
    pub const LEA: u8 = 9;
    pub const LEASYM: u8 = 10;
    pub const PUSH: u8 = 11;
    pub const POP: u8 = 12;
    pub const ALU: u8 = 13;
    pub const ALUI: u8 = 14;
    pub const NEG: u8 = 15;
    pub const NOT: u8 = 16;
    pub const CMP: u8 = 17;
    pub const CMPI: u8 = 18;
    pub const JMP: u8 = 19;
    pub const JCC: u8 = 20;
    pub const CALL: u8 = 21;
    pub const CALLSYM: u8 = 22;
    pub const CALLR: u8 = 23;
    pub const RET: u8 = 24;
    pub const TLSLOAD: u8 = 25;
    pub const TLSSTORE: u8 = 26;
    pub const SYS: u8 = 27;
}

/// Error produced when decoding an invalid instruction encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte slice was shorter than [`INSN_SIZE`].
    Truncated {
        /// Number of bytes that were available.
        available: usize,
    },
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// A register field held an invalid register encoding.
    BadRegister(u8),
    /// The ALU sub-opcode field held an invalid value.
    BadAluOp(u8),
    /// The condition field of a conditional jump held an invalid value.
    BadCondition(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { available } => {
                write!(f, "truncated instruction: {available} bytes available")
            }
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadRegister(b) => write!(f, "invalid register encoding {b}"),
            DecodeError::BadAluOp(b) => write!(f, "invalid ALU sub-opcode {b}"),
            DecodeError::BadCondition(b) => write!(f, "invalid branch condition {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn reg(byte: u8) -> Result<Reg, DecodeError> {
    Reg::decode(byte).ok_or(DecodeError::BadRegister(byte))
}

impl Insn {
    /// Encode the instruction into its fixed-width binary form.
    pub fn encode(&self) -> [u8; INSN_SIZE as usize] {
        let (op, a, b, c, imm): (u8, u8, u8, u8, i64) = match *self {
            Insn::Nop => (opcode::NOP, 0, 0, 0, 0),
            Insn::Halt => (opcode::HALT, 0, 0, 0, 0),
            Insn::Brk => (opcode::BRK, 0, 0, 0, 0),
            Insn::MovI { dst, imm } => (opcode::MOVI, dst.encode(), 0, 0, imm),
            Insn::MovR { dst, src } => (opcode::MOVR, dst.encode(), src.encode(), 0, 0),
            Insn::Load { dst, base, off } => (opcode::LOAD, dst.encode(), base.encode(), 0, off),
            Insn::Store { base, off, src } => (opcode::STORE, base.encode(), src.encode(), 0, off),
            Insn::Load8 { dst, base, off } => (opcode::LOAD8, dst.encode(), base.encode(), 0, off),
            Insn::Store8 { base, off, src } => {
                (opcode::STORE8, base.encode(), src.encode(), 0, off)
            }
            Insn::Lea { dst, base, off } => (opcode::LEA, dst.encode(), base.encode(), 0, off),
            Insn::LeaSym { dst, sym } => (opcode::LEASYM, dst.encode(), 0, 0, sym as i64),
            Insn::Push { src } => (opcode::PUSH, src.encode(), 0, 0, 0),
            Insn::Pop { dst } => (opcode::POP, dst.encode(), 0, 0, 0),
            Insn::Alu { op, dst, src } => (opcode::ALU, dst.encode(), src.encode(), op.encode(), 0),
            Insn::AluI { op, dst, imm } => (opcode::ALUI, dst.encode(), 0, op.encode(), imm),
            Insn::Neg { dst } => (opcode::NEG, dst.encode(), 0, 0, 0),
            Insn::Not { dst } => (opcode::NOT, dst.encode(), 0, 0, 0),
            Insn::Cmp { a, b } => (opcode::CMP, a.encode(), b.encode(), 0, 0),
            Insn::CmpI { a, imm } => (opcode::CMPI, a.encode(), 0, 0, imm),
            Insn::Jmp { target } => (opcode::JMP, 0, 0, 0, target),
            Insn::J { cond, target } => (opcode::JCC, cond.encode(), 0, 0, target),
            Insn::Call { target } => (opcode::CALL, 0, 0, 0, target),
            Insn::CallSym { sym } => (opcode::CALLSYM, 0, 0, 0, sym as i64),
            Insn::CallR { reg } => (opcode::CALLR, reg.encode(), 0, 0, 0),
            Insn::Ret => (opcode::RET, 0, 0, 0, 0),
            Insn::TlsLoad { dst, sym } => (opcode::TLSLOAD, dst.encode(), 0, 0, sym as i64),
            Insn::TlsStore { sym, src } => (opcode::TLSSTORE, src.encode(), 0, 0, sym as i64),
            Insn::Sys { num } => (opcode::SYS, 0, 0, 0, num),
        };
        let mut bytes = [0u8; INSN_SIZE as usize];
        bytes[0] = op;
        bytes[1] = a;
        bytes[2] = b;
        bytes[3] = c;
        bytes[4..].copy_from_slice(&imm.to_le_bytes());
        bytes
    }

    /// Decode one instruction from the start of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Insn, DecodeError> {
        if bytes.len() < INSN_SIZE as usize {
            return Err(DecodeError::Truncated {
                available: bytes.len(),
            });
        }
        let (op, a, b, c) = (bytes[0], bytes[1], bytes[2], bytes[3]);
        let imm = i64::from_le_bytes(bytes[4..12].try_into().expect("length checked"));
        let insn = match op {
            opcode::NOP => Insn::Nop,
            opcode::HALT => Insn::Halt,
            opcode::BRK => Insn::Brk,
            opcode::MOVI => Insn::MovI { dst: reg(a)?, imm },
            opcode::MOVR => Insn::MovR {
                dst: reg(a)?,
                src: reg(b)?,
            },
            opcode::LOAD => Insn::Load {
                dst: reg(a)?,
                base: reg(b)?,
                off: imm,
            },
            opcode::STORE => Insn::Store {
                base: reg(a)?,
                src: reg(b)?,
                off: imm,
            },
            opcode::LOAD8 => Insn::Load8 {
                dst: reg(a)?,
                base: reg(b)?,
                off: imm,
            },
            opcode::STORE8 => Insn::Store8 {
                base: reg(a)?,
                src: reg(b)?,
                off: imm,
            },
            opcode::LEA => Insn::Lea {
                dst: reg(a)?,
                base: reg(b)?,
                off: imm,
            },
            opcode::LEASYM => Insn::LeaSym {
                dst: reg(a)?,
                sym: imm as u32,
            },
            opcode::PUSH => Insn::Push { src: reg(a)? },
            opcode::POP => Insn::Pop { dst: reg(a)? },
            opcode::ALU => Insn::Alu {
                op: AluOp::decode(c).ok_or(DecodeError::BadAluOp(c))?,
                dst: reg(a)?,
                src: reg(b)?,
            },
            opcode::ALUI => Insn::AluI {
                op: AluOp::decode(c).ok_or(DecodeError::BadAluOp(c))?,
                dst: reg(a)?,
                imm,
            },
            opcode::NEG => Insn::Neg { dst: reg(a)? },
            opcode::NOT => Insn::Not { dst: reg(a)? },
            opcode::CMP => Insn::Cmp {
                a: reg(a)?,
                b: reg(b)?,
            },
            opcode::CMPI => Insn::CmpI { a: reg(a)?, imm },
            opcode::JMP => Insn::Jmp { target: imm },
            opcode::JCC => Insn::J {
                cond: Cond::decode(a).ok_or(DecodeError::BadCondition(a))?,
                target: imm,
            },
            opcode::CALL => Insn::Call { target: imm },
            opcode::CALLSYM => Insn::CallSym { sym: imm as u32 },
            opcode::CALLR => Insn::CallR { reg: reg(a)? },
            opcode::RET => Insn::Ret,
            opcode::TLSLOAD => Insn::TlsLoad {
                dst: reg(a)?,
                sym: imm as u32,
            },
            opcode::TLSSTORE => Insn::TlsStore {
                sym: imm as u32,
                src: reg(a)?,
            },
            opcode::SYS => Insn::Sys { num: imm },
            other => return Err(DecodeError::UnknownOpcode(other)),
        };
        Ok(insn)
    }

    /// The register this instruction writes, if exactly one and statically known.
    pub fn written_reg(&self) -> Option<Reg> {
        match *self {
            Insn::MovI { dst, .. }
            | Insn::MovR { dst, .. }
            | Insn::Load { dst, .. }
            | Insn::Load8 { dst, .. }
            | Insn::Lea { dst, .. }
            | Insn::LeaSym { dst, .. }
            | Insn::Pop { dst }
            | Insn::Alu { dst, .. }
            | Insn::AluI { dst, .. }
            | Insn::Neg { dst }
            | Insn::Not { dst }
            | Insn::TlsLoad { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Is this instruction a control-flow terminator of a basic block?
    pub fn is_block_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Jmp { .. } | Insn::J { .. } | Insn::Ret | Insn::Halt | Insn::Brk
        )
    }

    /// Is this any kind of call?
    pub fn is_call(&self) -> bool {
        matches!(
            self,
            Insn::Call { .. } | Insn::CallSym { .. } | Insn::CallR { .. }
        )
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Nop => write!(f, "nop"),
            Insn::Halt => write!(f, "halt"),
            Insn::Brk => write!(f, "brk"),
            Insn::MovI { dst, imm } => write!(f, "movi {dst}, {imm}"),
            Insn::MovR { dst, src } => write!(f, "mov {dst}, {src}"),
            Insn::Load { dst, base, off } => write!(f, "ld {dst}, [{base}{off:+}]"),
            Insn::Store { base, off, src } => write!(f, "st [{base}{off:+}], {src}"),
            Insn::Load8 { dst, base, off } => write!(f, "ld8 {dst}, [{base}{off:+}]"),
            Insn::Store8 { base, off, src } => write!(f, "st8 [{base}{off:+}], {src}"),
            Insn::Lea { dst, base, off } => write!(f, "lea {dst}, [{base}{off:+}]"),
            Insn::LeaSym { dst, sym } => write!(f, "leasym {dst}, sym#{sym}"),
            Insn::Push { src } => write!(f, "push {src}"),
            Insn::Pop { dst } => write!(f, "pop {dst}"),
            Insn::Alu { op, dst, src } => write!(f, "{} {dst}, {src}", op.mnemonic()),
            Insn::AluI { op, dst, imm } => write!(f, "{}i {dst}, {imm}", op.mnemonic()),
            Insn::Neg { dst } => write!(f, "neg {dst}"),
            Insn::Not { dst } => write!(f, "not {dst}"),
            Insn::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Insn::CmpI { a, imm } => write!(f, "cmpi {a}, {imm}"),
            Insn::Jmp { target } => write!(f, "jmp {target:#x}"),
            Insn::J { cond, target } => write!(f, "j{} {target:#x}", cond.mnemonic()),
            Insn::Call { target } => write!(f, "call {target:#x}"),
            Insn::CallSym { sym } => write!(f, "callsym sym#{sym}"),
            Insn::CallR { reg } => write!(f, "callr {reg}"),
            Insn::Ret => write!(f, "ret"),
            Insn::TlsLoad { dst, sym } => write!(f, "tlsld {dst}, tls#{sym}"),
            Insn::TlsStore { sym, src } => write!(f, "tlsst tls#{sym}, {src}"),
            Insn::Sys { num } => write!(f, "sys {num}"),
        }
    }
}

/// Instructions decoded so far, plus the first decoding error (if any) with
/// its offset.
pub type DecodeAllResult = (Vec<(u64, Insn)>, Option<(u64, DecodeError)>);

/// Decode an entire code section into `(offset, instruction)` pairs.
///
/// Stops at the first decoding error, returning the instructions decoded so
/// far along with the error offset.
pub fn decode_all(code: &[u8]) -> DecodeAllResult {
    let mut out = Vec::with_capacity(code.len() / INSN_SIZE as usize);
    let mut off = 0u64;
    while (off as usize) < code.len() {
        match Insn::decode(&code[off as usize..]) {
            Ok(insn) => {
                out.push((off, insn));
                off += INSN_SIZE;
            }
            Err(err) => return (out, Some((off, err))),
        }
    }
    (out, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Insn> {
        vec![
            Insn::Nop,
            Insn::Halt,
            Insn::Brk,
            Insn::MovI {
                dst: Reg::R(0),
                imm: -1,
            },
            Insn::MovR {
                dst: Reg::R(3),
                src: Reg::Sp,
            },
            Insn::Load {
                dst: Reg::R(1),
                base: Reg::Fp,
                off: -16,
            },
            Insn::Store {
                base: Reg::Fp,
                off: -24,
                src: Reg::R(0),
            },
            Insn::Load8 {
                dst: Reg::R(2),
                base: Reg::R(4),
                off: 7,
            },
            Insn::Store8 {
                base: Reg::R(4),
                off: 0,
                src: Reg::R(2),
            },
            Insn::Lea {
                dst: Reg::R(5),
                base: Reg::Sp,
                off: 32,
            },
            Insn::LeaSym {
                dst: Reg::R(1),
                sym: 12,
            },
            Insn::Push { src: Reg::R(10) },
            Insn::Pop { dst: Reg::R(10) },
            Insn::Alu {
                op: AluOp::Add,
                dst: Reg::R(0),
                src: Reg::R(1),
            },
            Insn::AluI {
                op: AluOp::Shl,
                dst: Reg::R(7),
                imm: 3,
            },
            Insn::Neg { dst: Reg::R(9) },
            Insn::Not { dst: Reg::R(9) },
            Insn::Cmp {
                a: Reg::R(0),
                b: Reg::R(1),
            },
            Insn::CmpI {
                a: Reg::R(0),
                imm: -1,
            },
            Insn::Jmp { target: 0x180 },
            Insn::J {
                cond: Cond::Ne,
                target: 0x24,
            },
            Insn::Call { target: 0x3c0 },
            Insn::CallSym { sym: 3 },
            Insn::CallR { reg: Reg::R(8) },
            Insn::Ret,
            Insn::TlsLoad {
                dst: Reg::R(0),
                sym: 0,
            },
            Insn::TlsStore {
                sym: 0,
                src: Reg::R(2),
            },
            Insn::Sys { num: 4 },
        ]
    }

    #[test]
    fn encode_decode_roundtrip_all_forms() {
        for insn in sample_instructions() {
            let bytes = insn.encode();
            let back = Insn::decode(&bytes).expect("decode");
            assert_eq!(back, insn, "roundtrip failed for {insn}");
        }
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let err = Insn::decode(&[0u8; 5]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { available: 5 }));
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        let mut bytes = [0u8; INSN_SIZE as usize];
        bytes[0] = 0xEE;
        assert!(matches!(
            Insn::decode(&bytes),
            Err(DecodeError::UnknownOpcode(0xEE))
        ));
    }

    #[test]
    fn decode_rejects_bad_register() {
        let mut bytes = Insn::MovR {
            dst: Reg::R(0),
            src: Reg::R(1),
        }
        .encode();
        bytes[1] = 200;
        assert!(matches!(
            Insn::decode(&bytes),
            Err(DecodeError::BadRegister(200))
        ));
    }

    #[test]
    fn decode_rejects_bad_alu_and_condition() {
        let mut alu = Insn::Alu {
            op: AluOp::Add,
            dst: Reg::R(0),
            src: Reg::R(1),
        }
        .encode();
        alu[3] = 99;
        assert!(matches!(Insn::decode(&alu), Err(DecodeError::BadAluOp(99))));

        let mut jcc = Insn::J {
            cond: Cond::Eq,
            target: 0,
        }
        .encode();
        jcc[1] = 42;
        assert!(matches!(
            Insn::decode(&jcc),
            Err(DecodeError::BadCondition(42))
        ));
    }

    #[test]
    fn decode_all_walks_a_section() {
        let insns = sample_instructions();
        let mut code = Vec::new();
        for insn in &insns {
            code.extend_from_slice(&insn.encode());
        }
        let (decoded, err) = decode_all(&code);
        assert!(err.is_none());
        assert_eq!(decoded.len(), insns.len());
        for (i, (off, insn)) in decoded.iter().enumerate() {
            assert_eq!(*off, i as u64 * INSN_SIZE);
            assert_eq!(insn, &insns[i]);
        }
    }

    #[test]
    fn decode_all_reports_error_offset() {
        let mut code = Insn::Nop.encode().to_vec();
        let mut bad = [0u8; INSN_SIZE as usize];
        bad[0] = 0xEE;
        code.extend_from_slice(&bad);
        let (decoded, err) = decode_all(&code);
        assert_eq!(decoded.len(), 1);
        let (off, err) = err.expect("error expected");
        assert_eq!(off, INSN_SIZE);
        assert!(matches!(err, DecodeError::UnknownOpcode(0xEE)));
    }

    #[test]
    fn cond_semantics() {
        use std::cmp::Ordering::*;
        assert!(Cond::Eq.holds(Equal));
        assert!(!Cond::Eq.holds(Less));
        assert!(Cond::Ne.holds(Greater));
        assert!(Cond::Lt.holds(Less));
        assert!(!Cond::Lt.holds(Equal));
        assert!(Cond::Le.holds(Equal));
        assert!(Cond::Gt.holds(Greater));
        assert!(Cond::Ge.holds(Equal));
        assert!(!Cond::Ge.holds(Less));
    }

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        use std::cmp::Ordering;
        for cond in Cond::ALL {
            assert_eq!(cond.negate().negate(), cond);
            for ord in [Ordering::Less, Ordering::Equal, Ordering::Greater] {
                assert_ne!(cond.holds(ord), cond.negate().holds(ord));
            }
        }
    }

    #[test]
    fn equality_classification() {
        assert!(Cond::Eq.is_equality());
        assert!(Cond::Ne.is_equality());
        assert!(!Cond::Lt.is_equality());
        assert!(!Cond::Ge.is_equality());
    }

    #[test]
    fn written_reg_identifies_definitions() {
        assert_eq!(
            Insn::MovI {
                dst: Reg::R(4),
                imm: 9
            }
            .written_reg(),
            Some(Reg::R(4))
        );
        assert_eq!(Insn::Ret.written_reg(), None);
        assert_eq!(
            Insn::Store {
                base: Reg::Fp,
                off: 0,
                src: Reg::R(1)
            }
            .written_reg(),
            None
        );
    }

    #[test]
    fn block_terminators_and_calls() {
        assert!(Insn::Ret.is_block_terminator());
        assert!(Insn::Jmp { target: 0 }.is_block_terminator());
        assert!(!Insn::CallSym { sym: 1 }.is_block_terminator());
        assert!(Insn::CallSym { sym: 1 }.is_call());
        assert!(Insn::CallR { reg: Reg::R(1) }.is_call());
        assert!(!Insn::Nop.is_call());
    }
}
