//! Property-based tests: every well-formed instruction survives an
//! encode/decode roundtrip, and the decoder never panics on arbitrary bytes.

use lfi_arch::{decode_all, AluOp, Cond, Insn, Reg, INSN_SIZE};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..18).prop_map(|b| Reg::decode(b).unwrap())
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Nop),
        Just(Insn::Halt),
        Just(Insn::Brk),
        Just(Insn::Ret),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| Insn::MovI { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::MovR { dst, src }),
        (arb_reg(), arb_reg(), any::<i64>()).prop_map(|(dst, base, off)| Insn::Load {
            dst,
            base,
            off
        }),
        (arb_reg(), arb_reg(), any::<i64>()).prop_map(|(base, src, off)| Insn::Store {
            base,
            off,
            src
        }),
        (arb_reg(), arb_reg(), any::<i64>()).prop_map(|(dst, base, off)| Insn::Load8 {
            dst,
            base,
            off
        }),
        (arb_reg(), arb_reg(), any::<i64>()).prop_map(|(base, src, off)| Insn::Store8 {
            base,
            off,
            src
        }),
        (arb_reg(), arb_reg(), any::<i64>()).prop_map(|(dst, base, off)| Insn::Lea {
            dst,
            base,
            off
        }),
        (arb_reg(), any::<u32>()).prop_map(|(dst, sym)| Insn::LeaSym { dst, sym }),
        arb_reg().prop_map(|src| Insn::Push { src }),
        arb_reg().prop_map(|dst| Insn::Pop { dst }),
        (arb_alu(), arb_reg(), arb_reg()).prop_map(|(op, dst, src)| Insn::Alu { op, dst, src }),
        (arb_alu(), arb_reg(), any::<i64>()).prop_map(|(op, dst, imm)| Insn::AluI { op, dst, imm }),
        arb_reg().prop_map(|dst| Insn::Neg { dst }),
        arb_reg().prop_map(|dst| Insn::Not { dst }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Cmp { a, b }),
        (arb_reg(), any::<i64>()).prop_map(|(a, imm)| Insn::CmpI { a, imm }),
        any::<i64>().prop_map(|target| Insn::Jmp { target }),
        (arb_cond(), any::<i64>()).prop_map(|(cond, target)| Insn::J { cond, target }),
        any::<i64>().prop_map(|target| Insn::Call { target }),
        any::<u32>().prop_map(|sym| Insn::CallSym { sym }),
        arb_reg().prop_map(|reg| Insn::CallR { reg }),
        (arb_reg(), any::<u32>()).prop_map(|(dst, sym)| Insn::TlsLoad { dst, sym }),
        (arb_reg(), any::<u32>()).prop_map(|(src, sym)| Insn::TlsStore { sym, src }),
        any::<i64>().prop_map(|num| Insn::Sys { num }),
    ]
}

proptest! {
    #[test]
    fn roundtrip(insn in arb_insn()) {
        let bytes = insn.encode();
        let back = Insn::decode(&bytes).expect("well-formed instruction must decode");
        prop_assert_eq!(back, insn);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // The decoder must reject or accept, never panic, on arbitrary input.
        let _ = Insn::decode(&bytes);
        let _ = decode_all(&bytes);
    }

    #[test]
    fn decode_all_consumes_whole_streams(insns in proptest::collection::vec(arb_insn(), 1..50)) {
        let mut code = Vec::new();
        for insn in &insns {
            code.extend_from_slice(&insn.encode());
        }
        let (decoded, err) = decode_all(&code);
        prop_assert!(err.is_none());
        prop_assert_eq!(decoded.len(), insns.len());
        for (i, (off, insn)) in decoded.iter().enumerate() {
            prop_assert_eq!(*off, i as u64 * INSN_SIZE);
            prop_assert_eq!(*insn, insns[i]);
        }
    }
}
