//! Campaign telemetry: a lock-light metrics registry with serializable
//! snapshots.
//!
//! Fault-injection campaigns are throughput machines — sessions prepared,
//! snapshot trees deepened, thousands of units forked and triaged — and
//! until now the only numbers that came out were the final report. This
//! crate is the observability floor under the campaign stack:
//!
//! * [`Telemetry`] — a registry handle shared across threads. Metrics are
//!   registered by name (cold path, one mutex) and recorded through cheap
//!   cloneable handles (hot path, a single atomic op — no locks, no
//!   allocation). A [`Telemetry::disabled`] registry hands out no-op
//!   handles so instrumented code pays (almost) nothing when collection
//!   is off.
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — monotonic counts, set/max
//!   values, and log₂-bucketed value distributions. [`Histogram::start`]
//!   returns a [`Span`] that records its elapsed wall-clock microseconds
//!   when dropped — the span-timing primitive used on campaign hot paths
//!   (session prepare, tree deepening, unit execution, triage,
//!   checkpoint writes).
//! * [`MetricsSnapshot`] — a typed, point-in-time capture of every
//!   registered metric, serializable to and from JSON via `lfi_json`.
//!   This is what campaign reports embed, heartbeat events carry over
//!   the wire, and bench artifacts persist.
//! * [`stream`] — line-framed JSONL readers ([`LineFramer`],
//!   [`JsonlTail`]) shared by every consumer that tails an event or
//!   protocol stream: partial-line buffering for pipe readers, and
//!   truncation/rotation-tolerant file tailing for the live-status and
//!   supervisor bins.
//! * [`Telemetry::note`] — a bounded out-of-band channel for rare,
//!   discrete observations (e.g. a discarded concurrent tree-deepening)
//!   that lower layers cannot stream through an event sink themselves;
//!   the campaign driver drains it into its event stream.
//!
//! # Overhead budget
//!
//! A recorded metric costs one `Relaxed` atomic RMW; a span costs two
//! monotonic clock reads plus one histogram record. Campaign-level
//! instrumentation keeps total overhead under ~5% of snapshot-backend
//! sweep throughput (the `campaign_bench` telemetry lanes measure it in
//! CI). Disable collection entirely by installing
//! [`Telemetry::disabled`] — handles become no-ops and spans skip the
//! clock reads.

mod metrics;
mod snapshot;
pub mod stream;

pub use metrics::{Counter, Gauge, Histogram, Note, Span, Telemetry};
pub use snapshot::{bucket_floor, HistogramSnapshot, MetricsSnapshot};
pub use stream::{JsonlTail, LineFramer, TailPoll};
