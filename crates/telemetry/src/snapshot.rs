//! Point-in-time metric captures and their JSON wire format.

use std::collections::BTreeMap;

use lfi_json::Value;

/// Number of log₂ buckets a histogram carries: bucket 0 for zero,
/// buckets 1..=64 for each power-of-two range of `u64`.
pub(crate) const BUCKETS: usize = 65;

/// Lower bound of histogram bucket `index`: 0 for bucket 0, `2^(i-1)`
/// for bucket `i ≥ 1`. Bucket `i` covers `[bucket_floor(i),
/// 2 * bucket_floor(i) - 1]` (bucket 0 holds only zeros).
pub fn bucket_floor(index: u32) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1).min(63)
    }
}

/// Captured state of one histogram: total sample count, sum of samples,
/// and the non-empty log₂ buckets as `(bucket index, hits)` pairs sorted
/// by index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all recorded sample values.
    pub sum: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another capture of the same histogram into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for &(index, hits) in &other.buckets {
            match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(slot) => self.buckets[slot].1 += hits,
                Err(slot) => self.buckets.insert(slot, (index, hits)),
            }
        }
    }
}

/// A typed capture of every metric registered in a [`Telemetry`]
/// registry at one instant, serializable via `lfi_json`.
///
/// Values are stored as `u64` but the JSON wire format carries them as
/// 64-bit signed ints (`lfi_json` has no unsigned type); values above
/// `i64::MAX` — never produced by realistic counters or microsecond
/// clocks — saturate on encode.
///
/// [`Telemetry`]: crate::Telemetry
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counts by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram captures by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, 0 when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram capture by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Fold another snapshot into this one: counters and histograms are
    /// summed, gauges take the maximum (every campaign gauge is a
    /// high-water or capacity figure, where max is the meaningful
    /// cross-shard combination).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_default();
            *slot = (*slot).max(*value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Encode as an `lfi_json` value.
    pub fn to_value(&self) -> Value {
        let int = |v: u64| Value::Int(i64::try_from(v).unwrap_or(i64::MAX));
        let map_obj = |map: &BTreeMap<String, u64>| {
            Value::Obj(
                map.iter()
                    .map(|(name, v)| (name.clone(), int(*v)))
                    .collect(),
            )
        };
        let histograms = self
            .histograms
            .iter()
            .map(|(name, hist)| {
                let buckets = hist
                    .buckets
                    .iter()
                    .map(|&(index, hits)| Value::Arr(vec![int(u64::from(index)), int(hits)]))
                    .collect();
                let body = Value::Obj(vec![
                    ("count".to_string(), int(hist.count)),
                    ("sum".to_string(), int(hist.sum)),
                    ("buckets".to_string(), Value::Arr(buckets)),
                ]);
                (name.clone(), body)
            })
            .collect();
        Value::Obj(vec![
            ("counters".to_string(), map_obj(&self.counters)),
            ("gauges".to_string(), map_obj(&self.gauges)),
            ("histograms".to_string(), Value::Obj(histograms)),
        ])
    }

    /// Decode a value produced by [`to_value`](Self::to_value).
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let obj = as_obj(value, "metrics snapshot")?;
        let mut snap = MetricsSnapshot::default();
        for (name, v) in as_obj(field(obj, "counters")?, "counters")? {
            snap.counters.insert(name.clone(), as_u64(v, name)?);
        }
        for (name, v) in as_obj(field(obj, "gauges")?, "gauges")? {
            snap.gauges.insert(name.clone(), as_u64(v, name)?);
        }
        for (name, v) in as_obj(field(obj, "histograms")?, "histograms")? {
            let body = as_obj(v, name)?;
            let mut hist = HistogramSnapshot {
                count: as_u64(field(body, "count")?, "count")?,
                sum: as_u64(field(body, "sum")?, "sum")?,
                buckets: Vec::new(),
            };
            let Value::Arr(buckets) = field(body, "buckets")? else {
                return Err(format!("histogram {name}: buckets is not an array"));
            };
            for bucket in buckets {
                let Value::Arr(pair) = bucket else {
                    return Err(format!("histogram {name}: bucket is not a pair"));
                };
                let [index, hits] = pair.as_slice() else {
                    return Err(format!("histogram {name}: bucket is not a pair"));
                };
                hist.buckets.push((
                    as_u64(index, "bucket index")? as u32,
                    as_u64(hits, "bucket hits")?,
                ));
            }
            snap.histograms.insert(name.clone(), hist);
        }
        Ok(snap)
    }
}

fn as_obj<'v>(value: &'v Value, what: &str) -> Result<&'v Vec<(String, Value)>, String> {
    match value {
        Value::Obj(members) => Ok(members),
        _ => Err(format!("{what} is not an object")),
    }
}

fn field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, String> {
    obj.iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .ok_or_else(|| format!("missing field {name}"))
}

fn as_u64(value: &Value, what: &str) -> Result<u64, String> {
    match value {
        Value::Int(v) if *v >= 0 => Ok(*v as u64),
        _ => Err(format!("{what} is not a non-negative int")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::bucket_index;
    use crate::Telemetry;

    #[test]
    fn counters_and_gauges_round_trip_through_snapshot() {
        let telemetry = Telemetry::new();
        telemetry.counter("units").add(7);
        telemetry.counter("units").inc();
        telemetry.gauge("resident").set_max(100);
        telemetry.gauge("resident").set_max(40);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("units"), 8);
        assert_eq!(snap.gauge("resident"), 100);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.enabled());
        telemetry.counter("units").inc();
        telemetry.gauge("g").set(5);
        telemetry.histogram("h").record(5);
        telemetry.histogram("h").start().finish();
        telemetry.note("src", "msg");
        assert!(telemetry.take_notes().is_empty());
        assert_eq!(telemetry.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn histogram_buckets_follow_log2_ranges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for index in 1..=64u32 {
            let floor = bucket_floor(index);
            assert_eq!(bucket_index(floor), index as usize);
            let ceiling = floor.saturating_mul(2).saturating_sub(1).max(floor);
            assert_eq!(bucket_index(ceiling), index as usize);
        }
    }

    #[test]
    fn histogram_snapshot_carries_count_sum_and_buckets() {
        let telemetry = Telemetry::new();
        let hist = telemetry.histogram("latency");
        hist.record(0);
        hist.record(3);
        hist.record(3);
        hist.record(1000);
        let snap = telemetry.snapshot();
        let captured = snap.histogram("latency").unwrap();
        assert_eq!(captured.count, 4);
        assert_eq!(captured.sum, 1006);
        assert_eq!(captured.buckets, vec![(0, 1), (2, 2), (10, 1)]);
        assert_eq!(captured.mean(), 251);
    }

    #[test]
    fn span_records_elapsed_micros() {
        let telemetry = Telemetry::new();
        let hist = telemetry.histogram("span");
        hist.start().finish();
        {
            let _span = hist.start();
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.histogram("span").unwrap().count, 2);
    }

    #[test]
    fn notes_drain_in_order_and_are_bounded() {
        let telemetry = Telemetry::new();
        telemetry.note("tree", "first");
        telemetry.note("tree", "second");
        let notes = telemetry.take_notes();
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[0].message, "first");
        assert_eq!(notes[1].message, "second");
        assert!(telemetry.take_notes().is_empty());

        for i in 0..2000 {
            telemetry.note("flood", format!("note {i}"));
        }
        let notes = telemetry.take_notes();
        assert_eq!(notes.len(), 1024);
        assert_eq!(telemetry.snapshot().counter("telemetry_notes_dropped"), 976);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_maxes_gauges() {
        let a = Telemetry::new();
        a.counter("units").add(10);
        a.gauge("resident").set(50);
        a.histogram("latency").record(4);
        let b = Telemetry::new();
        b.counter("units").add(5);
        b.counter("crashes").inc();
        b.gauge("resident").set(80);
        b.histogram("latency").record(100);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("units"), 15);
        assert_eq!(merged.counter("crashes"), 1);
        assert_eq!(merged.gauge("resident"), 80);
        let hist = merged.histogram("latency").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 104);
        assert_eq!(hist.buckets, vec![(3, 1), (7, 1)]);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let telemetry = Telemetry::new();
        telemetry.counter("tree_fork_hits").add(42);
        telemetry.gauge("resident_bytes_hw").set(1 << 30);
        let hist = telemetry.histogram("unit_execute_micros");
        hist.record(0);
        hist.record(500);
        hist.record(70_000);
        let snap = telemetry.snapshot();

        let encoded = snap.to_value().to_compact();
        let decoded = MetricsSnapshot::from_value(&lfi_json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, snap);

        assert!(MetricsSnapshot::from_value(&Value::Null).is_err());
        assert!(MetricsSnapshot::from_value(&Value::Obj(vec![])).is_err());
    }
}
