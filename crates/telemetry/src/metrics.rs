//! Registry and hot-path handles: counters, gauges, histograms, spans.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot, BUCKETS};

/// Notes queued after this many are pending are dropped (the drop itself
/// is counted), so a driver that never drains cannot leak memory.
const MAX_PENDING_NOTES: usize = 1024;

/// A discrete out-of-band observation from an instrumented layer.
///
/// Notes exist for rare events that deserve a line in the campaign event
/// stream but originate below the layer that owns the sink — e.g. the
/// snapshot-tree executor observing a discarded concurrent deepening.
/// The campaign driver drains them with [`Telemetry::take_notes`] and
/// republishes each as an event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Note {
    /// Which subsystem raised the note, e.g. `"snapshot-tree"`.
    pub source: String,
    /// Human-readable description of what happened.
    pub message: String,
}

#[derive(Default)]
struct CounterCell(AtomicU64);

#[derive(Default)]
struct GaugeCell(AtomicU64);

struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    notes: Mutex<Vec<Note>>,
    notes_dropped: AtomicU64,
}

/// Shared handle to a metrics registry, or a no-op stand-in.
///
/// Cloning is cheap (an `Arc` bump, or nothing when disabled). Metric
/// lookup by name takes a registry mutex and is meant for setup paths;
/// the returned [`Counter`]/[`Gauge`]/[`Histogram`] handles are lock-free
/// and should be resolved once and kept on hot paths.
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A live registry that collects everything recorded through it.
    pub fn new() -> Self {
        Telemetry {
            registry: Some(Arc::new(Registry::default())),
        }
    }

    /// A disabled registry: every handle it hands out is a no-op and
    /// [`Span`]s skip their clock reads. This is the "collection off"
    /// mode instrumented code should be given by default.
    pub fn disabled() -> Self {
        Telemetry { registry: None }
    }

    /// Whether this handle collects anything at all.
    pub fn enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Resolve (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.registry.as_ref().map(|r| {
                let mut map = r.counters.lock().unwrap();
                Arc::clone(map.entry(name.to_string()).or_default())
            }),
        }
    }

    /// Resolve (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.registry.as_ref().map(|r| {
                let mut map = r.gauges.lock().unwrap();
                Arc::clone(map.entry(name.to_string()).or_default())
            }),
        }
    }

    /// Resolve (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            cell: self.registry.as_ref().map(|r| {
                let mut map = r.histograms.lock().unwrap();
                Arc::clone(map.entry(name.to_string()).or_default())
            }),
        }
    }

    /// Queue an out-of-band [`Note`] for the next [`take_notes`] drain.
    ///
    /// Bounded: past [`MAX_PENDING_NOTES`] pending entries new notes are
    /// dropped and the drop is counted in the `telemetry_notes_dropped`
    /// counter of the next snapshot.
    ///
    /// [`take_notes`]: Telemetry::take_notes
    pub fn note(&self, source: &str, message: impl Into<String>) {
        let Some(registry) = self.registry.as_ref() else {
            return;
        };
        let mut notes = registry.notes.lock().unwrap();
        if notes.len() >= MAX_PENDING_NOTES {
            registry.notes_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        notes.push(Note {
            source: source.to_string(),
            message: message.into(),
        });
    }

    /// Drain all queued notes, oldest first.
    pub fn take_notes(&self) -> Vec<Note> {
        match self.registry.as_ref() {
            Some(registry) => std::mem::take(&mut *registry.notes.lock().unwrap()),
            None => Vec::new(),
        }
    }

    /// Capture the current value of every registered metric.
    ///
    /// Counters and histogram cells are read `Relaxed`, so a snapshot
    /// taken while workers are recording is a consistent-enough point
    /// sample, not a linearizable cut — fine for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(registry) = self.registry.as_ref() else {
            return snap;
        };
        for (name, cell) in registry.counters.lock().unwrap().iter() {
            snap.counters
                .insert(name.clone(), cell.0.load(Ordering::Relaxed));
        }
        let dropped = registry.notes_dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            snap.counters
                .insert("telemetry_notes_dropped".to_string(), dropped);
        }
        for (name, cell) in registry.gauges.lock().unwrap().iter() {
            snap.gauges
                .insert(name.clone(), cell.0.load(Ordering::Relaxed));
        }
        for (name, cell) in registry.histograms.lock().unwrap().iter() {
            let mut hist = HistogramSnapshot {
                count: cell.count.load(Ordering::Relaxed),
                sum: cell.sum.load(Ordering::Relaxed),
                buckets: Vec::new(),
            };
            for (index, bucket) in cell.buckets.iter().enumerate() {
                let hits = bucket.load(Ordering::Relaxed);
                if hits > 0 {
                    hist.buckets.push((index as u32, hits));
                }
            }
            snap.histograms.insert(name.clone(), hist);
        }
        snap
    }
}

/// Monotonically increasing count. No-op when resolved from a disabled
/// [`Telemetry`].
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.cell {
            cell.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.0.load(Ordering::Relaxed))
    }
}

/// Last-write or high-water value. No-op when resolved from a disabled
/// [`Telemetry`].
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// Overwrite the gauge with `value`.
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.0.store(value, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `value` if it is below it (high-water mark).
    pub fn set_max(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.0.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.0.load(Ordering::Relaxed))
    }
}

/// Log₂-bucketed distribution of `u64` samples.
///
/// Sample `v` lands in bucket `⌈log₂(v+1)⌉` (bucket 0 holds only zeros;
/// bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`); see
/// [`bucket_floor`](crate::bucket_floor). No-op when resolved from a
/// disabled [`Telemetry`].
#[derive(Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        let Some(cell) = &self.cell else { return };
        cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Start a wall-clock span that records its elapsed microseconds
    /// into this histogram when dropped (or [`Span::finish`]ed). When
    /// the histogram is disabled the span never reads the clock.
    pub fn start(&self) -> Span {
        Span {
            histogram: self.clone(),
            started: if self.cell.is_some() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }
}

pub(crate) fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// In-flight timing of one operation; see [`Histogram::start`].
#[must_use = "a span records its duration when dropped; binding it to _ drops it immediately"]
pub struct Span {
    histogram: Histogram,
    started: Option<Instant>,
}

impl Span {
    /// End the span now. Equivalent to dropping it, but explicit at the
    /// call site.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            self.histogram.record(started.elapsed().as_micros() as u64);
        }
    }
}
