//! Line-framed JSONL stream readers shared by the live-status and
//! supervisor bins.
//!
//! Two consumers tail newline-delimited JSON in this workspace: the
//! `campaign_status` bin polls shard event files on disk, and the
//! campaign supervisor reads worker protocol lines off child pipes.
//! Both need the same two behaviours, which used to be duplicated ad
//! hoc:
//!
//! * **Partial-line buffering** — a read may end mid-line; the fragment
//!   must be held back and prepended to the next chunk instead of being
//!   parsed (or dropped) early. [`LineFramer`] owns exactly that.
//! * **Truncation-tolerant file tailing** — a byte-offset tail over a
//!   file that assumes append-only stalls forever if the producer
//!   truncates or rotates the file. [`JsonlTail`] detects a shrink,
//!   resets to the new beginning, discards any buffered fragment (it
//!   belonged to the old incarnation), and reports the reset so the
//!   consumer can surface it instead of silently re-counting.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Splits a stream of text chunks into complete `\n`-terminated lines,
/// buffering any trailing partial line until its terminator arrives.
#[derive(Debug, Default)]
pub struct LineFramer {
    partial: String,
}

impl LineFramer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one chunk and returns every line completed by it, without
    /// trailing newlines. The trailing fragment (if any) is buffered.
    pub fn push(&mut self, chunk: &str) -> Vec<String> {
        self.partial.push_str(chunk);
        let mut lines = Vec::new();
        while let Some(pos) = self.partial.find('\n') {
            let mut line: String = self.partial.drain(..=pos).collect();
            line.pop();
            if line.ends_with('\r') {
                line.pop();
            }
            lines.push(line);
        }
        lines
    }

    /// Feeds raw bytes (decoded lossily as UTF-8). Pipe readers hand the
    /// framer whatever `read` returned; JSONL producers in this
    /// workspace always emit UTF-8, so lossy decoding only matters for
    /// corrupt streams — where a replacement character in the line is
    /// strictly better than losing framing.
    pub fn push_bytes(&mut self, chunk: &[u8]) -> Vec<String> {
        self.push(&String::from_utf8_lossy(chunk))
    }

    /// The buffered partial line, if a chunk ended mid-line.
    pub fn partial(&self) -> &str {
        &self.partial
    }

    /// Drops any buffered fragment (used when the underlying stream is
    /// reset and the fragment belonged to the old incarnation).
    pub fn clear(&mut self) {
        self.partial.clear();
    }
}

/// The result of one [`JsonlTail::poll`].
#[derive(Debug, Default)]
pub struct TailPoll {
    /// Complete lines read since the previous poll, in order.
    pub lines: Vec<String>,
    /// True if the file shrank (truncation or rotation) and the tail
    /// restarted from the beginning. `lines` then starts at the new
    /// file's first line.
    pub reset: bool,
}

/// A byte-offset tail over a JSONL file that tolerates truncation and
/// rotation: on shrink it resets to offset zero instead of stalling.
#[derive(Debug)]
pub struct JsonlTail {
    path: PathBuf,
    offset: u64,
    framer: LineFramer,
    resets: u64,
}

impl JsonlTail {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            offset: 0,
            framer: LineFramer::new(),
            resets: 0,
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total stream resets observed so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Reads everything appended since the last poll. A missing file is
    /// not an error — the producer may not have started yet — it just
    /// yields no lines.
    pub fn poll(&mut self) -> io::Result<TailPoll> {
        let mut file = match File::open(&self.path) {
            Ok(file) => file,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(TailPoll::default()),
            Err(err) => return Err(err),
        };
        let len = file.metadata()?.len();
        let mut poll = TailPoll::default();
        if len < self.offset {
            // The producer truncated or rotated the file out from under
            // us. Everything buffered belonged to the old incarnation.
            self.offset = 0;
            self.framer.clear();
            self.resets += 1;
            poll.reset = true;
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut chunk = String::new();
        let read = file.read_to_string(&mut chunk)?;
        self.offset += read as u64;
        poll.lines = self.framer.push(&chunk);
        Ok(poll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::io::Write;

    #[test]
    fn framer_buffers_partial_lines_across_chunks() {
        let mut framer = LineFramer::new();
        assert_eq!(framer.push("{\"a\":1}\n{\"b\""), vec!["{\"a\":1}"]);
        assert_eq!(framer.partial(), "{\"b\"");
        assert_eq!(framer.push(":2}\n"), vec!["{\"b\":2}"]);
        assert_eq!(framer.partial(), "");
    }

    #[test]
    fn framer_splits_multiple_lines_in_one_chunk() {
        let mut framer = LineFramer::new();
        assert_eq!(
            framer.push("one\ntwo\nthree\n"),
            vec!["one", "two", "three"]
        );
        assert!(framer.push("").is_empty());
    }

    #[test]
    fn framer_handles_crlf_and_empty_lines() {
        let mut framer = LineFramer::new();
        assert_eq!(framer.push("a\r\n\nb\n"), vec!["a", "", "b"]);
    }

    #[test]
    fn framer_push_bytes_matches_push() {
        let mut framer = LineFramer::new();
        assert_eq!(framer.push_bytes(b"x\ny"), vec!["x"]);
        assert_eq!(framer.partial(), "y");
        framer.clear();
        assert_eq!(framer.partial(), "");
    }

    #[test]
    fn tail_reads_appends_incrementally() {
        let dir = std::env::temp_dir().join(format!("lfi_tail_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        fs::write(&path, "first\nsec").unwrap();

        let mut tail = JsonlTail::new(&path);
        let poll = tail.poll().unwrap();
        assert_eq!(poll.lines, vec!["first"]);
        assert!(!poll.reset);

        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"ond\nthird\n").unwrap();
        drop(file);
        let poll = tail.poll().unwrap();
        assert_eq!(poll.lines, vec!["second", "third"]);
        assert_eq!(tail.resets(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_resets_on_truncation_instead_of_stalling() {
        let dir = std::env::temp_dir().join(format!("lfi_tail_trunc_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        fs::write(&path, "old line one\nold line two\npartial").unwrap();

        let mut tail = JsonlTail::new(&path);
        let poll = tail.poll().unwrap();
        assert_eq!(poll.lines.len(), 2);
        assert_eq!(tail.partial_len(), "partial".len());

        // Rotation: the producer starts a fresh, shorter file.
        fs::write(&path, "new\n").unwrap();
        let poll = tail.poll().unwrap();
        assert!(poll.reset, "shrink must be detected as a reset");
        assert_eq!(
            poll.lines,
            vec!["new"],
            "buffered fragment must not leak into the new stream"
        );
        assert_eq!(tail.resets(), 1);

        // And the tail keeps following the new incarnation.
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"newer\n").unwrap();
        drop(file);
        assert_eq!(tail.poll().unwrap().lines, vec!["newer"]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_missing_file_yields_nothing() {
        let mut tail = JsonlTail::new("/nonexistent/definitely/not/here.jsonl");
        let poll = tail.poll().unwrap();
        assert!(poll.lines.is_empty());
        assert!(!poll.reset);
    }

    impl JsonlTail {
        fn partial_len(&self) -> usize {
            self.framer.partial().len()
        }
    }
}
