//! The supervisor's `table1` preset and the bench hunt must enumerate
//! the exact same fault space: a supervised Table 1 campaign distributes
//! the same plan the single-process hunt runs, or the comparison (and
//! any mixed resume) is meaningless. Plan identity is the space digest,
//! which covers points, ordering, and annotations.

use lfi_bench::table1_fault_space;
use lfi_campaign::StandardExecutor;
use lfi_supervisor::SpaceSpec;

#[test]
fn the_table1_preset_builds_the_hunts_exact_space() {
    let spec = SpaceSpec::table1();
    let executor = StandardExecutor::new(&spec.target_names());
    let preset = spec.build(&executor);
    let hunt = table1_fault_space(&executor, 7);
    assert_eq!(preset.len(), hunt.len(), "point counts differ");
    assert_eq!(
        preset.digest(),
        hunt.digest(),
        "the supervisor preset and the bench hunt enumerate different spaces"
    );
}
