//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (§7). Each `table*`/`figure*` function runs the corresponding
//! experiment end to end and returns a result structure whose `Display`
//! implementation prints the same rows the paper reports, alongside the
//! paper's own numbers for comparison. The binaries in `src/bin/` are thin
//! wrappers; `run_all` regenerates everything in one go (and is what
//! `EXPERIMENTS.md` is produced from).

pub mod campaign;
pub mod experiments;
pub mod support;

pub use campaign::{
    match_known_bugs, table1_campaign, table1_fault_space, table1_merge, HuntOptions, HuntStrategy,
    Table1Campaign,
};
pub use experiments::{
    analyzer_efficiency, dos_study, figure3_pbft_slowdown, random_injection_sweep, table1_bugs,
    table2_precision, table3_coverage, table4_accuracy, table5_apache_overhead,
    table6_mysql_overhead,
};
