//! The experiments of §7, one function per table/figure.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Instant;

use lfi_analyzer::{
    analyze_call_sites, recovery_offsets, AnalysisConfig, CallSiteClass, ClassMetrics,
    ConfusionMatrix,
};
use lfi_core::{
    DistributedController, DistributedPolicy, FunctionAssoc, Scenario, TestConfig, TestOutcome,
    TriggerDecl, TriggerRegistry,
};
use lfi_targets::{
    bft_lite, bind_lite, db_lite, git_lite, ground_truth, httpd_lite, run_bft_cluster,
    standard_controller, BftClusterConfig, FsSetupWorkload, KNOWN_BUGS,
};
use lfi_vm::Coverage;

use crate::support::{all_sites, default_test_suite, pct, run_target, single_site_scenario};

// ---------------------------------------------------------------------------
// Table 1 — bugs found automatically
// ---------------------------------------------------------------------------

/// One found bug.
#[derive(Debug, Clone)]
pub struct FoundBug {
    /// Which known (paper) bug it corresponds to.
    pub id: String,
    /// System name.
    pub system: String,
    /// Injected library function.
    pub injected_function: String,
    /// Caller in which the injection fired.
    pub caller: String,
    /// How the failure manifested.
    pub manifestation: String,
}

/// Result of the Table 1 reproduction.
#[derive(Debug, Clone, Default)]
pub struct Table1 {
    /// Bugs found, keyed by known-bug id.
    pub found: Vec<FoundBug>,
    /// Known bugs that were not found.
    pub missed: Vec<String>,
    /// Total automated test runs executed.
    pub runs: usize,
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: bugs found automatically (paper: 11 bugs)")?;
        writeln!(
            f,
            "{:<22} {:<8} {:<12} {:<18} manifestation",
            "bug", "system", "injected", "caller"
        )?;
        for bug in &self.found {
            writeln!(
                f,
                "{:<22} {:<8} {:<12} {:<18} {}",
                bug.id, bug.system, bug.injected_function, bug.caller, bug.manifestation
            )?;
        }
        for missed in &self.missed {
            writeln!(f, "{missed:<22} NOT FOUND")?;
        }
        writeln!(
            f,
            "found {}/{} known bugs in {} automated runs",
            self.found.len(),
            KNOWN_BUGS.len(),
            self.runs
        )
    }
}

/// Run the Table 1 experiment: analyzer-generated scenarios, applied with no
/// modifications, one call site at a time, against each system's default
/// workloads. Since the campaign rewire this is a thin wrapper over
/// [`crate::campaign::table1_campaign`] with the default (exhaustive,
/// single-worker) options; use that entry point directly for parallel or
/// strategy-driven hunts.
pub fn table1_bugs() -> Table1 {
    crate::campaign::table1_campaign(&crate::campaign::HuntOptions::default()).table
}

// ---------------------------------------------------------------------------
// Table 2 — precision of three trigger scenarios for the MySQL close bug
// ---------------------------------------------------------------------------

/// Result of the Table 2 reproduction.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// (scenario label, paper precision, measured precision) rows.
    pub rows: Vec<(String, &'static str, f64)>,
    /// Number of repetitions per scenario.
    pub repetitions: u64,
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: precision of triggers targeting the db-lite double-unlock bug ({} runs each)",
            self.repetitions
        )?;
        writeln!(
            f,
            "{:<38} {:>10} {:>10}",
            "trigger scenario", "paper", "measured"
        )?;
        for (label, paper, measured) in &self.rows {
            writeln!(f, "{label:<38} {paper:>10} {:>9.0}%", measured * 100.0)?;
        }
        Ok(())
    }
}

fn precision_of(make_scenario: &dyn Fn(u64) -> Scenario, repetitions: u64) -> f64 {
    let controller = standard_controller();
    let exe = db_lite();
    let mut activated = 0u64;
    for i in 0..repetitions {
        let scenario = make_scenario(2000 + i);
        let config = TestConfig {
            args: vec!["merge-big".into(), "1".into()],
            seed: 1000 + i,
            ..TestConfig::default()
        };
        let report = controller
            .run_test(&exe, &scenario, &mut FsSetupWorkload, &config)
            .expect("run");
        if let TestOutcome::Crashed(description) = &report.outcome {
            if description.contains("mutex") {
                activated += 1;
            }
        }
    }
    activated as f64 / repetitions as f64
}

/// Run the Table 2 experiment.
pub fn table2_precision() -> Table2 {
    let repetitions = 100;
    // Scenario 1: random 10% injection into every close call.
    let random = |seed: u64| {
        Scenario::new()
            .with_trigger(TriggerDecl {
                id: "rnd".into(),
                class: "RandomTrigger".into(),
                params: BTreeMap::from([
                    ("probability".to_string(), "0.1".to_string()),
                    ("seed".to_string(), seed.to_string()),
                ]),
                frames: vec![],
            })
            .with_function(FunctionAssoc {
                function: "close".into(),
                argc: 1,
                retval: Some(-1),
                errno: Some(lfi_arch::errno::EIO),
                triggers: vec!["rnd".into()],
            })
    };
    random(0).validate().unwrap();

    // Scenario 2: random 10%, but only for close calls made from mi_create
    // (the paper scoped the injection to the bug's source file).
    let scoped = |seed: u64| {
        Scenario::new()
            .with_trigger(TriggerDecl {
                id: "rnd".into(),
                class: "RandomTrigger".into(),
                params: BTreeMap::from([
                    ("probability".to_string(), "0.1".to_string()),
                    ("seed".to_string(), seed.to_string()),
                ]),
                frames: vec![],
            })
            .with_trigger(TriggerDecl {
                id: "infile".into(),
                class: "CallerFunctionTrigger".into(),
                params: BTreeMap::from([
                    ("function".to_string(), "mi_create".to_string()),
                    ("anywhere".to_string(), "0".to_string()),
                ]),
                frames: vec![],
            })
            .with_function(FunctionAssoc {
                function: "close".into(),
                argc: 1,
                retval: Some(-1),
                errno: Some(lfi_arch::errno::EIO),
                triggers: vec!["infile".into(), "rnd".into()],
            })
    };
    scoped(0).validate().unwrap();

    // Scenario 3: the custom "close shortly after a mutex unlock" trigger.
    let proximity = |_seed: u64| {
        Scenario::new()
            .with_trigger(TriggerDecl {
                id: "near_unlock".into(),
                class: "ProximityTrigger".into(),
                params: BTreeMap::from([
                    ("watch".to_string(), "pthread_mutex_unlock".to_string()),
                    ("distance".to_string(), "2".to_string()),
                ]),
                frames: vec![],
            })
            .with_function(FunctionAssoc {
                function: "close".into(),
                argc: 1,
                retval: Some(-1),
                errno: Some(lfi_arch::errno::EIO),
                triggers: vec!["near_unlock".into()],
            })
            .with_function(FunctionAssoc {
                function: "pthread_mutex_unlock".into(),
                argc: 1,
                retval: None,
                errno: None,
                triggers: vec!["near_unlock".into()],
            })
    };
    proximity(0).validate().unwrap();

    Table2 {
        rows: vec![
            (
                "Random (10%)".to_string(),
                "16%",
                precision_of(&random, repetitions),
            ),
            (
                "Random (10%) within bug's function".to_string(),
                "45%",
                precision_of(&scoped, repetitions),
            ),
            (
                "Close after mutex unlock".to_string(),
                "100%",
                precision_of(&proximity, repetitions),
            ),
        ],
        repetitions,
    }
}

// ---------------------------------------------------------------------------
// Table 3 — automated improvement in recovery-code coverage
// ---------------------------------------------------------------------------

/// One row (per target) of the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Target program.
    pub program: String,
    /// Total recovery lines identified in the binary.
    pub recovery_lines_total: usize,
    /// Recovery lines covered by the default suite alone.
    pub recovery_covered_baseline: usize,
    /// Recovery lines covered with LFI injections added.
    pub recovery_covered_with_lfi: usize,
    /// Additional source lines covered thanks to LFI.
    pub additional_lines: usize,
    /// Total source lines with any code.
    pub total_lines: usize,
    /// Lines covered without LFI.
    pub covered_baseline: usize,
    /// Lines covered with LFI.
    pub covered_with_lfi: usize,
}

/// Result of the Table 3 reproduction.
#[derive(Debug, Clone, Default)]
pub struct Table3 {
    /// Per-target rows (git-lite and bind-lite, as in the paper).
    pub rows: Vec<CoverageRow>,
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 3: automated improvement in recovery-code coverage (paper: Git ~+35%, BIND ~+60%)")?;
        for row in &self.rows {
            let newly = row
                .recovery_covered_with_lfi
                .saturating_sub(row.recovery_covered_baseline);
            let uncovered_before = row
                .recovery_lines_total
                .saturating_sub(row.recovery_covered_baseline);
            writeln!(f, "{}:", row.program)?;
            writeln!(
                f,
                "  additional recovery code covered: {} of {} previously uncovered recovery lines ({})",
                newly,
                uncovered_before,
                pct(newly as f64, uncovered_before as f64)
            )?;
            writeln!(
                f,
                "  additional LOC covered by LFI:    {}",
                row.additional_lines
            )?;
            writeln!(
                f,
                "  total coverage without LFI:        {}",
                pct(row.covered_baseline as f64, row.total_lines as f64)
            )?;
            writeln!(
                f,
                "  total coverage with LFI:           {}",
                pct(row.covered_with_lfi as f64, row.total_lines as f64)
            )?;
        }
        Ok(())
    }
}

fn coverage_lines(cov: &Coverage, module: &lfi_obj::Module) -> BTreeSet<(String, u32)> {
    cov.covered_lines(module)
}

/// Run the Table 3 experiment for git-lite and bind-lite.
pub fn table3_coverage() -> Table3 {
    let controller = standard_controller();
    let profile = controller.profile_libraries();
    let mut result = Table3::default();
    for (target, exe) in [("git-lite", git_lite()), ("bind-lite", bind_lite())] {
        // The injectable set: the ~25 commonly failing calls of the paper.
        let functions: Vec<String> = lfi_libc::COMMONLY_FAILING
            .iter()
            .map(|s| s.to_string())
            .collect();
        let recovery = recovery_offsets(&exe, &profile, &functions);
        let total_lines: BTreeSet<(String, u32)> = exe
            .line_table
            .iter()
            .map(|e| (exe.files[e.file as usize].clone(), e.line))
            .collect();

        // Baseline: default test suite, no injection.
        let mut baseline_cov = Coverage::new();
        for args in default_test_suite(target) {
            let report = run_target(target, &exe, &Scenario::new(), args, true, 1);
            baseline_cov.merge(&report.coverage);
        }
        // With LFI: re-run the same suite once per injectable call site.
        let mut lfi_cov = baseline_cov.clone();
        for (function, offset) in all_sites(&exe, &functions) {
            let scenario = single_site_scenario(target, &function, offset, &profile);
            for args in default_test_suite(target) {
                let report = run_target(target, &exe, &scenario, args, true, 2);
                lfi_cov.merge(&report.coverage);
            }
        }

        let baseline_lines = coverage_lines(&baseline_cov, &exe);
        let lfi_lines = coverage_lines(&lfi_cov, &exe);
        let recovery_lines: BTreeSet<(String, u32)> = recovery.lines.clone();
        result.rows.push(CoverageRow {
            program: target.to_string(),
            recovery_lines_total: recovery_lines.len(),
            recovery_covered_baseline: baseline_lines.intersection(&recovery_lines).count(),
            recovery_covered_with_lfi: lfi_lines.intersection(&recovery_lines).count(),
            additional_lines: lfi_lines.difference(&baseline_lines).count(),
            total_lines: total_lines.len(),
            covered_baseline: baseline_lines.len(),
            covered_with_lfi: lfi_lines.len(),
        });
    }
    result
}

// ---------------------------------------------------------------------------
// Table 4 — call-site analysis accuracy
// ---------------------------------------------------------------------------

/// One row of the Table 4 reproduction.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Target program.
    pub program: String,
    /// Library function analyzed.
    pub function: String,
    /// Full confusion matrix against ground truth (positive = "unchecked",
    /// the paper's orientation).
    pub matrix: ConfusionMatrix,
    /// Correct classifications (TP+TN).
    pub correct: usize,
    /// False negatives.
    pub false_negatives: usize,
    /// False positives.
    pub false_positives: usize,
    /// Accuracy.
    pub accuracy: f64,
}

/// Result of the Table 4 reproduction.
#[derive(Debug, Clone, Default)]
pub struct Table4 {
    /// Rows, in the paper's order.
    pub rows: Vec<AccuracyRow>,
}

impl Table4 {
    /// The confusion matrix pooled over all rows.
    pub fn overall_matrix(&self) -> ConfusionMatrix {
        let mut pooled = ConfusionMatrix::default();
        for row in &self.rows {
            pooled.merge(&row.matrix);
        }
        pooled
    }

    /// Overall accuracy across all rows.
    pub fn overall_accuracy(&self) -> f64 {
        self.overall_matrix().accuracy()
    }

    /// Serialize the table — rows, per-class precision/recall/F1, and the
    /// pooled rollup — as the `BENCH_table4.json` document CI archives.
    pub fn to_json(&self) -> lfi_json::Value {
        use lfi_json::Value;
        // lfi_json carries no float variant; ratios are stored in permille.
        let metrics_json = |m: &ClassMetrics| {
            Value::Obj(vec![
                (
                    "precision_permille".into(),
                    Value::Int((m.precision * 1000.0).round() as i64),
                ),
                (
                    "recall_permille".into(),
                    Value::Int((m.recall * 1000.0).round() as i64),
                ),
                (
                    "f1_permille".into(),
                    Value::Int((m.f1 * 1000.0).round() as i64),
                ),
            ])
        };
        let matrix_json = |m: &ConfusionMatrix| {
            Value::Obj(vec![
                ("tp".into(), Value::Int(m.true_positives as i64)),
                ("tn".into(), Value::Int(m.true_negatives as i64)),
                ("fp".into(), Value::Int(m.false_positives as i64)),
                ("fn".into(), Value::Int(m.false_negatives as i64)),
                (
                    "accuracy_permille".into(),
                    Value::Int((m.accuracy() * 1000.0).round() as i64),
                ),
                ("unchecked".into(), metrics_json(&m.unchecked_metrics())),
                ("checked".into(), metrics_json(&m.checked_metrics())),
            ])
        };
        let rows = self
            .rows
            .iter()
            .map(|row| {
                Value::Obj(vec![
                    ("program".into(), Value::Str(row.program.clone())),
                    ("function".into(), Value::Str(row.function.clone())),
                    ("matrix".into(), matrix_json(&row.matrix)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("table".into(), Value::Str("table4_accuracy".into())),
            ("rows".into(), Value::Arr(rows)),
            ("overall".into(), matrix_json(&self.overall_matrix())),
        ])
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 4: call-site analysis accuracy (paper: 83%-100% per row, 1 FP total)"
        )?;
        writeln!(
            f,
            "{:<12} {:<10} {:>7} {:>4} {:>4} {:>9} {:>7} {:>7} {:>7}",
            "system", "function", "TP+TN", "FN", "FP", "accuracy", "prec", "recall", "f1"
        )?;
        for row in &self.rows {
            let unchecked = row.matrix.unchecked_metrics();
            writeln!(
                f,
                "{:<12} {:<10} {:>7} {:>4} {:>4} {:>8.0}% {:>6.0}% {:>6.0}% {:>6.0}%",
                row.program,
                row.function,
                row.correct,
                row.false_negatives,
                row.false_positives,
                row.accuracy * 100.0,
                unchecked.precision * 100.0,
                unchecked.recall * 100.0,
                unchecked.f1 * 100.0,
            )?;
        }
        let overall = self.overall_matrix();
        let unchecked = overall.unchecked_metrics();
        let checked = overall.checked_metrics();
        writeln!(
            f,
            "overall accuracy: {:.1}%  unchecked P/R/F1: {:.1}%/{:.1}%/{:.1}%  \
             checked P/R/F1: {:.1}%/{:.1}%/{:.1}%",
            self.overall_accuracy() * 100.0,
            unchecked.precision * 100.0,
            unchecked.recall * 100.0,
            unchecked.f1 * 100.0,
            checked.precision * 100.0,
            checked.recall * 100.0,
            checked.f1 * 100.0,
        )
    }
}

/// Run the Table 4 experiment.
pub fn table4_accuracy() -> Table4 {
    let controller = standard_controller();
    let profile = controller.profile_libraries();
    let mut result = Table4::default();
    for row in ground_truth() {
        let exe = match row.program {
            "bind-lite" => bind_lite(),
            "git-lite" => git_lite(),
            "bft-lite" => bft_lite(),
            other => panic!("unknown program {other}"),
        };
        let error_codes = profile
            .function(row.function)
            .map(|p| p.error_return_values())
            .unwrap_or_else(|| vec![-1]);
        let report =
            analyze_call_sites(&exe, row.function, &error_codes, AnalysisConfig::default());
        let mut matrix = ConfusionMatrix::default();
        for site in &report.sites {
            let caller = site.caller.clone().unwrap_or_default();
            let really_checked = row.checking_callers.contains(&caller.as_str());
            let says_checked = site.class == CallSiteClass::Checked;
            // Paper orientation: positive = "not checked".
            match (says_checked, really_checked) {
                (true, true) => matrix.true_negatives += 1,
                (false, false) => matrix.true_positives += 1,
                (false, true) => matrix.false_positives += 1,
                (true, false) => matrix.false_negatives += 1,
            }
        }
        result.rows.push(AccuracyRow {
            program: row.program.to_string(),
            function: row.function.to_string(),
            correct: matrix.true_positives + matrix.true_negatives,
            false_negatives: matrix.false_negatives,
            false_positives: matrix.false_positives,
            accuracy: matrix.accuracy(),
            matrix,
        });
    }
    result
}

// ---------------------------------------------------------------------------
// Tables 5 and 6 — the precision/performance trade-off
// ---------------------------------------------------------------------------

/// Result of an overhead sweep: virtual run time (or throughput) per number
/// of triggers.
#[derive(Debug, Clone, Default)]
pub struct OverheadSweep {
    /// Table label.
    pub label: String,
    /// Workload column labels.
    pub workloads: Vec<String>,
    /// Rows: (number of triggers, measurements per workload).
    pub rows: Vec<(usize, Vec<f64>)>,
    /// Whether larger numbers are better (throughput) or worse (run time).
    pub higher_is_better: bool,
}

impl fmt::Display for OverheadSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.label)?;
        write!(f, "{:<14}", "triggers")?;
        for w in &self.workloads {
            write!(f, "{w:>16}")?;
        }
        writeln!(f)?;
        for (count, values) in &self.rows {
            if *count == 0 {
                write!(f, "{:<14}", "baseline")?;
            } else {
                write!(f, "{count:<14}")?;
            }
            for v in values {
                write!(f, "{v:>16.1}")?;
            }
            writeln!(f)?;
        }
        if let (Some(first), Some(last)) = (self.rows.first(), self.rows.last()) {
            for (i, w) in self.workloads.iter().enumerate() {
                let overhead = if self.higher_is_better {
                    (first.1[i] - last.1[i]) / first.1[i] * 100.0
                } else {
                    (last.1[i] - first.1[i]) / first.1[i] * 100.0
                };
                writeln!(
                    f,
                    "  {w}: overhead with all triggers = {overhead:.2}% (paper: negligible, <5%)"
                )?;
            }
        }
        Ok(())
    }
}

/// The Table 5 trigger stack (public so the criterion benches reuse it).
pub fn httpd_trigger_scenario(trigger_count: usize) -> Scenario {
    let mut scenario = Scenario::new();
    let defs: Vec<TriggerDecl> = vec![
        TriggerDecl {
            id: "t1".into(),
            class: "FdKindTrigger".into(),
            params: BTreeMap::from([
                ("index".to_string(), "0".to_string()),
                (
                    "kind".to_string(),
                    lfi_arch::abi::filekind::REGULAR.to_string(),
                ),
            ]),
            frames: vec![],
        },
        TriggerDecl {
            id: "t2".into(),
            class: "CallerFunctionTrigger".into(),
            params: BTreeMap::from([
                ("function".to_string(), "apr_file_read".to_string()),
                ("anywhere".to_string(), "1".to_string()),
            ]),
            frames: vec![],
        },
        TriggerDecl {
            id: "t3".into(),
            class: "CallerFunctionTrigger".into(),
            params: BTreeMap::from([
                (
                    "function".to_string(),
                    "ap_process_request_internal".to_string(),
                ),
                ("anywhere".to_string(), "1".to_string()),
            ]),
            frames: vec![],
        },
        TriggerDecl {
            id: "t4".into(),
            class: "ProgramStateTrigger".into(),
            params: BTreeMap::from([
                ("variable".to_string(), "requests_done".to_string()),
                ("op".to_string(), ">=".to_string()),
                ("value".to_string(), "0".to_string()),
            ]),
            frames: vec![],
        },
        TriggerDecl {
            id: "t5".into(),
            class: "WithMutexTrigger".into(),
            params: BTreeMap::new(),
            frames: vec![],
        },
    ];
    let mut ids = Vec::new();
    for decl in defs.into_iter().take(trigger_count) {
        ids.push(decl.id.clone());
        scenario.triggers.push(decl);
    }
    if trigger_count > 0 {
        scenario.functions.push(FunctionAssoc {
            function: "read".into(),
            argc: 3,
            retval: Some(-1),
            errno: Some(lfi_arch::errno::EIO),
            triggers: ids,
        });
    }
    scenario
}

/// Run the Table 5 experiment: httpd-lite run time with 0-5 triggers, static
/// HTML and PHP workloads. Triggers are evaluated but never inject
/// (`observe_only`), exactly like the paper's measurement methodology.
pub fn table5_apache_overhead() -> OverheadSweep {
    let controller = standard_controller();
    let exe = httpd_lite();
    let mut sweep = OverheadSweep {
        label: "Table 5: httpd-lite virtual run time (kticks) with 0-5 triggers".to_string(),
        workloads: vec!["static HTML".to_string(), "PHP".to_string()],
        higher_is_better: false,
        ..OverheadSweep::default()
    };
    for count in 0..=5 {
        let scenario = httpd_trigger_scenario(count);
        let mut values = Vec::new();
        for kind in ["1", "2"] {
            let config = TestConfig {
                args: vec!["200".to_string(), kind.to_string()],
                observe_only: true,
                ..TestConfig::default()
            };
            let report = controller
                .run_test(&exe, &scenario, &mut FsSetupWorkload, &config)
                .expect("httpd run");
            assert!(
                matches!(report.outcome, TestOutcome::Passed),
                "{}",
                report.output
            );
            values.push(report.virtual_time as f64 / 1000.0);
        }
        sweep.rows.push((count, values));
    }
    sweep
}

fn db_scenario(trigger_count: usize) -> Scenario {
    let mut scenario = Scenario::new();
    let defs = vec![
        TriggerDecl {
            id: "t1".into(),
            class: "ArgTrigger".into(),
            params: BTreeMap::from([
                ("index".to_string(), "1".to_string()),
                (
                    "value".to_string(),
                    lfi_arch::abi::fcntlcmd::GETLK.to_string(),
                ),
            ]),
            frames: vec![],
        },
        TriggerDecl {
            id: "t2".into(),
            class: "ProgramStateTrigger".into(),
            params: BTreeMap::from([
                ("variable".to_string(), "thread_count".to_string()),
                ("op".to_string(), ">".to_string()),
                ("value".to_string(), "64".to_string()),
            ]),
            frames: vec![],
        },
        TriggerDecl {
            id: "t3".into(),
            class: "ProgramStateTrigger".into(),
            params: BTreeMap::from([
                ("variable".to_string(), "shutdown_in_progress".to_string()),
                ("op".to_string(), "==".to_string()),
                ("value".to_string(), "1".to_string()),
            ]),
            frames: vec![],
        },
        TriggerDecl {
            id: "t4".into(),
            class: "CallerFunctionTrigger".into(),
            params: BTreeMap::from([
                ("function".to_string(), "do_txn".to_string()),
                ("anywhere".to_string(), "1".to_string()),
            ]),
            frames: vec![],
        },
    ];
    let mut ids = Vec::new();
    for decl in defs.into_iter().take(trigger_count) {
        ids.push(decl.id.clone());
        scenario.triggers.push(decl);
    }
    if trigger_count > 0 {
        scenario.functions.push(FunctionAssoc {
            function: "fcntl".into(),
            argc: 3,
            retval: Some(-1),
            errno: Some(lfi_arch::errno::EAGAIN),
            triggers: ids,
        });
    }
    scenario
}

/// Run the Table 6 experiment: db-lite OLTP throughput (transactions per
/// million virtual ticks) with 0-4 triggers on `fcntl`.
pub fn table6_mysql_overhead() -> OverheadSweep {
    let controller = standard_controller();
    let exe = db_lite();
    let mut sweep = OverheadSweep {
        label: "Table 6: db-lite OLTP throughput (txns per Mtick) with 0-4 triggers".to_string(),
        workloads: vec!["read-only".to_string(), "read-write".to_string()],
        higher_is_better: true,
        ..OverheadSweep::default()
    };
    for count in 0..=4 {
        let scenario = db_scenario(count);
        let mut values = Vec::new();
        for readonly in ["1", "0"] {
            let txns = 300u64;
            let config = TestConfig {
                args: vec!["oltp".to_string(), txns.to_string(), readonly.to_string()],
                observe_only: true,
                ..TestConfig::default()
            };
            let report = controller
                .run_test(&exe, &scenario, &mut FsSetupWorkload, &config)
                .expect("db run");
            assert!(
                matches!(report.outcome, TestOutcome::Passed),
                "{}",
                report.output
            );
            values.push(txns as f64 * 1_000_000.0 / report.virtual_time as f64);
        }
        sweep.rows.push((count, values));
    }
    sweep
}

// ---------------------------------------------------------------------------
// Figure 3 — PBFT slowdown under worsening network conditions
// ---------------------------------------------------------------------------

/// Result of the Figure 3 reproduction.
#[derive(Debug, Clone, Default)]
pub struct Figure3 {
    /// (loss probability, mean slowdown factor) series.
    pub series: Vec<(f64, f64)>,
    /// Trials per point.
    pub trials: u64,
}

impl fmt::Display for Figure3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: bft-lite throughput slowdown vs probability of packet loss ({} trials per point; paper peaks at ~4.17x at p=0.99)", self.trials)?;
        writeln!(f, "{:>8} {:>12}", "p(loss)", "slowdown")?;
        for (p, slowdown) in &self.series {
            writeln!(f, "{p:>8.2} {slowdown:>11.2}x")?;
        }
        Ok(())
    }
}

fn loss_scenario(probability: f64, seed: u64) -> Scenario {
    let mut scenario = Scenario::new().with_trigger(TriggerDecl {
        id: "loss".into(),
        class: "RandomTrigger".into(),
        params: BTreeMap::from([
            ("probability".to_string(), probability.to_string()),
            ("seed".to_string(), seed.to_string()),
        ]),
        frames: vec![],
    });
    for function in ["sendto", "recvfrom"] {
        scenario.functions.push(FunctionAssoc {
            function: function.to_string(),
            argc: 5,
            retval: Some(-1),
            errno: Some(lfi_arch::errno::EIO),
            triggers: vec!["loss".into()],
        });
    }
    scenario
}

/// Run the Figure 3 experiment.
pub fn figure3_pbft_slowdown() -> Figure3 {
    let probabilities = [0.0, 0.1, 0.8, 0.9, 0.95, 0.99];
    let trials = 3u64;
    let requests = 6usize;
    let mut series = Vec::new();
    let mut baseline_time_per_request = 0.0;
    for &p in &probabilities {
        let mut total = 0.0;
        for trial in 0..trials {
            let scenario = loss_scenario(p, 77 + trial);
            let result = run_bft_cluster(&BftClusterConfig {
                requests,
                seed: 13 + trial,
                scenario,
                ..BftClusterConfig::default()
            });
            let completed = result.completed.max(1) as f64;
            total += result.virtual_time as f64 / completed;
        }
        let time_per_request = total / trials as f64;
        if p == 0.0 {
            baseline_time_per_request = time_per_request;
        }
        let slowdown = if baseline_time_per_request > 0.0 {
            time_per_request / baseline_time_per_request
        } else {
            1.0
        };
        series.push((p, slowdown));
    }
    Figure3 { series, trials }
}

// ---------------------------------------------------------------------------
// §7.3 — denial-of-service study
// ---------------------------------------------------------------------------

/// Result of the §7.3 DoS study.
#[derive(Debug, Clone, Default)]
pub struct DosStudy {
    /// (scenario label, throughput, relative change vs baseline) rows.
    pub rows: Vec<(String, f64, f64)>,
}

impl fmt::Display for DosStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DoS study (§7.3): bft-lite throughput under distributed-trigger attack schedules"
        )?;
        writeln!(
            f,
            "{:<40} {:>14} {:>12}",
            "scenario", "throughput", "vs baseline"
        )?;
        for (label, throughput, change) in &self.rows {
            writeln!(
                f,
                "{label:<40} {throughput:>14.2} {:>+11.1}%",
                change * 100.0
            )?;
        }
        writeln!(
            f,
            "(paper: single-replica blackout +12%, rotating 500-fault bursts -2.2x)"
        )
    }
}

fn distributed_scenario() -> Scenario {
    let mut scenario = Scenario::new().with_trigger(TriggerDecl {
        id: "dist".into(),
        class: "DistributedTrigger".into(),
        params: BTreeMap::new(),
        frames: vec![],
    });
    for function in ["sendto", "recvfrom"] {
        scenario.functions.push(FunctionAssoc {
            function: function.to_string(),
            argc: 5,
            retval: Some(-1),
            errno: Some(lfi_arch::errno::EIO),
            triggers: vec!["dist".into()],
        });
    }
    scenario
}

fn run_with_policy(policy: DistributedPolicy, requests: usize) -> f64 {
    let controller = DistributedController::new(policy, 9);
    let mut registry = TriggerRegistry::default();
    controller.register(&mut registry);
    let result = run_bft_cluster(&BftClusterConfig {
        requests,
        scenario: distributed_scenario(),
        registry,
        ..BftClusterConfig::default()
    });
    result.throughput
}

/// Run the §7.3 DoS study.
pub fn dos_study() -> DosStudy {
    let requests = 6usize;
    let baseline = run_with_policy(DistributedPolicy::Never, requests);
    let single = run_with_policy(DistributedPolicy::TargetNode { node: 3 }, requests);
    let rotating = run_with_policy(
        DistributedPolicy::RotatingBursts {
            nodes: vec![1, 2, 3, 4],
            burst: 50,
        },
        requests,
    );
    let change = |v: f64| {
        if baseline > 0.0 {
            v / baseline - 1.0
        } else {
            0.0
        }
    };
    DosStudy {
        rows: vec![
            (
                "baseline (interception, no injection)".to_string(),
                baseline,
                0.0,
            ),
            (
                "blackout of one backup replica".to_string(),
                single,
                change(single),
            ),
            (
                "rotating 50-fault bursts across replicas".to_string(),
                rotating,
                change(rotating),
            ),
        ],
    }
}

// ---------------------------------------------------------------------------
// §7.2 — analyzer efficiency, and §7.1 random-injection sweep
// ---------------------------------------------------------------------------

/// Analyzer wall-clock timing per target (§7.2: 1-10 seconds on BIND).
#[derive(Debug, Clone, Default)]
pub struct AnalyzerEfficiency {
    /// (target, call sites analyzed, milliseconds) rows.
    pub rows: Vec<(String, usize, f64)>,
}

impl fmt::Display for AnalyzerEfficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Analyzer efficiency (§7.2; paper: 1-10 s per target)")?;
        writeln!(
            f,
            "{:<12} {:>12} {:>12}",
            "target", "call sites", "time (ms)"
        )?;
        for (target, sites, ms) in &self.rows {
            writeln!(f, "{target:<12} {sites:>12} {ms:>12.2}")?;
        }
        Ok(())
    }
}

/// Measure the analyzer's running time on every target binary.
pub fn analyzer_efficiency() -> AnalyzerEfficiency {
    let controller = standard_controller();
    let mut result = AnalyzerEfficiency::default();
    for (name, exe) in lfi_targets::all_targets() {
        let start = Instant::now();
        let reports = controller.analyze(&exe);
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        let sites: usize = reports.iter().map(|r| r.sites.len()).sum();
        result.rows.push((name.to_string(), sites, elapsed));
    }
    result
}

/// Result of the §7.1 random-injection sweep on db-lite.
#[derive(Debug, Clone, Default)]
pub struct RandomSweep {
    /// Number of test runs.
    pub runs: u64,
    /// Runs that crashed.
    pub crashes: u64,
    /// Distinct crash locations (module + offset of the faulting site).
    pub distinct_crash_sites: usize,
}

impl fmt::Display for RandomSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Random injection sweep (§7.1; paper: 1,000 random tests -> 35 distinct MySQL crashes)"
        )?;
        writeln!(
            f,
            "{} runs -> {} crashes at {} distinct sites",
            self.runs, self.crashes, self.distinct_crash_sites
        )
    }
}

/// Run random injections against db-lite and count distinct crash sites.
pub fn random_injection_sweep(runs: u64) -> RandomSweep {
    let controller = standard_controller();
    let exe = db_lite();
    let functions = ["close", "read", "open", "malloc", "write", "fcntl"];
    let mut crashes = 0u64;
    let mut sites = BTreeSet::new();
    for i in 0..runs {
        let function = functions[(i % functions.len() as u64) as usize];
        let mut scenario = Scenario::new().with_trigger(TriggerDecl {
            id: "rnd".into(),
            class: "RandomTrigger".into(),
            params: BTreeMap::from([
                ("probability".to_string(), "0.2".to_string()),
                ("seed".to_string(), (100 + i).to_string()),
            ]),
            frames: vec![],
        });
        scenario.functions.push(FunctionAssoc {
            function: function.to_string(),
            argc: 3,
            retval: Some(if function == "malloc" { 0 } else { -1 }),
            errno: Some(lfi_arch::errno::EIO),
            triggers: vec!["rnd".into()],
        });
        let suite = default_test_suite("db-lite");
        let args = suite[(i % suite.len() as u64) as usize].clone();
        let config = TestConfig {
            args,
            seed: i,
            ..TestConfig::default()
        };
        let report = controller
            .run_test(&exe, &scenario, &mut FsSetupWorkload, &config)
            .expect("run");
        if let Some(fault) = &report.fault {
            crashes += 1;
            sites.insert((fault.module.clone(), fault.offset));
        }
    }
    RandomSweep {
        runs,
        crashes,
        distinct_crash_sites: sites.len(),
    }
}
