//! Whole-program static-analysis lint over the evaluation targets.
//!
//! Usage: lfi_analyze [--format text|json] [--out DIR] [--check DIR]
//!                    [--target NAME ...]
//!
//! For every selected target (default: all six — the five `*-lite`
//! executables plus the libxml-lite shared library) the tool runs the
//! call-site classifier and the interprocedural error-propagation pass and
//! collects the per-site verdicts into a [`TargetFindings`] document. It
//! also runs the callee-side path-sensitive profile of each registered
//! library module and cross-checks it against the runtime profiler's linear
//! scan, emitting one `profile-<library>.json` divergence document per
//! library.
//!
//! * `--format json` prints the documents to stdout (text prints a human
//!   summary instead).
//! * `--out DIR` writes `<DIR>/<target>.json` and
//!   `<DIR>/profile-<library>.json` — the files committed under
//!   `analysis/baselines/`.
//! * `--check DIR` diffs the current documents against the baselines in
//!   `DIR` and exits non-zero on any regression: a new unhandled site, a
//!   site whose verdict worsened from handled to unhandled, or a new
//!   profile divergence. Improvements (sites disappearing or becoming
//!   handled, divergences resolved) pass. A missing baseline file is an
//!   error — add it explicitly so new targets are gated deliberately.

use std::collections::BTreeSet;
use std::process::exit;

use lfi_analyzer::{
    cross_check, diff_findings, static_profile_library, verdict_str, ProfileDivergence,
    TargetFindings,
};
use lfi_json::Value;
use lfi_targets::{all_targets, libxml_lite, standard_controller};

const USAGE: &str = "usage: lfi_analyze [--format text|json] [--out DIR] [--check DIR] \
                     [--target NAME ...]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(2);
}

/// A stable one-line rendering of one profile divergence, the unit the
/// `profile-<library>.json` baselines are diffed by.
fn divergence_line(divergence: &ProfileDivergence) -> String {
    let cases = |cases: &[lfi_profiler::ErrorCase]| {
        cases
            .iter()
            .map(|c| {
                format!(
                    "{}/{}",
                    c.retval,
                    c.errno.map(|e| e.to_string()).unwrap_or_else(|| "-".into())
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    match divergence {
        ProfileDivergence::OnlyInStatic { function } => format!("only-in-static {function}"),
        ProfileDivergence::OnlyInProfiler { function } => {
            format!("only-in-profiler {function}")
        }
        ProfileDivergence::ErrorCasesDiffer {
            function,
            missing_in_profiler,
            missing_in_static,
        } => format!(
            "error-cases-differ {function} missing-in-profiler=[{}] missing-in-static=[{}]",
            cases(missing_in_profiler),
            cases(missing_in_static),
        ),
        ProfileDivergence::DynamicFlagDiffers {
            function,
            static_value,
            profiler_value,
        } => format!(
            "dynamic-flag-differs {function} static={static_value} profiler={profiler_value}"
        ),
    }
}

/// The divergence document of one library module.
fn divergence_doc(library: &str, lines: &[String]) -> Value {
    Value::Obj(vec![
        ("library".into(), Value::Str(library.to_string())),
        (
            "divergences".into(),
            Value::Arr(lines.iter().map(|l| Value::Str(l.clone())).collect()),
        ),
    ])
}

fn divergence_lines_of_doc(doc: &Value) -> Option<Vec<String>> {
    Some(
        doc.get("divergences")?
            .as_arr()?
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect(),
    )
}

fn read_baseline(dir: &str, file: &str) -> Value {
    let path = format!("{dir}/{file}");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        eprintln!(
            "lfi_analyze: missing baseline {path}: {err}\n\
             (new targets must be gated deliberately — generate it with --out)"
        );
        exit(1);
    });
    lfi_json::parse(&text).unwrap_or_else(|err| {
        eprintln!("lfi_analyze: malformed baseline {path}: {}", err.message);
        exit(1);
    })
}

fn main() {
    let mut format = "text".to_string();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => format = args.next().unwrap_or_else(|| usage()),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--check" => check = Some(args.next().unwrap_or_else(|| usage())),
            "--target" => selected.push(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if format != "text" && format != "json" {
        usage();
    }
    if let Some(dir) = &out {
        std::fs::create_dir_all(dir).unwrap_or_else(|err| {
            eprintln!("lfi_analyze: create {dir}: {err}");
            exit(1);
        });
    }

    let controller = standard_controller();
    let mut regressions = 0usize;

    // Per-target propagation findings — the five executables plus the
    // libxml-lite shared library, which imports libc itself.
    let mut analyzed = all_targets();
    analyzed.push(("libxml-lite", libxml_lite()));
    for (name, exe) in analyzed {
        if !selected.is_empty() && !selected.iter().any(|t| t == name) {
            continue;
        }
        let reports = controller.analyze(&exe);
        let propagation = controller.analyze_propagation(&exe, &reports);
        let findings = TargetFindings::collect(name, &reports, &propagation);
        let doc = findings.to_json();
        match format.as_str() {
            "json" => println!("{doc}"),
            _ => {
                let unhandled: Vec<_> = findings.unhandled().collect();
                println!(
                    "{name}: {} sites, {} unhandled",
                    findings.sites.len(),
                    unhandled.len()
                );
                for site in unhandled {
                    println!(
                        "  {}:{} call to {} [{}]{}",
                        site.caller.as_deref().unwrap_or("?"),
                        site.ordinal,
                        site.function,
                        verdict_str(site.verdict),
                        if site.low_confidence {
                            " (low confidence)"
                        } else {
                            ""
                        },
                    );
                }
            }
        }
        if let Some(dir) = &out {
            let path = format!("{dir}/{name}.json");
            std::fs::write(&path, &doc).unwrap_or_else(|err| {
                eprintln!("lfi_analyze: write {path}: {err}");
                exit(1);
            });
            eprintln!("wrote {path}");
        }
        if let Some(dir) = &check {
            let path = format!("{dir}/{name}.json");
            let text = std::fs::read_to_string(&path).unwrap_or_else(|err| {
                eprintln!(
                    "lfi_analyze: missing baseline {path}: {err}\n\
                     (new targets must be gated deliberately — generate it with --out)"
                );
                exit(1);
            });
            let baseline = TargetFindings::from_json(&text).unwrap_or_else(|err| {
                eprintln!("lfi_analyze: malformed baseline {path}: {}", err.message);
                exit(1);
            });
            for regression in diff_findings(&baseline, &findings) {
                eprintln!("REGRESSION {name}: {regression}");
                regressions += 1;
            }
        }
    }

    // Library profile cross-checks (always over every registered library —
    // the divergence set is a property of the libraries, not the targets).
    if selected.is_empty() {
        for library in controller.libraries() {
            let static_profile = static_profile_library(library);
            // Each library is checked against its own runtime profile —
            // the merged profile would report every other library's
            // functions as spurious divergences.
            let runtime = lfi_profiler::profile_library(library);
            let lines: Vec<String> = cross_check(&static_profile, &runtime)
                .iter()
                .map(divergence_line)
                .collect();
            let doc = divergence_doc(&library.name, &lines);
            match format.as_str() {
                "json" => println!("{}", doc.to_pretty()),
                _ => {
                    println!(
                        "profile-{}: {} divergences vs runtime profiler",
                        library.name,
                        lines.len()
                    );
                    for line in &lines {
                        println!("  {line}");
                    }
                }
            }
            if let Some(dir) = &out {
                let path = format!("{dir}/profile-{}.json", library.name);
                std::fs::write(&path, doc.to_pretty()).unwrap_or_else(|err| {
                    eprintln!("lfi_analyze: write {path}: {err}");
                    exit(1);
                });
                eprintln!("wrote {path}");
            }
            if let Some(dir) = &check {
                let baseline_doc = read_baseline(dir, &format!("profile-{}.json", library.name));
                let known: BTreeSet<String> = divergence_lines_of_doc(&baseline_doc)
                    .unwrap_or_else(|| {
                        eprintln!(
                            "lfi_analyze: baseline profile-{}.json has no divergences array",
                            library.name
                        );
                        exit(1);
                    })
                    .into_iter()
                    .collect();
                for line in &lines {
                    if !known.contains(line) {
                        eprintln!(
                            "REGRESSION profile-{}: new divergence: {line}",
                            library.name
                        );
                        regressions += 1;
                    }
                }
            }
        }
    }

    if regressions > 0 {
        eprintln!("lfi_analyze: {regressions} regression(s) against baselines");
        exit(1);
    }
    if check.is_some() {
        println!("lfi_analyze: no regressions against baselines");
    }
}
