//! Regenerate one experiment of the evaluation (see lfi-bench::experiments).
//!
//! Usage: table4_accuracy [--out FILE.json]
//!
//! `--out` additionally writes the table (rows, per-class
//! precision/recall/F1, pooled rollup) as a machine-readable JSON document
//! — the `BENCH_table4.json` artifact CI archives.

use std::process::exit;

fn main() {
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => {
                    eprintln!("usage: table4_accuracy [--out FILE.json]");
                    exit(2);
                }
            },
            _ => {
                eprintln!("usage: table4_accuracy [--out FILE.json]");
                exit(2);
            }
        }
    }
    let table = lfi_bench::table4_accuracy();
    println!("{table}");
    if let Some(path) = out {
        if let Err(err) = std::fs::write(&path, table.to_json().to_pretty()) {
            eprintln!("table4_accuracy: write {path}: {err}");
            exit(1);
        }
        eprintln!("wrote {path}");
    }
}
