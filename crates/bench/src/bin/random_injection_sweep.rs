//! Random-injection sweep (§7.1).

fn main() {
    let runs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    println!("{}", lfi_bench::random_injection_sweep(runs));
}
