//! Merged live status of one or more campaign shards, tailing their JSONL
//! event streams (written by `table1_bugs --events-jsonl` or any
//! [`lfi_campaign::JsonlSink`]).
//!
//! Usage: campaign_status [--once] [--interval MS] EVENTS.jsonl [...]
//!
//! Each positional argument is one shard's event stream. The tool keeps a
//! byte offset per file, parses every newly completed line as a
//! [`lfi_campaign::CampaignEvent`], and renders one status line per shard
//! plus a merged total: batch progress, units/sec, distinct crash
//! signatures (deduplicated *across* shards), and the snapshot-tree cache
//! hit rate from the latest heartbeat metrics. A line that fails to parse
//! is a protocol error and exits non-zero — the streams are a versioned
//! wire format, not best-effort logs.
//!
//! Tailing rides [`lfi_telemetry::JsonlTail`], so a producer that
//! truncates or rotates its stream file does not stall the view: the
//! tail resets to the new beginning, the shard's rolling counters are
//! rebuilt from the fresh stream, and the rotation is counted as a
//! `stream_reset` note in the merged total.
//!
//! `--once` renders the current state of the streams and exits (CI mode);
//! without it the tool polls every `--interval` milliseconds (default 500)
//! until every stream has reported
//! [`ShardFinished`](lfi_campaign::CampaignEvent::ShardFinished).

use std::collections::BTreeSet;
use std::process::exit;
use std::time::Duration;

use lfi_campaign::{CampaignEvent, MetricsSnapshot};
use lfi_telemetry::JsonlTail;

fn usage() -> ! {
    eprintln!("usage: campaign_status [--once] [--interval MS] EVENTS.jsonl [...]");
    exit(2);
}

/// Rolling view of one shard's stream.
struct ShardStream {
    path: String,
    /// Truncation-tolerant byte-offset tail over the stream file.
    tail: JsonlTail,
    /// Shard label from the stream itself (heartbeat / shard_finished);
    /// the file name until one arrives.
    label: Option<String>,
    batches: usize,
    units_planned: usize,
    units_done: usize,
    finished_units: usize,
    milli_units_per_sec: u64,
    /// Distinct crash signature keys announced by this shard.
    signatures: BTreeSet<String>,
    /// Latest heartbeat metrics capture.
    metrics: Option<MetricsSnapshot>,
    notes: usize,
    /// Stream truncations/rotations observed; each counts as one
    /// `stream_reset` note in the merged total.
    stream_resets: usize,
    finished: bool,
}

impl ShardStream {
    fn new(path: String) -> ShardStream {
        ShardStream {
            tail: JsonlTail::new(&path),
            path,
            label: None,
            batches: 0,
            units_planned: 0,
            units_done: 0,
            finished_units: 0,
            milli_units_per_sec: 0,
            signatures: BTreeSet::new(),
            metrics: None,
            notes: 0,
            stream_resets: 0,
            finished: false,
        }
    }

    /// Read and apply every line completed since the last poll. A missing
    /// file is "no events yet" (the shard may not have started); a line
    /// that does not parse is fatal. A file that *shrank* was rotated by
    /// its producer: the tail restarts from the top and the rolling
    /// counters are rebuilt from the fresh stream.
    fn poll(&mut self) {
        let poll = match self.tail.poll() {
            Ok(poll) => poll,
            Err(err) => {
                eprintln!("campaign_status: read {}: {err}", self.path);
                exit(1);
            }
        };
        if poll.reset {
            self.reset_view();
        }
        for line in &poll.lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let event = CampaignEvent::from_json_line(line).unwrap_or_else(|err| {
                eprintln!(
                    "campaign_status: {}: malformed event line: {} ({line})",
                    self.path, err.message
                );
                exit(1);
            });
            self.apply(&event);
        }
    }

    /// Discards every counter derived from the previous file incarnation;
    /// the new stream replays its own BatchPlanned/Heartbeat history.
    fn reset_view(&mut self) {
        self.batches = 0;
        self.units_planned = 0;
        self.units_done = 0;
        self.finished_units = 0;
        self.milli_units_per_sec = 0;
        self.signatures.clear();
        self.metrics = None;
        self.notes = 0;
        self.finished = false;
        self.stream_resets += 1;
    }

    fn apply(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::BatchPlanned { pending, .. } => {
                self.batches += 1;
                self.units_planned += pending;
            }
            CampaignEvent::UnitStarted { .. } => {}
            CampaignEvent::UnitFinished { .. } => {
                self.finished_units += 1;
                self.units_done = self.units_done.max(self.finished_units);
            }
            CampaignEvent::CrashFound(signature) => {
                self.signatures.insert(format!(
                    "{}:{}:{}+{:#x}:{}",
                    signature.target,
                    signature.function,
                    signature.module,
                    signature.offset,
                    signature.frame.as_deref().unwrap_or("?"),
                ));
            }
            CampaignEvent::CheckpointWritten { .. } => {}
            CampaignEvent::Heartbeat {
                shard,
                units_done,
                units_planned,
                milli_units_per_sec,
                metrics,
            } => {
                self.label = Some(shard.to_string());
                self.units_done = self.units_done.max(*units_done);
                self.units_planned = self.units_planned.max(*units_planned);
                self.milli_units_per_sec = *milli_units_per_sec;
                self.metrics = Some(metrics.clone());
            }
            CampaignEvent::Note { .. } => self.notes += 1,
            CampaignEvent::ShardFinished {
                shard, executed, ..
            } => {
                self.label = Some(shard.to_string());
                self.units_done = self.units_done.max(*executed);
                self.finished = true;
            }
        }
    }

    fn label(&self) -> &str {
        self.label.as_deref().unwrap_or(&self.path)
    }
}

/// Cache hit rate in percent from a merged metrics snapshot, if the
/// executor reported fork counters.
fn cache_hit_rate(metrics: &MetricsSnapshot) -> Option<f64> {
    let hits = metrics.counter("tree_fork_hits");
    let total = hits + metrics.counter("tree_fork_misses");
    (total > 0).then(|| hits as f64 * 100.0 / total as f64)
}

/// Static-prune effectiveness from a merged metrics snapshot: demoted
/// sites over sites analyzed, if the executor ran the analysis phase.
fn prune_rate(metrics: &MetricsSnapshot) -> Option<(u64, u64)> {
    let total = metrics.counter("analysis_sites_total");
    (total > 0).then(|| (metrics.counter("analysis_sites_pruned"), total))
}

fn render(streams: &[ShardStream]) {
    let mut merged_signatures: BTreeSet<&String> = BTreeSet::new();
    let mut merged_metrics = MetricsSnapshot::default();
    let mut total_done = 0;
    let mut total_planned = 0;
    let mut total_milli_rate = 0u64;
    let mut total_notes = 0;
    for stream in streams {
        let state = if stream.finished {
            "finished"
        } else {
            "running"
        };
        let percent = (stream.units_done * 100)
            .checked_div(stream.units_planned)
            .unwrap_or(0);
        println!(
            "shard {:<12} batch {:<3} units {:>4}/{:<4} ({percent:>3}%)  \
             {:>8.3} units/sec  {} signatures  [{state}]",
            stream.label(),
            stream.batches,
            stream.units_done,
            stream.units_planned,
            stream.milli_units_per_sec as f64 / 1000.0,
            stream.signatures.len(),
        );
        merged_signatures.extend(&stream.signatures);
        if let Some(metrics) = &stream.metrics {
            merged_metrics.merge(metrics);
        }
        total_done += stream.units_done;
        total_planned += stream.units_planned;
        if !stream.finished {
            total_milli_rate += stream.milli_units_per_sec;
        }
        // A rotation is surfaced as a synthetic `stream_reset` note so
        // truncated streams are visible in the merged total, not silent.
        total_notes += stream.notes + stream.stream_resets;
    }
    let cache = cache_hit_rate(&merged_metrics)
        .map(|rate| {
            // Shared-deepening health next to the hit rate: how often a
            // worker parked on another's in-flight deepening run, and how
            // many tree nodes batch prefetch materialized ahead of demand.
            let waited = merged_metrics.counter("tree_deepen_waited");
            let prefetched = merged_metrics.counter("tree_prefetch_nodes");
            format!("{rate:.1}% cache hit rate ({waited} waited, {prefetched} prefetched)")
        })
        .unwrap_or_else(|| "cache hit rate n/a".to_string());
    let prune = prune_rate(&merged_metrics)
        .map(|(pruned, total)| format!("{pruned}/{total} sites statically pruned"))
        .unwrap_or_else(|| "static prune n/a".to_string());
    println!(
        "total {:>2} shards  units {total_done}/{total_planned}  \
         {:>8.3} units/sec  {} distinct signatures  {cache}  {prune}  {total_notes} notes",
        streams.len(),
        total_milli_rate as f64 / 1000.0,
        merged_signatures.len(),
    );
}

fn main() {
    let mut once = false;
    let mut interval = Duration::from_millis(500);
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval" => {
                let millis: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                interval = Duration::from_millis(millis);
            }
            flag if flag.starts_with("--") => usage(),
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        usage();
    }
    let mut streams: Vec<ShardStream> = paths.into_iter().map(ShardStream::new).collect();
    loop {
        for stream in &mut streams {
            stream.poll();
        }
        render(&streams);
        if once || streams.iter().all(|s| s.finished) {
            break;
        }
        std::thread::sleep(interval);
        println!();
    }
}
