//! Regenerate the Table 1 bug hunt, run as a fault-space campaign.
//!
//! Usage: table1_bugs [--jobs N] [--strategy exhaustive|guided|adaptive|random]
//!                    [--sample N] [--backend fresh|snapshot]

use std::process::exit;

use lfi_bench::{table1_campaign, HuntOptions, HuntStrategy};
use lfi_campaign::ExecBackend;

fn usage() -> ! {
    eprintln!(
        "usage: table1_bugs [--jobs N] [--strategy exhaustive|guided|adaptive|random] \
         [--sample N] [--backend fresh|snapshot]"
    );
    exit(2);
}

fn main() {
    let mut options = HuntOptions::default();
    let mut sample = 50usize;
    let mut strategy_name = "exhaustive".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                options.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--strategy" => strategy_name = args.next().unwrap_or_else(|| usage()),
            "--sample" => {
                sample = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--backend" => {
                options.backend = args
                    .next()
                    .as_deref()
                    .and_then(ExecBackend::parse)
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    options.strategy = match strategy_name.as_str() {
        "exhaustive" => HuntStrategy::Exhaustive,
        "guided" => HuntStrategy::Guided,
        "adaptive" => HuntStrategy::Adaptive,
        "random" => HuntStrategy::Random { count: sample },
        _ => usage(),
    };

    let result = table1_campaign(&options);
    println!("{}", result.report);
    println!("{}", result.table);
}
