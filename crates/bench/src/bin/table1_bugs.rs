//! Regenerate the Table 1 bug hunt, run as a fault-space campaign —
//! whole, or as one mergeable shard of a multi-process hunt.
//!
//! Usage: table1_bugs [--jobs N] [--strategy exhaustive|guided|adaptive|random]
//!                    [--sample N] [--backend fresh|snapshot]
//!                    [--snapshot-budget BYTES] [--shard I/N] [--state FILE]
//!                    [--events-jsonl FILE]
//!        table1_bugs merge STATE.json STATE.json [...]
//!
//! `--shard I/N` runs only shard I of N (round-robin over fault points);
//! `--state FILE` checkpoints the campaign state there after every batch
//! and resumes from it when the file exists. A complete shard set is
//! recombined with the `merge` subcommand, whose output is identical to
//! the unsharded hunt's. `--events-jsonl FILE` streams every campaign
//! event to FILE as one JSON line each, flushed per event — point
//! `campaign_status` at the files of concurrent shards for a merged live
//! view of the hunt.

use std::process::exit;

use lfi_bench::{table1_campaign, table1_merge, HuntOptions, HuntStrategy};
use lfi_campaign::CampaignState;

fn usage() -> ! {
    eprintln!(
        "usage: table1_bugs [--jobs N] [--strategy exhaustive|guided|adaptive|random] \
         [--sample N] [--backend fresh|snapshot] [--snapshot-budget BYTES] \
         [--shard I/N] [--state FILE] [--events-jsonl FILE]\n\
         \x20      table1_bugs merge STATE.json STATE.json [...]"
    );
    exit(2);
}

/// Parse a flag value, printing the parse error before the usage text so
/// a typo like `--backend qemu` names the accepted values.
fn parse_or_usage<T>(value: Option<String>) -> T
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let value = value.unwrap_or_else(|| usage());
    value.parse().unwrap_or_else(|err| {
        eprintln!("table1_bugs: {err}");
        usage()
    })
}

/// `table1_bugs merge STATE.json...`: parse the persisted shard states and
/// recombine them into the unsharded hunt result.
fn merge_main(paths: &[String]) -> ! {
    if paths.is_empty() {
        usage();
    }
    let states: Vec<CampaignState> = paths
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
                eprintln!("table1_bugs: read {path}: {err}");
                exit(1);
            });
            CampaignState::from_json(&text).unwrap_or_else(|err| {
                eprintln!("table1_bugs: parse {path}: {}", err.message);
                exit(1);
            })
        })
        .collect();
    match table1_merge(&states) {
        Ok(merged) => {
            println!("merged {} shard states:", states.len());
            println!("{}", merged.report);
            println!("{}", merged.table);
            exit(0);
        }
        Err(err) => {
            eprintln!("table1_bugs: merge failed: {err}");
            exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("merge") {
        merge_main(&argv[1..]);
    }

    let mut options = HuntOptions::default();
    let mut sample = 50usize;
    let mut strategy_name = "exhaustive".to_string();
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                options.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--strategy" => strategy_name = args.next().unwrap_or_else(|| usage()),
            "--sample" => {
                sample = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--backend" => options.backend = parse_or_usage(args.next()),
            "--snapshot-budget" => {
                options.snapshot_budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--shard" => options.shard = parse_or_usage(args.next()),
            "--state" => options.state = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--events-jsonl" => {
                options.events_jsonl = Some(args.next().unwrap_or_else(|| usage()).into())
            }
            _ => usage(),
        }
    }
    options.strategy = match strategy_name.as_str() {
        "exhaustive" => HuntStrategy::Exhaustive,
        "guided" => HuntStrategy::Guided,
        "adaptive" => HuntStrategy::Adaptive,
        "random" => HuntStrategy::Random { count: sample },
        _ => usage(),
    };

    // Snapshot any pre-existing checkpoint so the resume message can be
    // honest: an existing file whose tag does not match this plan is
    // *discarded* by the engine, not resumed.
    let prior = options
        .state
        .as_deref()
        .filter(|path| path.exists())
        .map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
                eprintln!("table1_bugs: read {}: {err}", path.display());
                exit(1);
            });
            let state = CampaignState::from_json(&text).unwrap_or_else(|err| {
                eprintln!("table1_bugs: parse {}: {}", path.display(), err.message);
                exit(1);
            });
            (path.to_path_buf(), state)
        });
    let result = table1_campaign(&options);
    println!("{}", result.report);
    // Shared-deepening health line for CI: the claims table means no
    // deepening run is ever discarded, so `discarded=` must read 0.
    if let Some(metrics) = &result.report.metrics {
        println!(
            "tree deepen: discarded={} waited={} prefetched_nodes={}",
            metrics.counter("tree_deepen_discarded"),
            metrics.counter("tree_deepen_waited"),
            metrics.counter("tree_prefetch_nodes"),
        );
    }
    if let Some((path, prior_state)) = prior {
        if prior_state.tag() == result.tag && prior_state.seed() == options.seed {
            println!(
                "resumed from {}: {} units re-executed",
                path.display(),
                result.report.executed_now
            );
        } else {
            println!(
                "checkpoint {} was for a different plan (strategy, space, seed, or shard); \
                 discarded and started fresh",
                path.display()
            );
        }
    }
    if result.shard.is_full() {
        println!("{}", result.table);
    } else {
        // A lone shard sees only its slice of the space; known-bug
        // accounting is meaningful after `merge`.
        println!(
            "shard {}: {} records held{} — run the remaining shards and `table1_bugs merge` \
             the state files for the full Table 1",
            result.shard,
            result.report.records.len(),
            options
                .state
                .as_deref()
                .map(|p| format!(" in {}", p.display()))
                .unwrap_or_default(),
        );
    }
}
