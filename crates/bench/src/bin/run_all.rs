//! Regenerate every table and figure of the evaluation in one run.

use lfi_bench::*;

fn main() {
    println!("== LFI reproduction: full experiment run ==\n");
    println!("{}\n", table4_accuracy());
    println!("{}\n", analyzer_efficiency());
    println!("{}\n", table1_bugs());
    println!("{}\n", table2_precision());
    println!("{}\n", table3_coverage());
    println!("{}\n", table5_apache_overhead());
    println!("{}\n", table6_mysql_overhead());
    println!("{}\n", figure3_pbft_slowdown());
    println!("{}\n", dos_study());
    println!("{}\n", random_injection_sweep(200));
}
