//! Campaign throughput benchmark and backend-parity check, emitted as a
//! JSON artifact (`BENCH_campaign.json` in CI).
//!
//! Two sections:
//!
//! * **throughput** — the `campaign_throughput` workload (the git-lite
//!   fault-space sweep) drained at `--jobs` workers under the fresh-VM and
//!   snapshot-fork backends, reporting units/sec per lane and the snapshot
//!   speedup. This is the lane comparison the snapshot backend is sized
//!   by: the sweep is all single-process targets, so every unit forks.
//! * **depth** — units/sec as a function of *injection depth*: git-lite's
//!   functions are bucketed by the injectable-call index of their first
//!   call (measured from the workloads' call traces), and each bucket is
//!   swept under the flat single-snapshot session model
//!   (`max_session_depth = 1`, the pre-tree behavior) and the snapshot
//!   *tree* (deepening enabled). The deeper the bucket, the more prefix
//!   the tree amortizes; the lanes quantify it, reporting the best of
//!   three steady-state sweeps on warm sessions (preparation costs the
//!   two models identically and would only dilute the ratio).
//! * **table1** — the full Table 1 hunt under both backends: identical run
//!   records and crash signatures, and all 11 known bugs found by each.
//!   (The hunt's wall clock is dominated by bft-lite cluster runs, which
//!   cannot snapshot and always run fresh.)
//! * **telemetry** — the snapshot sweep with metrics collection on (the
//!   default registry) vs off (a no-op registry installed with
//!   [`StandardExecutor::set_telemetry`]), best of two runs each,
//!   reporting the collection overhead in percent.
//! * **supervisor** — the throughput sweep run through the distributed
//!   control plane: two supervised `campaign_worker` processes at
//!   `--jobs` each vs one in-process campaign at `2 × --jobs` (same
//!   total parallelism), identical records required. The ratio is the
//!   cost of supervision itself — process spawn, JSONL transport, lease
//!   checkpoints, merge. Skipped with a warning when the
//!   `campaign_worker` binary is not built next to `campaign_bench`.
//!
//! Instrumented lanes also report the snapshot-tree cache hit rate and
//! the per-phase time split (session prepare, tree fork/deepen/prefetch,
//! unit execute, triage, checkpoint writes) from the campaign's
//! [`lfi_campaign::MetricsSnapshot`]; the sweep lane's full snapshot is
//! written to `--metrics-out` as a second artifact.
//!
//! Exits non-zero if the backends disagree anywhere or a lane misses a
//! known bug.
//!
//! Usage: campaign_bench [--jobs N] [--out FILE] [--metrics-out FILE]

use std::collections::BTreeMap;
use std::process::exit;
use std::time::Instant;

use lfi_bench::{match_known_bugs, table1_fault_space};
use lfi_campaign::{
    default_test_suite, Campaign, CampaignReport, ExecBackend, FaultSpace, MetricsSnapshot,
    StandardExecutor, Telemetry,
};
use lfi_core::TestConfig;
use lfi_json::Value;
use lfi_supervisor::{run_supervised, sibling_worker_bin, SpaceSpec, SupervisorOptions};
use lfi_targets::{git_lite, standard_controller, FsSetupWorkload, KNOWN_BUGS};

const HUNT_TARGETS: [&str; 4] = ["bind-lite", "git-lite", "db-lite", "bft-lite"];

fn usage() -> ! {
    eprintln!("usage: campaign_bench [--jobs N] [--out FILE] [--metrics-out FILE]");
    exit(2);
}

struct Lane {
    backend: ExecBackend,
    seconds: f64,
    report: CampaignReport,
}

/// Run one space exhaustively under `backend` on a fresh executor (own
/// session cache, so lanes cannot profit from each other).
fn run_lane(
    make_executor: &dyn Fn() -> StandardExecutor,
    space: &FaultSpace,
    jobs: usize,
    backend: ExecBackend,
) -> Lane {
    let executor = make_executor();
    let driver = Campaign::builder(space.clone(), &executor)
        .jobs(jobs)
        .seed(7)
        .backend(backend)
        .build();
    let start = Instant::now();
    let report = driver.run_to_completion().report;
    Lane {
        backend,
        seconds: start.elapsed().as_secs_f64(),
        report,
    }
}

/// The snapshot-tree cache hit rate of an instrumented lane, as a
/// fraction string, or `Null` when the lane recorded no forks (fresh
/// backend, or telemetry off).
fn cache_hit_rate_json(metrics: Option<&MetricsSnapshot>) -> Value {
    let Some(metrics) = metrics else {
        return Value::Null;
    };
    let hits = metrics.counter("tree_fork_hits");
    let total = hits + metrics.counter("tree_fork_misses");
    if total == 0 {
        return Value::Null;
    }
    Value::Str(format!("{:.3}", hits as f64 / total as f64))
}

/// Total microseconds spent per instrumented phase (histogram sums).
fn phase_micros_json(metrics: &MetricsSnapshot) -> Value {
    let sum = |name: &str| Value::Int(metrics.histogram(name).map(|h| h.sum).unwrap_or(0) as i64);
    Value::Obj(vec![
        ("session_prepare".to_string(), sum("session_prepare_micros")),
        ("tree_fork".to_string(), sum("tree_fork_micros")),
        ("tree_deepen".to_string(), sum("tree_deepen_micros")),
        ("tree_prefetch".to_string(), sum("tree_prefetch_micros")),
        ("unit_execute".to_string(), sum("unit_execute_micros")),
        ("triage".to_string(), sum("triage_micros")),
        (
            "checkpoint_write".to_string(),
            sum("checkpoint_write_micros"),
        ),
    ])
}

fn lane_json(section: &str, jobs: usize, lane: &Lane) -> Value {
    let mut fields = vec![
        ("section".to_string(), Value::Str(section.to_string())),
        ("backend".to_string(), Value::Str(lane.backend.to_string())),
        ("jobs".to_string(), Value::Int(jobs as i64)),
        (
            "units".to_string(),
            Value::Int(lane.report.executed_now as i64),
        ),
        (
            "seconds".to_string(),
            Value::Str(format!("{:.3}", lane.seconds)),
        ),
        (
            "units_per_sec".to_string(),
            Value::Str(format!(
                "{:.1}",
                lane.report.executed_now as f64 / lane.seconds
            )),
        ),
        (
            "distinct_crash_signatures".to_string(),
            Value::Int(lane.report.triage.distinct_crashes() as i64),
        ),
        (
            "cache_hit_rate".to_string(),
            cache_hit_rate_json(lane.report.metrics.as_ref()),
        ),
    ];
    if let Some(metrics) = &lane.report.metrics {
        fields.push(("phase_micros".to_string(), phase_micros_json(metrics)));
    }
    Value::Obj(fields)
}

fn print_lane(section: &str, jobs: usize, lane: &Lane) {
    println!(
        "{section:<11} {:<9} jobs={jobs} units={} time={:.3}s throughput={:.1} units/sec",
        lane.backend,
        lane.report.executed_now,
        lane.seconds,
        lane.report.executed_now as f64 / lane.seconds,
    );
}

/// The minimum injectable-call depth of each library function's first call
/// across the git-lite suite, measured from full per-workload call traces.
/// Functions never called by the suite are absent.
fn git_min_depths() -> BTreeMap<String, usize> {
    let controller = standard_controller();
    let functions = controller.profile_libraries().failing_functions();
    let image = controller
        .build_image(&git_lite(), &functions)
        .expect("git-lite loads");
    let mut min_depth = BTreeMap::new();
    for args in default_test_suite("git-lite") {
        let config = TestConfig {
            args,
            ..TestConfig::default()
        };
        let prep = controller.trace_session_calls(
            image.clone(),
            &functions,
            &mut FsSetupWorkload,
            &config,
        );
        for (index, function) in prep.forwarded.iter().enumerate() {
            let depth = min_depth.entry(function.clone()).or_insert(usize::MAX);
            *depth = (*depth).min(index + 1);
        }
    }
    min_depth
}

fn main() {
    let mut jobs = 4usize;
    let mut out = "BENCH_campaign.json".to_string();
    let mut metrics_out = "BENCH_campaign_metrics.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--metrics-out" => metrics_out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    let mut failures: Vec<String> = Vec::new();

    // Throughput section: the campaign_throughput sweep (git-lite).
    let make_git = || StandardExecutor::new(&["git-lite"]);
    let git_space = {
        let executor = make_git();
        let profile = standard_controller().profile_libraries();
        let mut space = executor.fault_space(&["git-lite"], &profile);
        executor.annotate_baseline_reachability(&mut space, 7);
        space
    };
    let sweep_fresh = run_lane(&make_git, &git_space, jobs, ExecBackend::Fresh);
    let sweep_snapshot = run_lane(&make_git, &git_space, jobs, ExecBackend::Snapshot);
    let speedup = sweep_fresh.seconds / sweep_snapshot.seconds.max(f64::EPSILON);
    if sweep_fresh.report.records != sweep_snapshot.report.records {
        failures.push("throughput lanes produced different records".to_string());
    }
    // Shared-deepening invariant: the claims table means no worker's
    // deepening run is ever thrown away, at any worker count. A nonzero
    // discard counter is a regression in the claim protocol, not noise.
    let tree_counter = |name: &str| {
        sweep_snapshot
            .report
            .metrics
            .as_ref()
            .map(|metrics| metrics.counter(name))
            .unwrap_or(0)
    };
    let deepen_discarded = tree_counter("tree_deepen_discarded");
    let deepen_waited = tree_counter("tree_deepen_waited");
    let prefetch_nodes = tree_counter("tree_prefetch_nodes");
    if deepen_discarded != 0 {
        failures.push(format!(
            "sweep discarded {deepen_discarded} deepening runs (claims table must make this 0)"
        ));
    }

    // Telemetry section: the same snapshot sweep with collection on (the
    // executor's default registry) vs off (a no-op registry). Best of two
    // runs per lane to dampen scheduler noise; the delta is the cost of
    // the instrumentation itself.
    let make_git_quiet = || {
        let mut executor = StandardExecutor::new(&["git-lite"]);
        executor.set_telemetry(Telemetry::disabled());
        executor
    };
    let best_of_two = |make: &dyn Fn() -> StandardExecutor| {
        let first = run_lane(make, &git_space, jobs, ExecBackend::Snapshot);
        let second = run_lane(make, &git_space, jobs, ExecBackend::Snapshot);
        if first.seconds <= second.seconds {
            first
        } else {
            second
        }
    };
    let telemetry_on = best_of_two(&make_git);
    let telemetry_off = best_of_two(&make_git_quiet);
    if telemetry_on.report.records != telemetry_off.report.records {
        failures.push("telemetry lanes produced different records".to_string());
    }
    let telemetry_overhead_pct = (telemetry_on.seconds - telemetry_off.seconds)
        / telemetry_off.seconds.max(f64::EPSILON)
        * 100.0;

    // Depth section: flat-session vs snapshot-tree throughput per
    // injection-depth bucket of the git-lite space.
    let make_flat = || {
        let mut executor = StandardExecutor::new(&["git-lite"]);
        executor.set_max_session_depth(1);
        executor
    };
    let depths = git_min_depths();
    let bucket_functions = |lo: usize, hi: usize| -> Vec<String> {
        depths
            .iter()
            .filter(|(_, depth)| (lo..=hi).contains(depth))
            .map(|(function, _)| function.clone())
            .collect()
    };
    let buckets = [
        ("depth 1", bucket_functions(1, 1)),
        ("depth 2-3", bucket_functions(2, 3)),
        ("depth 4+", bucket_functions(4, usize::MAX)),
    ];
    let mut depth_lanes = Vec::new();
    let mut depth_speedups: Vec<(String, f64)> = Vec::new();
    for (label, functions) in &buckets {
        if functions.is_empty() {
            eprintln!("warning: no git-lite functions in bucket {label}; lane skipped");
            continue;
        }
        let mut space = git_space.clone();
        space.retain(|p| functions.contains(&p.function));
        // The lanes quantify fork-vs-replay, not one-time session
        // preparation (identical under both models), and each bucket
        // drains in tens of milliseconds where scheduler noise dominates a
        // single run. So each lane keeps one executor, runs the sweep once
        // untimed to prepare sessions (and, under the tree model, deepen),
        // then reports the best of three steady-state sweeps — every run
        // still re-executes all units and re-verifies record parity.
        let steady_lane = |make: &dyn Fn() -> StandardExecutor| {
            let executor = make();
            let sweep = || {
                let driver = Campaign::builder(space.clone(), &executor)
                    .jobs(jobs)
                    .seed(7)
                    .backend(ExecBackend::Snapshot)
                    .build();
                let start = Instant::now();
                let report = driver.run_to_completion().report;
                Lane {
                    backend: ExecBackend::Snapshot,
                    seconds: start.elapsed().as_secs_f64(),
                    report,
                }
            };
            let warmup = sweep();
            let best = (0..3)
                .map(|_| sweep())
                .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
                .expect("three runs");
            assert_eq!(
                warmup.report.records, best.report.records,
                "warm sessions must not change records"
            );
            best
        };
        let flat = steady_lane(&make_flat);
        let tree = steady_lane(&make_git);
        if flat.report.records != tree.report.records {
            failures.push(format!(
                "{label} lanes produced different records (flat vs tree sessions)"
            ));
        }
        depth_speedups.push((
            label.to_string(),
            flat.seconds / tree.seconds.max(f64::EPSILON),
        ));
        depth_lanes.push((format!("{label} flat"), flat));
        depth_lanes.push((format!("{label} tree"), tree));
    }

    // Table 1 section: the full hunt, both backends.
    let make_hunt = || StandardExecutor::new(&HUNT_TARGETS);
    let hunt_space = table1_fault_space(&make_hunt(), 7);
    let hunt_fresh = run_lane(&make_hunt, &hunt_space, jobs, ExecBackend::Fresh);
    let hunt_snapshot = run_lane(&make_hunt, &hunt_space, jobs, ExecBackend::Snapshot);
    if hunt_fresh.report.records != hunt_snapshot.report.records {
        failures.push("table1 lanes produced different run records".to_string());
    }
    if hunt_fresh.report.triage.buckets != hunt_snapshot.report.triage.buckets {
        failures.push("table1 lanes produced different crash signatures".to_string());
    }
    let mut bugs_found = Vec::new();
    for lane in [&hunt_fresh, &hunt_snapshot] {
        let table = match_known_bugs(&lane.report);
        if table.found.len() != KNOWN_BUGS.len() {
            failures.push(format!(
                "table1 {} lane found {}/{} known bugs (missed: {:?})",
                lane.backend,
                table.found.len(),
                KNOWN_BUGS.len(),
                table.missed
            ));
        }
        bugs_found.push((lane.backend.to_string(), table.found.len()));
    }

    // Supervisor section: the distributed control plane vs one big
    // in-process campaign over the same git-lite sweep. Two workers at
    // `jobs` each against one process at `2 * jobs` — equal total
    // parallelism, so the lane ratio isolates the supervision overhead.
    let mut supervisor_lanes: Vec<(String, Lane)> = Vec::new();
    let mut supervisor_speedup: Option<f64> = None;
    if let Some(worker_bin) = sibling_worker_bin() {
        let single = run_lane(&make_git, &git_space, 2 * jobs, ExecBackend::Fresh);
        let state_dir =
            std::env::temp_dir().join(format!("lfi_bench_supervisor_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state_dir);
        // No retain: this must be the exact plan `git_space` enumerates,
        // or the record-parity check below is vacuous.
        let spec = SpaceSpec {
            targets: vec!["git-lite".to_string()],
            retain: Vec::new(),
            baseline_seed: 7,
        };
        let mut options = SupervisorOptions::new(spec, &state_dir);
        options.workers = 2;
        options.jobs = jobs;
        options.seed = 7;
        options.worker_bin = worker_bin;
        let start = Instant::now();
        match run_supervised(&options) {
            Err(err) => failures.push(format!("supervised sweep failed: {err}")),
            Ok(outcome) => {
                let seconds = start.elapsed().as_secs_f64();
                if outcome.report.records != single.report.records {
                    failures.push(
                        "supervised sweep produced different records than the single process"
                            .to_string(),
                    );
                }
                // The merge reconstructs the report from checkpoints, so
                // `executed_now` is not meaningful there; for lane
                // throughput every record was executed this run.
                let mut report = outcome.report;
                report.executed_now = report.records.len();
                let supervised = Lane {
                    backend: ExecBackend::Fresh,
                    seconds,
                    report,
                };
                supervisor_speedup = Some(single.seconds / supervised.seconds.max(f64::EPSILON));
                supervisor_lanes.push(("supervised".to_string(), supervised));
                supervisor_lanes.push(("single-proc".to_string(), single));
            }
        }
        let _ = std::fs::remove_dir_all(&state_dir);
    } else {
        eprintln!(
            "warning: campaign_worker binary not found next to campaign_bench; \
             supervisor lane skipped"
        );
    }

    let mut lanes = vec![
        lane_json("throughput", jobs, &sweep_fresh),
        lane_json("throughput", jobs, &sweep_snapshot),
    ];
    for (label, lane) in &depth_lanes {
        lanes.push(lane_json(label, jobs, lane));
    }
    lanes.push(lane_json("telemetry on", jobs, &telemetry_on));
    lanes.push(lane_json("telemetry off", jobs, &telemetry_off));
    lanes.push(lane_json("table1", jobs, &hunt_fresh));
    lanes.push(lane_json("table1", jobs, &hunt_snapshot));
    for (label, lane) in &supervisor_lanes {
        lanes.push(lane_json(label, 2 * jobs, lane));
    }
    let doc = Value::Obj(vec![
        (
            "benchmark".to_string(),
            Value::Str("campaign_throughput".to_string()),
        ),
        ("lanes".to_string(), Value::Arr(lanes)),
        (
            "snapshot_speedup".to_string(),
            Value::Str(format!("{speedup:.2}")),
        ),
        (
            "supervisor_speedup".to_string(),
            supervisor_speedup
                .map(|ratio| Value::Str(format!("{ratio:.2}")))
                .unwrap_or(Value::Null),
        ),
        (
            "telemetry_overhead_pct".to_string(),
            Value::Str(format!("{telemetry_overhead_pct:.1}")),
        ),
        (
            "tree_speedup_by_depth".to_string(),
            Value::Obj(
                depth_speedups
                    .iter()
                    .map(|(label, speedup)| (label.clone(), Value::Str(format!("{speedup:.2}"))))
                    .collect(),
            ),
        ),
        (
            "known_bugs".to_string(),
            Value::Obj(
                bugs_found
                    .iter()
                    .map(|(name, found)| (name.to_string(), Value::Int(*found as i64)))
                    .collect(),
            ),
        ),
        (
            "tree_deepen".to_string(),
            Value::Obj(vec![
                ("discarded".to_string(), Value::Int(deepen_discarded as i64)),
                ("waited".to_string(), Value::Int(deepen_waited as i64)),
                (
                    "prefetched_nodes".to_string(),
                    Value::Int(prefetch_nodes as i64),
                ),
            ]),
        ),
        ("parity".to_string(), Value::Bool(failures.is_empty())),
    ]);
    std::fs::write(&out, doc.to_pretty()).expect("write benchmark artifact");
    // Full metrics capture of the instrumented sweep lane, as its own
    // artifact (CI uploads it next to the lane summary).
    let metrics_doc = telemetry_on
        .report
        .metrics
        .as_ref()
        .map(|metrics| metrics.to_value().to_pretty())
        .unwrap_or_else(|| "{}".to_string());
    std::fs::write(&metrics_out, metrics_doc).expect("write metrics artifact");

    print_lane("throughput", jobs, &sweep_fresh);
    print_lane("throughput", jobs, &sweep_snapshot);
    for (label, lane) in &depth_lanes {
        print_lane(label, jobs, lane);
    }
    for (label, tree_speedup) in &depth_speedups {
        println!("tree speedup over flat sessions at {label}: {tree_speedup:.2}x");
    }
    print_lane("table1", jobs, &hunt_fresh);
    print_lane("table1", jobs, &hunt_snapshot);
    for (name, found) in &bugs_found {
        println!(
            "table1 {name} backend: {found}/{} known bugs",
            KNOWN_BUGS.len()
        );
    }
    print_lane("telemetry on", jobs, &telemetry_on);
    print_lane("telemetry off", jobs, &telemetry_off);
    for (label, lane) in &supervisor_lanes {
        print_lane(label, 2 * jobs, lane);
    }
    if let Some(ratio) = supervisor_speedup {
        println!(
            "supervised (2 workers x {jobs} jobs) vs single process ({} jobs): {ratio:.2}x",
            2 * jobs
        );
    }
    println!("telemetry collection overhead: {telemetry_overhead_pct:.1}% (budget: 5%)");
    println!("snapshot speedup (throughput sweep): {speedup:.2}x (artifact: {out})");
    println!(
        "tree deepen: discarded={deepen_discarded} waited={deepen_waited} \
         prefetched_nodes={prefetch_nodes}"
    );
    println!("metrics snapshot artifact: {metrics_out}");

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        exit(1);
    }
    println!("parity: identical records and crash signatures across backends");
}
