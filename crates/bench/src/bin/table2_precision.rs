//! Regenerate one experiment of the evaluation (see lfi-bench::experiments).

fn main() {
    println!("{}", lfi_bench::table2_precision());
}
