//! Shared plumbing for the experiment harnesses.

use lfi_core::{Controller, Scenario, TestConfig, TestReport, Workload};
use lfi_obj::Module;
use lfi_profiler::FaultProfile;

/// The per-target workloads that constitute each system's "default test
/// suite" in the reproduction (program arguments per run). Canonically
/// defined alongside the campaign executor; re-exported here for the
/// experiment harnesses.
pub fn default_test_suite(target: &str) -> Vec<Vec<String>> {
    lfi_campaign::default_test_suite(target)
}

/// Run one workload of a target under a scenario, wiring up the right
/// workload type (bind-lite needs the networked client workload).
/// Canonically defined alongside the campaign executor.
pub fn run_target(
    target: &str,
    exe: &Module,
    scenario: &Scenario,
    args: Vec<String>,
    record_coverage: bool,
    seed: u64,
) -> TestReport {
    lfi_campaign::run_target(target, exe, scenario, args, record_coverage, seed)
}

/// Run a target with a custom workload object on a pre-built controller.
pub fn run_with_controller(
    controller: &Controller,
    exe: &Module,
    scenario: &Scenario,
    workload: &mut dyn Workload,
    config: &TestConfig,
) -> TestReport {
    controller
        .run_test(exe, scenario, workload, config)
        .expect("test run")
}

/// Build a one-site injection scenario: a call-stack trigger pinned to the
/// given call-site offset of the target binary, injecting the profile's
/// representative error for `function`.
pub fn single_site_scenario(
    program: &str,
    function: &str,
    offset: u64,
    profile: &FaultProfile,
) -> Scenario {
    let case = profile
        .function(function)
        .and_then(|f| f.representative_case())
        .unwrap_or(lfi_profiler::ErrorCase {
            retval: -1,
            errno: Some(lfi_arch::errno::EIO),
        });
    Scenario::single_fault_point(program, function, offset, case.retval, case.errno)
}

/// Every (function, call-site offset) pair of the listed functions in a
/// binary, regardless of whether the site checks its error return. Used to
/// exercise recovery code behind *checked* call sites (Table 3, and the
/// recovery-code bugs of Table 1 such as BIND's dst_lib_init).
pub fn all_sites(exe: &Module, functions: &[String]) -> Vec<(String, u64)> {
    let mut sites = Vec::new();
    for function in functions {
        for offset in exe.call_sites_of(function) {
            sites.push((function.clone(), offset));
        }
    }
    sites
}

/// Format a ratio as a percentage string with one decimal.
pub fn pct(num: f64, den: f64) -> String {
    if den == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * num / den)
    }
}
