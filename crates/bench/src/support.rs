//! Shared plumbing for the experiment harnesses.

use std::collections::BTreeMap;

use lfi_core::{
    Controller, FrameSpec, FunctionAssoc, Scenario, TestConfig, TestReport, TriggerDecl, Workload,
};
use lfi_obj::Module;
use lfi_profiler::FaultProfile;
use lfi_targets::{standard_controller, BindWorkload, FsSetupWorkload};
use lfi_vm::NetHandle;

/// The per-target workloads that constitute each system's "default test
/// suite" in the reproduction (program arguments per run).
pub fn default_test_suite(target: &str) -> Vec<Vec<String>> {
    match target {
        "git-lite" => vec![
            vec!["init".into()],
            vec!["add".into(), "/repo/README.md".into()],
            vec!["add".into(), "/repo/main.c".into()],
            vec!["commit".into(), "initial".into()],
            vec!["log".into()],
            vec!["diff".into(), "3".into(), "4".into()],
            vec!["check-head".into()],
        ],
        "db-lite" => vec![
            vec!["bootstrap".into()],
            vec!["oltp".into(), "30".into(), "1".into()],
            vec!["oltp".into(), "30".into(), "0".into()],
            vec!["merge-big".into(), "2".into()],
        ],
        "bind-lite" => vec![vec!["4".into()]],
        "httpd-lite" => vec![vec!["50".into(), "1".into()], vec!["50".into(), "2".into()]],
        other => panic!("no default test suite for {other}"),
    }
}

/// Run one workload of a target under a scenario, wiring up the right
/// workload type (bind-lite needs the networked client workload).
pub fn run_target(
    target: &str,
    exe: &Module,
    scenario: &Scenario,
    args: Vec<String>,
    record_coverage: bool,
    seed: u64,
) -> TestReport {
    let config = TestConfig {
        args,
        record_coverage,
        seed,
        ..TestConfig::default()
    };
    if target == "bind-lite" {
        let net = NetHandle::default();
        let controller = lfi_targets::networked_controller(net.clone());
        let mut workload = BindWorkload::typical(net);
        let config = TestConfig {
            args: vec![workload.request_count().to_string()],
            record_coverage,
            seed,
            ..TestConfig::default()
        };
        controller
            .run_test(exe, scenario, &mut workload, &config)
            .expect("bind-lite run")
    } else {
        let controller = standard_controller();
        controller
            .run_test(exe, scenario, &mut FsSetupWorkload, &config)
            .expect("target run")
    }
}

/// Run a target with a custom workload object on a pre-built controller.
pub fn run_with_controller(
    controller: &Controller,
    exe: &Module,
    scenario: &Scenario,
    workload: &mut dyn Workload,
    config: &TestConfig,
) -> TestReport {
    controller
        .run_test(exe, scenario, workload, config)
        .expect("test run")
}

/// Build a one-site injection scenario: a call-stack trigger pinned to the
/// given call-site offset of the target binary, injecting the profile's
/// representative error for `function`.
pub fn single_site_scenario(
    program: &str,
    function: &str,
    offset: u64,
    profile: &FaultProfile,
) -> Scenario {
    let case = profile
        .function(function)
        .and_then(|f| f.representative_case())
        .unwrap_or(lfi_profiler::ErrorCase {
            retval: -1,
            errno: Some(lfi_arch::errno::EIO),
        });
    let id = format!("{function}_{offset:x}");
    Scenario::new()
        .with_trigger(TriggerDecl {
            id: id.clone(),
            class: "CallStackTrigger".into(),
            params: BTreeMap::new(),
            frames: vec![FrameSpec {
                module: Some(program.to_string()),
                offset: Some(offset),
                ..FrameSpec::default()
            }],
        })
        .with_function(FunctionAssoc {
            function: function.to_string(),
            argc: 3,
            retval: Some(case.retval),
            errno: case.errno,
            triggers: vec![id],
        })
}

/// Every (function, call-site offset) pair of the listed functions in a
/// binary, regardless of whether the site checks its error return. Used to
/// exercise recovery code behind *checked* call sites (Table 3, and the
/// recovery-code bugs of Table 1 such as BIND's dst_lib_init).
pub fn all_sites(exe: &Module, functions: &[String]) -> Vec<(String, u64)> {
    let mut sites = Vec::new();
    for function in functions {
        for offset in exe.call_sites_of(function) {
            sites.push((function.clone(), offset));
        }
    }
    sites
}

/// Format a ratio as a percentage string with one decimal.
pub fn pct(num: f64, den: f64) -> String {
    if den == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * num / den)
    }
}
