//! The Table 1 bug hunt, rewired as a fault-space exploration campaign.
//!
//! The hand-rolled loop that used to live in `experiments::table1_bugs` is
//! now a thin layer over `lfi_campaign`: enumerate the fault space of the
//! evaluation targets, pick a search strategy, drain the queue on a worker
//! pool, and match the triaged crash records against the paper's known-bug
//! list.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use lfi_campaign::{
    Campaign, CampaignReport, CampaignState, CoverageAdaptive, ExecBackend, Exhaustive, FaultSpace,
    InjectionGuided, JsonlSink, OutcomeKind, RandomSample, ShardMergeError, ShardOutcome,
    ShardSpec, StandardExecutor, Strategy, DEFAULT_SNAPSHOT_BUDGET,
};
use lfi_targets::{standard_controller, KNOWN_BUGS};

use crate::experiments::{FoundBug, Table1};

/// The targets the Table 1 hunt sweeps.
const HUNT_TARGETS: [&str; 4] = ["bind-lite", "git-lite", "db-lite", "bft-lite"];

/// The bft-lite functions the hunt injects into (a full cluster run per
/// fault point is expensive; the paper's PBFT bugs live behind these).
const BFT_FUNCTIONS: [&str; 6] = ["recvfrom", "sendto", "fopen", "fwrite", "open", "close"];

/// Which search strategy drives the hunt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuntStrategy {
    /// Every fault point.
    Exhaustive,
    /// A seed-deterministic random sample of `count` fault points.
    Random {
        /// Sample size.
        count: usize,
    },
    /// Prune unreached call sites, unchecked sites first.
    Guided,
    /// The guided ordering as an adaptive scheduler: batches with
    /// crash-signature escalation and quiet-neighborhood deprioritization.
    Adaptive,
}

/// Campaign options for the Table 1 hunt.
#[derive(Debug, Clone)]
pub struct HuntOptions {
    /// Worker threads.
    pub jobs: usize,
    /// Search strategy.
    pub strategy: HuntStrategy,
    /// Base seed.
    pub seed: u64,
    /// Execution backend (fresh VM per unit, or snapshot-fork sessions).
    pub backend: ExecBackend,
    /// Byte cap on resident snapshot-tree nodes (snapshot backend only);
    /// the executor evicts least-recently-forked non-root nodes past it.
    pub snapshot_budget: u64,
    /// Which round-robin slice of the fault space to run
    /// ([`ShardSpec::FULL`] for the whole hunt). Sibling processes run the
    /// other slices; [`table1_merge`] recombines their persisted states.
    pub shard: ShardSpec,
    /// Checkpoint path: the campaign state is persisted here after every
    /// batch and resumed from here when the file already exists.
    pub state: Option<PathBuf>,
    /// Stream every campaign event to this file as line-delimited JSON
    /// (one [`lfi_campaign::CampaignEvent`] per line, flushed per event)
    /// for live out-of-process consumers such as `campaign_status`.
    pub events_jsonl: Option<PathBuf>,
}

impl Default for HuntOptions {
    fn default() -> Self {
        HuntOptions {
            jobs: 1,
            strategy: HuntStrategy::Exhaustive,
            seed: 7,
            backend: ExecBackend::Fresh,
            snapshot_budget: DEFAULT_SNAPSHOT_BUDGET,
            shard: ShardSpec::FULL,
            state: None,
            events_jsonl: None,
        }
    }
}

/// The campaign-backed Table 1 result.
#[derive(Debug, Clone)]
pub struct Table1Campaign {
    /// The matched known-bug table.
    pub table: Table1,
    /// The underlying campaign report (plan size, triage, records). For a
    /// sharded hunt this covers only the shard's slice; for
    /// [`table1_merge`] it is the recombined whole.
    pub report: CampaignReport,
    /// Which slice produced the report ([`ShardSpec::FULL`] for unsharded
    /// hunts and merged results).
    pub shard: ShardSpec,
    /// The checkpoint tag the hunt ran under
    /// (`fingerprint@plan-hash#i/n`; the shared plan tag, without a shard
    /// suffix, for merged results). Callers use it to tell a genuine
    /// resume from a checkpoint the engine discarded as mismatched.
    pub tag: String,
}

/// Enumerate the Table 1 fault space: every call site of every profiled
/// failing function of the single-process targets, plus the cluster
/// target restricted to its harness functions — annotated with analyzer
/// classifications and baseline reachability.
pub fn table1_fault_space(executor: &StandardExecutor, seed: u64) -> FaultSpace {
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(&HUNT_TARGETS, &profile);
    space.retain(|p| p.target != "bft-lite" || BFT_FUNCTIONS.contains(&p.function.as_str()));
    executor.annotate_baseline_reachability(&mut space, seed);
    space
}

/// The boxed strategy behind a [`HuntStrategy`] choice.
fn hunt_strategy(options: &HuntOptions) -> Box<dyn Strategy> {
    match options.strategy {
        HuntStrategy::Exhaustive => Box::new(Exhaustive),
        HuntStrategy::Random { count } => Box::new(RandomSample {
            count,
            seed: options.seed,
        }),
        HuntStrategy::Guided => Box::new(InjectionGuided),
        // The hunt opts into saturation pruning: once a caller neighborhood
        // keeps passing, its remaining *checked* call sites are dropped, and
        // statically demoted points are skipped after a single corroborating
        // pass — 240 units instead of guided's 272, still 11/11 known bugs.
        // (Pruning decisions read the shard-local history, so a sharded
        // adaptive hunt may cover a slightly different unit set than the
        // unsharded one; the static strategies shard loss-free.)
        HuntStrategy::Adaptive => Box::new(CoverageAdaptive {
            prune_saturated: true,
            ..CoverageAdaptive::default()
        }),
    }
}

/// Run the Table 1 bug hunt as a campaign (or one shard of it).
pub fn table1_campaign(options: &HuntOptions) -> Table1Campaign {
    // Only the four hunted targets are loaded; httpd-lite stays cold.
    let executor = StandardExecutor::new(&HUNT_TARGETS);
    let space = table1_fault_space(&executor, options.seed);
    let events = options.events_jsonl.as_ref().map(|path| {
        JsonlSink::create(path)
            .unwrap_or_else(|err| panic!("create event stream {}: {err}", path.display()))
    });
    let mut builder = Campaign::builder(space, &executor)
        .boxed_strategy(hunt_strategy(options))
        .jobs(options.jobs)
        .seed(options.seed)
        .backend(options.backend)
        .snapshot_budget(options.snapshot_budget)
        .shard(options.shard);
    if let Some(path) = &options.state {
        builder = builder.checkpoint(path);
    }
    if let Some(sink) = &events {
        builder = builder.events(sink);
    }
    let outcome = builder.build().run_to_completion();
    if let Some(err) = events.as_ref().and_then(JsonlSink::take_error) {
        eprintln!("warning: event stream truncated: {err}");
    }
    Table1Campaign {
        table: match_known_bugs(&outcome.report),
        shard: outcome.shard,
        tag: outcome.tag,
        report: outcome.report,
    }
}

/// Merge the persisted states of a complete shard set back into one Table 1
/// result — the `table1_bugs merge` step. The states must cover every
/// shard of one hunt (same strategy, seed, and fault space); the merged
/// records and triage are identical to the equivalent unsharded hunt's,
/// so the known-bug matching sees exactly what a single process would.
pub fn table1_merge(states: &[CampaignState]) -> Result<Table1Campaign, ShardMergeError> {
    let outcomes = states
        .iter()
        .map(ShardOutcome::from_state)
        .collect::<Result<Vec<_>, _>>()?;
    let tag = outcomes
        .first()
        .map(|outcome| outcome.plan_tag().to_string())
        .unwrap_or_default();
    let report = CampaignReport::merge(outcomes)?;
    Ok(Table1Campaign {
        table: match_known_bugs(&report),
        shard: ShardSpec::FULL,
        tag,
        report,
    })
}

/// Match a campaign's records against the paper's known-bug list, exactly
/// like the original Table 1 accounting: crashes are attributed to
/// `(injected function, caller)` pairs, distinct call-site offsets claim
/// distinct bugs, and the Git data-loss bug is detected from a passing
/// commit run that absorbed a setenv injection.
pub fn match_known_bugs(report: &CampaignReport) -> Table1 {
    let mut crash_sites: BTreeMap<(String, String), BTreeSet<u64>> = BTreeMap::new();
    let mut data_loss_found = false;

    for record in &report.records {
        if record.target == "bft-lite" {
            // Attribute each cluster crash to every function on the failure
            // path: the one containing the faulting instruction plus the
            // backtrace frames.
            for crash in &record.crashes {
                let mut involved: BTreeSet<String> = crash.backtrace.iter().cloned().collect();
                if let Some(function) = &crash.in_function {
                    involved.insert(function.clone());
                }
                for caller in involved {
                    crash_sites
                        .entry((record.function.clone(), caller))
                        .or_default()
                        .insert(record.offset);
                }
            }
            continue;
        }

        // The Git data-loss bug: the commit succeeds but the record lacks
        // its author after a failed (injected) setenv.
        if record.target == "git-lite"
            && record.function == "setenv"
            && record.args.first().map(String::as_str) == Some("commit")
            && record.injections > 0
            && record.outcome == OutcomeKind::Passed
        {
            data_loss_found = true;
        }

        if !record.outcome.is_crash() {
            continue;
        }
        let fallback = record
            .crashes
            .first()
            .and_then(|c| c.backtrace.first().cloned())
            .unwrap_or_default();
        for site in &record.injected_sites {
            let caller = site.caller.clone().unwrap_or_else(|| fallback.clone());
            crash_sites
                .entry((record.function.clone(), caller))
                .or_default()
                .insert(site.offset);
        }
    }

    let mut result = Table1 {
        runs: report.records.len(),
        ..Table1::default()
    };
    let mut claimed: BTreeMap<(String, String), usize> = BTreeMap::new();
    for bug in KNOWN_BUGS {
        if !bug.crashes {
            if data_loss_found {
                result.found.push(FoundBug {
                    id: bug.id.to_string(),
                    system: bug.system.to_string(),
                    injected_function: bug.injected_function.to_string(),
                    caller: bug.manifests_in.to_string(),
                    manifestation: "silent data loss (commit without author)".to_string(),
                });
            } else {
                result.missed.push(bug.id.to_string());
            }
            continue;
        }
        let key = (
            bug.injected_function.to_string(),
            bug.manifests_in.to_string(),
        );
        let available = crash_sites.get(&key).map(|s| s.len()).unwrap_or(0);
        let used = claimed.entry(key.clone()).or_insert(0);
        if *used < available {
            *used += 1;
            result.found.push(FoundBug {
                id: bug.id.to_string(),
                system: bug.system.to_string(),
                injected_function: bug.injected_function.to_string(),
                caller: bug.manifests_in.to_string(),
                manifestation: "crash".to_string(),
            });
        } else {
            result.missed.push(bug.id.to_string());
        }
    }
    result
}
