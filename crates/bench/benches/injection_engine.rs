//! Criterion benchmark of the injection runtime itself: how long a full
//! fault-injection test of git-lite takes (scenario compilation, loading with
//! interposition, workload execution, crash detection).

use criterion::{criterion_group, criterion_main, Criterion};
use lfi_core::TestConfig;
use lfi_targets::{git_lite, standard_controller, FsSetupWorkload};

fn bench_end_to_end_injection(c: &mut Criterion) {
    let controller = standard_controller();
    let profile = controller.profile_libraries();
    let exe = git_lite();
    // One unchecked malloc site, targeted by the analyzer-style scenario.
    let reports = controller.analyze(&exe);
    let malloc_report = reports
        .iter()
        .find(|r| r.function == "malloc")
        .expect("git-lite calls malloc");
    let site = malloc_report.unchecked()[0].offset;
    let scenario = lfi_bench::support::single_site_scenario("git-lite", "malloc", site, &profile);
    let config = TestConfig {
        args: vec!["diff".into(), "3".into(), "4".into()],
        ..TestConfig::default()
    };
    c.bench_function("git_lite_injection_test", |b| {
        b.iter(|| {
            controller
                .run_test(&exe, &scenario, &mut FsSetupWorkload, &config)
                .expect("run")
        });
    });

    c.bench_function("git_lite_baseline_run", |b| {
        b.iter(|| {
            controller
                .run_test(
                    &exe,
                    &lfi_core::Scenario::new(),
                    &mut FsSetupWorkload,
                    &config,
                )
                .expect("run")
        });
    });
}

criterion_group!(benches, bench_end_to_end_injection);
criterion_main!(benches);
