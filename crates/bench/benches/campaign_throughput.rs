//! Criterion benchmark of campaign throughput (scenarios per second):
//! the same git-lite fault-space sweep drained by one worker vs four,
//! fresh-VM vs snapshot-fork execution backends, and the adaptive
//! scheduler's batched drain vs the single-batch exhaustive one (the
//! feedback loop between batches must not cost measurable throughput).
//!
//! The snapshot lanes fork every unit from a per-(target, workload)
//! prefix snapshot instead of building a fresh VM; the triage must be
//! identical to the fresh lanes' — only the wall clock may differ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfi_campaign::{Campaign, CoverageAdaptive, ExecBackend, FaultSpace, StandardExecutor};
use lfi_targets::standard_controller;

fn git_space(executor: &StandardExecutor) -> FaultSpace {
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(&["git-lite"], &profile);
    executor.annotate_baseline_reachability(&mut space, 7);
    space
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let executor = StandardExecutor::new(&["git-lite"]);
    let space = git_space(&executor);
    let units = Campaign::builder(space.clone(), &executor)
        .build()
        .campaign()
        .total_units();

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    for backend in [ExecBackend::Fresh, ExecBackend::Snapshot] {
        for jobs in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("git_lite_{units}_scenarios_{backend}"), jobs),
                &jobs,
                |b, &jobs| {
                    let driver = Campaign::builder(space.clone(), &executor)
                        .jobs(jobs)
                        .seed(7)
                        .backend(backend)
                        .build();
                    b.iter(|| {
                        let report = driver.run_to_completion().report;
                        assert_eq!(report.executed_now, units);
                        report.triage.crashes
                    });
                },
            );
        }
    }
    group.bench_function("git_lite_adaptive_jobs4", |b| {
        let driver = Campaign::builder(space.clone(), &executor)
            .strategy(CoverageAdaptive::default())
            .jobs(4)
            .seed(7)
            .build();
        b.iter(|| {
            let report = driver.run_to_completion().report;
            assert!(report.executed_now > 0);
            report.triage.crashes
        });
    });
    group.finish();
}

criterion_group!(benches, bench_campaign_throughput);
criterion_main!(benches);
