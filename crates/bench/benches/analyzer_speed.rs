//! Criterion benchmark behind §7.2: running time of the call-site analyzer
//! and of the library profiler on the target binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfi_targets::{all_targets, standard_controller};

fn bench_analyzer(c: &mut Criterion) {
    let controller = standard_controller();
    let mut group = c.benchmark_group("callsite_analyzer");
    for (name, module) in all_targets() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &module, |b, m| {
            b.iter(|| controller.analyze(m));
        });
    }
    group.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let libc = lfi_libc::build();
    c.bench_function("profile_libc", |b| {
        b.iter(|| lfi_profiler::profile_library(&libc));
    });
}

criterion_group!(benches, bench_analyzer, bench_profiler);
criterion_main!(benches);
