//! Criterion benchmark behind Tables 5 and 6: wall-clock cost of running the
//! httpd-lite workload with increasing numbers of triggers evaluated on every
//! intercepted call (no injection), versus the uninstrumented baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfi_core::{Scenario, TestConfig};
use lfi_targets::{httpd_lite, standard_controller, FsSetupWorkload};

fn httpd_run(scenario: &Scenario, requests: u64) {
    let controller = standard_controller();
    let config = TestConfig {
        args: vec![requests.to_string(), "1".to_string()],
        observe_only: true,
        ..TestConfig::default()
    };
    let report = controller
        .run_test(&httpd_lite(), scenario, &mut FsSetupWorkload, &config)
        .expect("httpd run");
    assert!(matches!(report.outcome, lfi_core::TestOutcome::Passed));
}

fn scenario_with_triggers(count: usize) -> Scenario {
    // Reuse the Table 5 trigger stack through the experiments module.

    lfi_bench::experiments::httpd_trigger_scenario(count)
}

fn bench_trigger_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trigger_overhead_httpd");
    group.sample_size(10);
    for count in [0usize, 1, 3, 5] {
        let scenario = scenario_with_triggers(count);
        group.bench_with_input(BenchmarkId::from_parameter(count), &scenario, |b, s| {
            b.iter(|| httpd_run(s, 40));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trigger_overhead);
criterion_main!(benches);
