//! The supervised-campaign fault-tolerance differential, end to end
//! with real worker processes: SIGKILL a worker mid-lease and the
//! merged report must still be **byte-identical** to the unsharded
//! in-process run — no lost units, no duplicate records, and
//! re-execution bounded by the leases that were actually in flight on
//! the dead worker.

use std::fs;
use std::path::PathBuf;

use lfi_campaign::{Campaign, Exhaustive, StandardExecutor};
use lfi_supervisor::supervisor::{run_supervised, SupervisorOptions};
use lfi_supervisor::SpaceSpec;

/// The Table 1 git-lite slice (same space as the campaign crate's shard
/// differential): opendir (readdir-null crash), setenv (silent data
/// loss), readlink (checked site).
fn git_spec() -> SpaceSpec {
    SpaceSpec {
        targets: vec!["git-lite".to_string()],
        retain: vec![(
            "git-lite".to_string(),
            vec![
                "opendir".to_string(),
                "setenv".to_string(),
                "readlink".to_string(),
            ],
        )],
        baseline_seed: 7,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lfi_supervisor_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn a_killed_worker_does_not_change_the_merged_report() {
    // The ground truth: the same spec, unsharded, in-process.
    let spec = git_spec();
    let executor = StandardExecutor::new(&spec.target_names());
    let space = spec.build(&executor);
    assert!(!space.is_empty());
    let unsharded = Campaign::builder(space, &executor)
        .strategy(Exhaustive)
        .jobs(2)
        .seed(7)
        .build()
        .run_to_completion();
    assert!(
        unsharded.report.triage.distinct_crashes() > 0,
        "the git-lite slice must produce crashes for the broadcast path to exercise"
    );

    // The supervised run: two workers, small leases, and the chaos hook
    // SIGKILLs one busy worker after three units.
    let state_dir = scratch_dir("recovery");
    let mut options = SupervisorOptions::new(spec, &state_dir);
    options.workers = 2;
    options.jobs = 1;
    options.lease_points = 2;
    options.seed = 7;
    options.chaos_kill_after_units = Some(3);
    options.worker_bin = PathBuf::from(env!("CARGO_BIN_EXE_campaign_worker"));
    let outcome = run_supervised(&options).unwrap_or_else(|err| panic!("supervised run: {err}"));

    // The recovery happened: the chaos kill cost at least one restart
    // and expired at least one lease.
    assert!(
        outcome.worker_restarts >= 1,
        "the chaos hook must have killed (and the supervisor restarted) a worker"
    );
    assert!(outcome.leases_expired >= 1, "the dead worker held leases");
    assert!(
        outcome.killed_in_flight_units > 0,
        "the killed worker had a lease in flight"
    );

    // The differential: records and triage byte-for-byte, nothing lost.
    assert_eq!(
        outcome.report.records, unsharded.report.records,
        "merged records differ from the unsharded run"
    );
    assert_eq!(
        outcome.report.triage, unsharded.report.triage,
        "merged triage differs from the unsharded run"
    );
    assert_eq!(
        outcome.report.records.len(),
        outcome.total_units,
        "exhaustive coverage lost units"
    );

    // Fault tolerance is not free re-execution: duplicated work is
    // bounded by the units of the leases in flight at the kill.
    assert!(
        outcome.re_executed_units <= outcome.killed_in_flight_units,
        "re-executed {} units but only {} were in flight on dead workers",
        outcome.re_executed_units,
        outcome.killed_in_flight_units
    );

    // The live view agrees with the ground truth.
    assert_eq!(
        outcome.distinct_signatures,
        unsharded.report.triage.distinct_crashes(),
        "live first-seen signatures diverge from the merged triage"
    );

    let _ = fs::remove_dir_all(&state_dir);
}

#[test]
fn a_clean_supervised_run_matches_the_unsharded_report_too() {
    // No chaos: the plain distributed path (leases, pipelining,
    // possibly stealing) must also merge back exactly.
    let spec = git_spec();
    let executor = StandardExecutor::new(&spec.target_names());
    let space = spec.build(&executor);
    let unsharded = Campaign::builder(space, &executor)
        .strategy(Exhaustive)
        .jobs(2)
        .seed(7)
        .build()
        .run_to_completion();

    let state_dir = scratch_dir("clean");
    let mut options = SupervisorOptions::new(spec, &state_dir);
    options.workers = 2;
    options.jobs = 1;
    options.lease_points = 3;
    options.seed = 7;
    options.worker_bin = PathBuf::from(env!("CARGO_BIN_EXE_campaign_worker"));
    let outcome = run_supervised(&options).unwrap_or_else(|err| panic!("supervised run: {err}"));

    assert_eq!(outcome.report.records, unsharded.report.records);
    assert_eq!(outcome.report.triage, unsharded.report.triage);
    assert_eq!(outcome.worker_restarts, 0);
    assert_eq!(
        outcome.re_executed_units, 0,
        "nothing died, nothing re-runs"
    );
    assert_eq!(outcome.killed_in_flight_units, 0);

    let _ = fs::remove_dir_all(&state_dir);
}
