//! The upstream half of the supervisor wire protocol: what a worker
//! writes to its stdout.
//!
//! A worker's stdout carries two kinds of lines, multiplexed on the one
//! pipe: its own protocol messages (`{"worker": "<kind>", ...}`) and the
//! campaign event stream of whatever lease it is running (`{"event":
//! "<kind>", ...}`). [`WorkerMessage`] is the union — the discriminating
//! key makes the two codecs disjoint, exactly like
//! [`ControlMessage`](lfi_campaign::ControlMessage) lines (`"control"`)
//! on the downstream pipe. Every message has a total JSONL codec in both
//! directions; an undecodable line is a protocol error the supervisor
//! surfaces, never silently drops framing over.

use lfi_campaign::CampaignEvent;
use lfi_json::{JsonError, Value};

/// One line of worker stdout.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMessage {
    /// The handshake, sent once at startup: the worker's view of the
    /// plan. The supervisor rejects a worker whose `plan` hash differs
    /// from its own — same binary, different space means a config or
    /// build drift that would corrupt the merge.
    Hello {
        /// Worker process id (diagnostics only).
        pid: u64,
        /// Fault points the worker's space enumerates.
        points: usize,
        /// Canonical work units of the full space.
        units: usize,
        /// The space/suite plan hash, `{:016x}`-formatted.
        plan: String,
    },
    /// The worker began executing a granted lease. A steal revoke that
    /// races this message is cancelled: started leases always finish on
    /// the worker that started them.
    LeaseStarted {
        /// Grant id from the supervisor's `ControlMessage::Lease`.
        lease: u64,
    },
    /// The worker finished a lease and sealed its checkpoint file.
    LeaseFinished {
        /// Grant id.
        lease: u64,
        /// First fault-point index of the range.
        start: usize,
        /// One past the last fault-point index of the range.
        end: usize,
        /// Units executed this session (resumed ones excluded).
        executed: usize,
        /// Total records the lease checkpoint now holds.
        records: usize,
    },
    /// The worker returned a queued lease in answer to a revoke; the
    /// lease never started, so its range is wholly unexecuted by this
    /// worker (beyond whatever an earlier holder checkpointed).
    LeaseRevoked {
        /// Grant id.
        lease: u64,
    },
    /// One campaign event from the lease the worker is running,
    /// forwarded verbatim.
    Event(CampaignEvent),
}

fn invalid(message: impl Into<String>) -> JsonError {
    JsonError {
        position: 0,
        message: message.into(),
    }
}

fn int_field(value: &Value, name: &str) -> Result<i64, JsonError> {
    value
        .get(name)
        .and_then(Value::as_int)
        .ok_or_else(|| invalid(format!("missing integer field `{name}`")))
}

fn str_field(value: &Value, name: &str) -> Result<String, JsonError> {
    value
        .get(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| invalid(format!("missing string field `{name}`")))
}

impl WorkerMessage {
    /// Encode as an `lfi_json` value: `{"worker": "<kind>", ...}` for
    /// protocol messages, the event's own `{"event": ...}` object for
    /// [`WorkerMessage::Event`].
    pub fn to_value(&self) -> Value {
        let tagged = |kind: &str, mut fields: Vec<(String, Value)>| {
            fields.insert(0, ("worker".to_string(), Value::Str(kind.to_string())));
            Value::Obj(fields)
        };
        match self {
            WorkerMessage::Hello {
                pid,
                points,
                units,
                plan,
            } => tagged(
                "hello",
                vec![
                    ("pid".to_string(), Value::Int(*pid as i64)),
                    ("points".to_string(), Value::Int(*points as i64)),
                    ("units".to_string(), Value::Int(*units as i64)),
                    ("plan".to_string(), Value::Str(plan.clone())),
                ],
            ),
            WorkerMessage::LeaseStarted { lease } => tagged(
                "lease_started",
                vec![("lease".to_string(), Value::Int(*lease as i64))],
            ),
            WorkerMessage::LeaseFinished {
                lease,
                start,
                end,
                executed,
                records,
            } => tagged(
                "lease_finished",
                vec![
                    ("lease".to_string(), Value::Int(*lease as i64)),
                    ("start".to_string(), Value::Int(*start as i64)),
                    ("end".to_string(), Value::Int(*end as i64)),
                    ("executed".to_string(), Value::Int(*executed as i64)),
                    ("records".to_string(), Value::Int(*records as i64)),
                ],
            ),
            WorkerMessage::LeaseRevoked { lease } => tagged(
                "lease_revoked",
                vec![("lease".to_string(), Value::Int(*lease as i64))],
            ),
            WorkerMessage::Event(event) => event.to_value(),
        }
    }

    /// Decode a value produced by [`to_value`](Self::to_value). A value
    /// without a `"worker"` key is decoded as a campaign event.
    pub fn from_value(value: &Value) -> Result<WorkerMessage, JsonError> {
        let Some(kind) = value.get("worker").and_then(Value::as_str) else {
            return CampaignEvent::from_value(value).map(WorkerMessage::Event);
        };
        match kind {
            "hello" => Ok(WorkerMessage::Hello {
                pid: int_field(value, "pid")? as u64,
                points: int_field(value, "points")? as usize,
                units: int_field(value, "units")? as usize,
                plan: str_field(value, "plan")?,
            }),
            "lease_started" => Ok(WorkerMessage::LeaseStarted {
                lease: int_field(value, "lease")? as u64,
            }),
            "lease_finished" => Ok(WorkerMessage::LeaseFinished {
                lease: int_field(value, "lease")? as u64,
                start: int_field(value, "start")? as usize,
                end: int_field(value, "end")? as usize,
                executed: int_field(value, "executed")? as usize,
                records: int_field(value, "records")? as usize,
            }),
            "lease_revoked" => Ok(WorkerMessage::LeaseRevoked {
                lease: int_field(value, "lease")? as u64,
            }),
            other => Err(invalid(format!("unknown worker message kind `{other}`"))),
        }
    }

    /// Encode as one line of compact JSON (no interior newlines) — the
    /// JSONL wire format the worker writes to stdout.
    pub fn to_json_line(&self) -> String {
        self.to_value().to_compact()
    }

    /// Decode one JSONL line produced by
    /// [`to_json_line`](Self::to_json_line).
    pub fn from_json_line(line: &str) -> Result<WorkerMessage, JsonError> {
        WorkerMessage::from_value(&lfi_json::parse(line)?)
    }
}

#[cfg(test)]
mod tests {
    use lfi_campaign::{CampaignEvent, CrashSignature};

    use super::*;

    #[test]
    fn worker_messages_round_trip_through_json_lines() {
        let messages = vec![
            WorkerMessage::Hello {
                pid: 4242,
                points: 120,
                units: 285,
                plan: "00000000deadbeef".to_string(),
            },
            WorkerMessage::LeaseStarted { lease: 7 },
            WorkerMessage::LeaseFinished {
                lease: 7,
                start: 16,
                end: 24,
                executed: 19,
                records: 20,
            },
            WorkerMessage::LeaseRevoked { lease: 9 },
            WorkerMessage::Event(CampaignEvent::CrashFound(CrashSignature {
                target: "git-lite".to_string(),
                function: "opendir".to_string(),
                module: "git-lite".to_string(),
                offset: 0x99,
                frame: Some("scan_tree".to_string()),
            })),
        ];
        for message in messages {
            let line = message.to_json_line();
            assert!(!line.contains('\n'), "JSONL lines must be single-line");
            let back = WorkerMessage::from_json_line(&line)
                .unwrap_or_else(|err| panic!("decoding {line}: {err:?}"));
            assert_eq!(back, message);
        }
    }

    #[test]
    fn event_lines_decode_as_forwarded_events() {
        // A raw event line (what the engine's sink emits) and the
        // worker's re-encoded form are the same wire bytes.
        let event = CampaignEvent::UnitStarted {
            unit: 3,
            target: "db-lite".to_string(),
            function: "close".to_string(),
            offset: 0x40,
        };
        let line = event.to_json_line();
        assert_eq!(
            WorkerMessage::from_json_line(&line).unwrap(),
            WorkerMessage::Event(event.clone())
        );
        assert_eq!(WorkerMessage::Event(event).to_json_line(), line);
    }

    #[test]
    fn decoding_rejects_malformed_and_foreign_lines() {
        assert!(WorkerMessage::from_json_line("{}").is_err());
        assert!(WorkerMessage::from_json_line("not json").is_err());
        assert!(WorkerMessage::from_json_line(r#"{"worker":"warp"}"#).is_err());
        assert!(WorkerMessage::from_json_line(r#"{"worker":"hello"}"#).is_err());
        // A control line belongs to the downstream pipe, not this one.
        assert!(WorkerMessage::from_json_line(r#"{"control":"shutdown"}"#).is_err());
    }
}
