//! Supervise a distributed fault-injection campaign.
//!
//! Spawns N `campaign_worker` processes, leases them unit ranges of the
//! fault space, monitors their heartbeats (dead or hung workers are
//! restarted and their leases migrate), steals queued leases for idle
//! workers, broadcasts first-seen crash signatures, and merges the
//! per-lease checkpoints into one report.
//!
//! ```text
//! campaign_supervisor --preset table1 --state-dir DIR
//!                     [--target T]... [--retain T:fn1,fn2]...
//!                     [--baseline-seed N]
//!                     [--workers N] [--jobs N] [--lease-points N]
//!                     [--strategy exhaustive|guided|adaptive|random:N]
//!                     [--seed N] [--backend fresh|snapshot]
//!                     [--snapshot-budget BYTES]
//!                     [--heartbeat-timeout-ms N] [--max-restarts N]
//!                     [--chaos-kill-after N] [--events-jsonl PATH]
//!                     [--worker-bin PATH] [--out PATH]
//! ```
//!
//! `--chaos-kill-after N` SIGKILLs one busy worker once N units have
//! finished campaign-wide — the recovery smoke used by CI: the merged
//! result must come out identical anyway. `lost units` in the summary
//! counts unrecorded units against the full space for the `exhaustive`
//! strategy (other strategies schedule a strategy-defined subset, so
//! the line reports 0 by construction).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use lfi_json::Value;
use lfi_supervisor::supervisor::{run_supervised, SupervisedOutcome, SupervisorOptions};
use lfi_supervisor::SpaceSpec;

fn parse_args() -> Result<(SupervisorOptions, Option<PathBuf>), String> {
    let mut spec = SpaceSpec::new();
    let mut options = SupervisorOptions::new(SpaceSpec::new(), PathBuf::new());
    let mut state_dir: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        let int = |text: String, what: &str| {
            text.parse::<u64>()
                .map_err(|_| format!("{what} needs an integer"))
        };
        match flag.as_str() {
            "--preset" => match value()?.as_str() {
                "table1" => spec = SpaceSpec::table1(),
                other => return Err(format!("unknown preset `{other}` (expected table1)")),
            },
            "--target" => spec.targets.push(value()?),
            "--retain" => spec.retain.push(SpaceSpec::parse_retain(&value()?)?),
            "--baseline-seed" => spec.baseline_seed = int(value()?, "--baseline-seed")?,
            "--workers" => options.workers = int(value()?, "--workers")? as usize,
            "--jobs" => options.jobs = int(value()?, "--jobs")? as usize,
            "--lease-points" => options.lease_points = int(value()?, "--lease-points")? as usize,
            "--strategy" => options.strategy = value()?,
            "--seed" => options.seed = int(value()?, "--seed")?,
            "--backend" => options.backend = value()?.parse().map_err(|err| format!("{err}"))?,
            "--snapshot-budget" => options.snapshot_budget = int(value()?, "--snapshot-budget")?,
            "--heartbeat-timeout-ms" => {
                options.heartbeat_timeout =
                    Duration::from_millis(int(value()?, "--heartbeat-timeout-ms")?);
            }
            "--max-restarts" => options.max_restarts = int(value()?, "--max-restarts")? as usize,
            "--chaos-kill-after" => {
                options.chaos_kill_after_units =
                    Some(int(value()?, "--chaos-kill-after")? as usize);
            }
            "--events-jsonl" => options.events_jsonl = Some(PathBuf::from(value()?)),
            "--worker-bin" => options.worker_bin = PathBuf::from(value()?),
            "--state-dir" => state_dir = Some(PathBuf::from(value()?)),
            "--out" => out = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if spec.targets.is_empty() {
        return Err("no targets: pass --target or --preset table1".to_string());
    }
    options.spec = spec;
    options.state_dir = state_dir.ok_or_else(|| "--state-dir is required".to_string())?;
    Ok((options, out))
}

fn summary_json(options: &SupervisorOptions, outcome: &SupervisedOutcome, lost: usize) -> Value {
    Value::Obj(vec![
        ("strategy".to_string(), Value::Str(options.strategy.clone())),
        ("plan".to_string(), Value::Str(outcome.plan_tag.clone())),
        ("workers".to_string(), Value::Int(options.workers as i64)),
        (
            "points".to_string(),
            Value::Int(outcome.total_points as i64),
        ),
        (
            "units_total".to_string(),
            Value::Int(outcome.total_units as i64),
        ),
        (
            "records".to_string(),
            Value::Int(outcome.report.records.len() as i64),
        ),
        ("lost_units".to_string(), Value::Int(lost as i64)),
        (
            "distinct_signatures".to_string(),
            Value::Int(outcome.distinct_signatures as i64),
        ),
        (
            "leases_issued".to_string(),
            Value::Int(outcome.leases_issued as i64),
        ),
        (
            "leases_stolen".to_string(),
            Value::Int(outcome.leases_stolen as i64),
        ),
        (
            "leases_expired".to_string(),
            Value::Int(outcome.leases_expired as i64),
        ),
        (
            "worker_restarts".to_string(),
            Value::Int(outcome.worker_restarts as i64),
        ),
        (
            "signatures_broadcast".to_string(),
            Value::Int(outcome.signatures_broadcast as i64),
        ),
        (
            "re_executed_units".to_string(),
            Value::Int(outcome.re_executed_units as i64),
        ),
        (
            "killed_in_flight_units".to_string(),
            Value::Int(outcome.killed_in_flight_units as i64),
        ),
        ("metrics".to_string(), outcome.metrics.to_value()),
    ])
}

fn main() -> ExitCode {
    let (options, out) = match parse_args() {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("campaign_supervisor: {err}");
            return ExitCode::from(2);
        }
    };
    let outcome = match run_supervised(&options) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("campaign_supervisor: {err}");
            return ExitCode::FAILURE;
        }
    };

    // Unrecorded units against the full space — only the exhaustive
    // strategy promises to cover everything.
    let lost = if options.strategy == "exhaustive" {
        outcome.total_units - outcome.report.records.len()
    } else {
        0
    };

    println!(
        "supervised campaign: {} over {} points / {} units ({} workers, {} leases)",
        options.strategy,
        outcome.total_points,
        outcome.total_units,
        options.workers,
        outcome.leases_issued,
    );
    println!("plan: {}", outcome.plan_tag);
    println!(
        "units: {} recorded, {} re-executed (bound {}); lost units: {}",
        outcome.report.records.len(),
        outcome.re_executed_units,
        outcome.killed_in_flight_units,
        lost,
    );
    println!(
        "signatures: {} distinct ({} broadcast)",
        outcome.distinct_signatures, outcome.signatures_broadcast,
    );
    println!(
        "workers: {} restarts; leases: {} issued, {} stolen, {} expired",
        outcome.worker_restarts,
        outcome.leases_issued,
        outcome.leases_stolen,
        outcome.leases_expired,
    );

    if let Some(path) = out {
        let json = summary_json(&options, &outcome, lost).to_pretty();
        if let Err(err) = std::fs::write(&path, json + "\n") {
            eprintln!("campaign_supervisor: write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if lost > 0 {
        eprintln!("campaign_supervisor: {lost} units lost — the merge should have caught this");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
