//! One shard worker of a supervised campaign.
//!
//! Spawned by `campaign_supervisor` (or any harness speaking the same
//! protocol) with the fault-space spec as flags; speaks JSONL on
//! stdin/stdout: control messages in, protocol messages and campaign
//! events out. Not usually run by hand — without a supervisor feeding
//! leases on stdin it just waits.
//!
//! ```text
//! campaign_worker --target git-lite [--target ...]
//!                 [--retain target:fn1,fn2]... [--baseline-seed N]
//!                 [--preset table1]
//!                 --state-dir DIR
//!                 [--strategy exhaustive|guided|adaptive|random:N]
//!                 [--jobs N] [--seed N]
//!                 [--backend fresh|snapshot] [--snapshot-budget BYTES]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use lfi_supervisor::worker::{run_worker, WorkerConfig};
use lfi_supervisor::SpaceSpec;

fn parse_args() -> Result<WorkerConfig, String> {
    let mut spec = SpaceSpec::new();
    let mut config = WorkerConfig::new(SpaceSpec::new(), PathBuf::new());
    let mut state_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--preset" => match value()?.as_str() {
                "table1" => spec = SpaceSpec::table1(),
                other => return Err(format!("unknown preset `{other}` (expected table1)")),
            },
            "--target" => spec.targets.push(value()?),
            "--retain" => spec.retain.push(SpaceSpec::parse_retain(&value()?)?),
            "--baseline-seed" => {
                spec.baseline_seed = value()?
                    .parse()
                    .map_err(|_| "--baseline-seed needs an integer".to_string())?;
            }
            "--strategy" => config.strategy = value()?,
            "--jobs" => {
                config.jobs = value()?
                    .parse()
                    .map_err(|_| "--jobs needs an integer".to_string())?;
            }
            "--seed" => {
                config.seed = value()?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--backend" => config.backend = value()?.parse().map_err(|err| format!("{err}"))?,
            "--snapshot-budget" => {
                config.snapshot_budget = value()?
                    .parse()
                    .map_err(|_| "--snapshot-budget needs a byte count".to_string())?;
            }
            "--state-dir" => state_dir = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if spec.targets.is_empty() {
        return Err("no targets: pass --target or --preset table1".to_string());
    }
    config.spec = spec;
    config.state_dir = state_dir.ok_or_else(|| "--state-dir is required".to_string())?;
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(err) => {
            eprintln!("campaign_worker: {err}");
            return ExitCode::from(2);
        }
    };
    match run_worker(&config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("campaign_worker: {err}");
            ExitCode::FAILURE
        }
    }
}
