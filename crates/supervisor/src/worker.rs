//! The shard worker: one supervised process that runs leases.
//!
//! The `campaign_worker` bin wraps [`run_worker`]. A worker builds its
//! executor and fault space once, announces itself with a
//! [`WorkerMessage::Hello`] (plan-hash handshake), then serves leases
//! from stdin until it is told to shut down (or its stdin closes — a
//! dead supervisor means exit, not orphaned work):
//!
//! * [`ControlMessage::Lease`] queues a range; leases run one at a time
//!   in arrival order, each as its own campaign run confined to the
//!   range, checkpointed to `state_dir/lease_{start}_{end}.json`. The
//!   checkpoint tag is keyed by the range, so a lease reassigned from a
//!   dead sibling resumes that sibling's file instead of restarting.
//! * [`ControlMessage::Revoke`] returns a still-queued lease to the
//!   supervisor (work stealing); the running lease always completes.
//! * [`ControlMessage::SignatureBroadcast`] accumulates crash
//!   signatures first seen by sibling workers; every subsequent lease
//!   run is seeded with them, so an adaptive strategy escalates globally
//!   hot neighborhoods, not just locally observed ones.
//!
//! Everything the worker says flows through one mutex-serialized stdout:
//! protocol messages and the forwarded per-lease event stream share the
//! pipe, discriminated by their `"worker"` / `"event"` keys.

use std::collections::VecDeque;
use std::fs;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use lfi_campaign::{
    Campaign, CampaignEvent, ControlMessage, CrashSignature, ExecBackend, Lease, StandardExecutor,
    DEFAULT_SNAPSHOT_BUDGET,
};

use crate::plan::{parse_strategy, SpaceSpec};
use crate::protocol::WorkerMessage;

/// Everything a worker needs to serve leases; mirrors the worker bin's
/// command line.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The fault space to enumerate (must match the supervisor's).
    pub spec: SpaceSpec,
    /// Strategy name (see [`parse_strategy`]).
    pub strategy: String,
    /// Worker threads per lease run.
    pub jobs: usize,
    /// Campaign seed (unit seeds derive from it by canonical id).
    pub seed: u64,
    /// Execution backend.
    pub backend: ExecBackend,
    /// Snapshot-tree byte budget (snapshot backend only).
    pub snapshot_budget: u64,
    /// Directory of per-lease checkpoint files, shared with the
    /// supervisor and sibling workers (the merge step reads it).
    pub state_dir: PathBuf,
}

impl WorkerConfig {
    /// A config with the stock defaults for everything but the spec and
    /// state directory.
    pub fn new(spec: SpaceSpec, state_dir: impl Into<PathBuf>) -> WorkerConfig {
        WorkerConfig {
            spec,
            strategy: "exhaustive".to_string(),
            jobs: 1,
            seed: 7,
            backend: ExecBackend::Fresh,
            snapshot_budget: DEFAULT_SNAPSHOT_BUDGET,
            state_dir: state_dir.into(),
        }
    }
}

fn send(stdout: &Mutex<io::Stdout>, message: &WorkerMessage) -> Result<(), String> {
    let mut out = stdout.lock().unwrap();
    writeln!(out, "{}", message.to_json_line())
        .and_then(|()| out.flush())
        .map_err(|err| format!("worker stdout closed: {err}"))
}

/// Serve leases until shutdown. Returns `Err` on a broken environment
/// (unbuildable space, unwritable state dir, closed stdout) — never on
/// ordinary campaign outcomes.
pub fn run_worker(config: &WorkerConfig) -> Result<(), String> {
    parse_strategy(&config.strategy, config.seed)?;
    fs::create_dir_all(&config.state_dir)
        .map_err(|err| format!("create state dir {}: {err}", config.state_dir.display()))?;

    let executor = StandardExecutor::new(&config.spec.target_names());
    let space = config.spec.build(&executor);
    let stdout = Arc::new(Mutex::new(io::stdout()));

    {
        // A probe campaign pins the plan identity for the handshake.
        let probe = Campaign::builder(space.clone(), &executor)
            .seed(config.seed)
            .build();
        send(
            &stdout,
            &WorkerMessage::Hello {
                pid: std::process::id() as u64,
                points: probe.campaign().space().len(),
                units: probe.campaign().total_units(),
                plan: format!("{:016x}", probe.campaign().plan_hash()),
            },
        )?;
    }

    // Control lines arrive on a reader thread so a revoke or broadcast
    // sent mid-lease is queued, not blocked on; stdin EOF injects a
    // shutdown so a vanished supervisor cannot orphan the worker.
    let (control_tx, control_rx) = mpsc::channel::<ControlMessage>();
    thread::spawn(move || {
        let stdin = io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match ControlMessage::from_json_line(&line) {
                Ok(message) => {
                    if control_tx.send(message).is_err() {
                        return;
                    }
                }
                Err(err) => eprintln!("campaign_worker: undecodable control line: {err}"),
            }
        }
        let _ = control_tx.send(ControlMessage::Shutdown);
    });

    let mut queue: VecDeque<Lease> = VecDeque::new();
    let mut signatures: Vec<CrashSignature> = Vec::new();
    loop {
        // Drain every already-arrived control message before starting
        // the next lease; block only when there is nothing to run.
        let message = if queue.is_empty() {
            match control_rx.recv() {
                Ok(message) => Some(message),
                Err(_) => return Ok(()),
            }
        } else {
            control_rx.try_recv().ok()
        };
        if let Some(message) = message {
            match message {
                ControlMessage::Lease(lease) => {
                    if let Err(err) = lease.validate() {
                        eprintln!("campaign_worker: rejecting {lease}: {err}");
                    } else {
                        queue.push_back(lease);
                    }
                }
                ControlMessage::Revoke { lease } => {
                    if let Some(at) = queue.iter().position(|l| l.id == lease) {
                        queue.remove(at);
                        send(&stdout, &WorkerMessage::LeaseRevoked { lease })?;
                    }
                    // A running or finished lease is not returnable; the
                    // LeaseStarted/LeaseFinished already on the wire is
                    // the answer.
                }
                ControlMessage::SignatureBroadcast(signature) => signatures.push(signature),
                ControlMessage::Shutdown => return Ok(()),
            }
            continue;
        }

        let Some(lease) = queue.pop_front() else {
            continue;
        };
        send(&stdout, &WorkerMessage::LeaseStarted { lease: lease.id })?;
        let checkpoint = config
            .state_dir
            .join(format!("lease_{}_{}.json", lease.start, lease.end));
        let sink_out = Arc::clone(&stdout);
        let sink = move |event: &CampaignEvent| {
            let mut out = sink_out.lock().unwrap();
            // A broken pipe surfaces on the next protocol send; events
            // must not panic worker threads.
            let _ = writeln!(out, "{}", event.to_json_line());
            let _ = out.flush();
        };
        let outcome = Campaign::builder(space.clone(), &executor)
            .boxed_strategy(parse_strategy(&config.strategy, config.seed)?)
            .jobs(config.jobs)
            .seed(config.seed)
            .backend(config.backend)
            .snapshot_budget(config.snapshot_budget)
            .lease(lease)
            .known_signatures(signatures.iter().cloned())
            .events(&sink)
            .checkpoint(&checkpoint)
            .build()
            .run_to_completion();
        send(
            &stdout,
            &WorkerMessage::LeaseFinished {
                lease: lease.id,
                start: lease.start,
                end: lease.end,
                executed: outcome.report.executed_now,
                records: outcome.report.records.len(),
            },
        )?;
    }
}
