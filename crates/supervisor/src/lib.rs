//! Distributed campaign supervision: elastic shard workers, a live
//! event transport, and lease-grained work stealing.
//!
//! `lfi_campaign` can shard a campaign across processes, but the shards
//! are static: a fixed round-robin slice each, no rebalancing, and a
//! dead shard means a manual re-run. This crate adds the missing
//! control plane on top of the campaign crate's leases and wire
//! formats:
//!
//! * [`plan`] — [`SpaceSpec`], the portable fault-space description
//!   supervisor and workers must agree on (plan-hash handshake);
//! * [`protocol`] — [`WorkerMessage`], the worker→supervisor half of
//!   the JSONL pipe protocol (the supervisor→worker half is
//!   [`ControlMessage`](lfi_campaign::ControlMessage), and campaign
//!   events ride the same pipe);
//! * [`worker`] — [`run_worker`], the lease-serving loop behind the
//!   `campaign_worker` bin;
//! * [`supervisor`] — [`run_supervised`], the scheduler behind the
//!   `campaign_supervisor` bin: unit-range leases, two-deep per-worker
//!   pipelines, work stealing via revocation, heartbeat-monitored
//!   workers with checkpoint-resuming restarts, first-seen crash
//!   signature broadcast, and the final lease merge.
//!
//! The recovery guarantee, asserted end-to-end in this crate's tests:
//! SIGKILL a worker mid-lease and the merged report is byte-identical
//! to the unsharded run (for history-independent strategies), with
//! re-execution bounded by the units of the leases that were in flight
//! on the dead worker.

pub mod plan;
pub mod protocol;
pub mod supervisor;
pub mod worker;

pub use plan::{parse_strategy, SpaceSpec, TABLE1_BFT_FUNCTIONS, TABLE1_TARGETS};
pub use protocol::WorkerMessage;
pub use supervisor::{run_supervised, sibling_worker_bin, SupervisedOutcome, SupervisorOptions};
pub use worker::{run_worker, WorkerConfig};
