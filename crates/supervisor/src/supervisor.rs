//! The campaign supervisor: elastic shard workers under one scheduler.
//!
//! [`run_supervised`] partitions a fault space into unit-range leases
//! (much finer than a [`ShardSpec`](lfi_campaign::ShardSpec) slice),
//! spawns `workers` shard worker processes, and drives them over the
//! JSONL pipe protocol:
//!
//! * **Leasing** — every worker keeps a two-deep pipeline (one running
//!   lease, one queued); finished leases pull the next pending range, so
//!   fast workers naturally drain more of the pool.
//! * **Work stealing** — when the pool runs dry, an idle worker steals a
//!   *queued* (never started) lease from a busy sibling via
//!   [`ControlMessage::Revoke`]; a revoke that loses the race to
//!   `LeaseStarted` is simply cancelled.
//! * **Failure recovery** — a worker that dies (or stops talking past
//!   the heartbeat timeout) has its unexpired leases reclaimed and its
//!   process respawned. Lease checkpoints are keyed by *range*, so the
//!   next holder resumes the dead worker's file: re-execution is bounded
//!   by the units of the lease that was actually in flight at the kill.
//! * **Signature broadcast** — the first time any worker reports a crash
//!   signature, the supervisor broadcasts it to every other worker; each
//!   shard's adaptive strategy then learns from the global campaign, not
//!   just its own slice.
//!
//! When every lease is done the supervisor merges the per-lease
//! checkpoint files with
//! [`CampaignReport::merge_leases`](lfi_campaign::CampaignReport) — for
//! history-independent strategies the result is byte-identical to the
//! unsharded run, kills and steals included.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::thread;
use std::time::{Duration, Instant};

use lfi_campaign::{
    Campaign, CampaignEvent, CampaignReport, CampaignState, ControlMessage, CrashSignature,
    ExecBackend, Lease, LeaseOutcome, StandardExecutor, DEFAULT_SNAPSHOT_BUDGET,
};
use lfi_telemetry::{Counter, LineFramer, MetricsSnapshot, Telemetry};

use crate::plan::{parse_strategy, SpaceSpec};
use crate::protocol::WorkerMessage;

/// Outstanding leases per worker: one running plus one queued, so a
/// worker never idles waiting for the next grant.
const PIPELINE_DEPTH: usize = 2;

/// How long the shutdown phase waits for a worker to exit cleanly
/// before killing it.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(10);

/// Configuration of one supervised campaign.
#[derive(Debug, Clone)]
pub struct SupervisorOptions {
    /// The fault space, shipped to every worker as flags.
    pub spec: SpaceSpec,
    /// Strategy name (see [`parse_strategy`]).
    pub strategy: String,
    /// Worker processes to keep running.
    pub workers: usize,
    /// Worker threads per worker process.
    pub jobs: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Execution backend inside each worker.
    pub backend: ExecBackend,
    /// Snapshot-tree byte budget per worker (snapshot backend only).
    pub snapshot_budget: u64,
    /// Fault points per lease.
    pub lease_points: usize,
    /// Directory of per-lease checkpoint files (created if missing).
    pub state_dir: PathBuf,
    /// The `campaign_worker` binary to spawn.
    pub worker_bin: PathBuf,
    /// A worker with granted leases that stays silent this long is
    /// declared hung, killed, and restarted.
    pub heartbeat_timeout: Duration,
    /// Total worker restarts the run tolerates before leaving a dead
    /// slot empty (its leases migrate to the survivors).
    pub max_restarts: usize,
    /// Chaos hook for recovery tests and CI smoke: once this many units
    /// have finished campaign-wide, SIGKILL one worker that has a lease
    /// in flight.
    pub chaos_kill_after_units: Option<usize>,
    /// Stream the merged (all-workers) event view to this JSONL file.
    pub events_jsonl: Option<PathBuf>,
}

impl SupervisorOptions {
    /// Stock options: 2 workers, 1 job each, exhaustive, fresh backend,
    /// 8-point leases, 30 s heartbeat timeout, restarts bounded by the
    /// worker count. `worker_bin` defaults to the `campaign_worker`
    /// sibling of the current executable when one exists.
    pub fn new(spec: SpaceSpec, state_dir: impl Into<PathBuf>) -> SupervisorOptions {
        SupervisorOptions {
            spec,
            strategy: "exhaustive".to_string(),
            workers: 2,
            jobs: 1,
            seed: 7,
            backend: ExecBackend::Fresh,
            snapshot_budget: DEFAULT_SNAPSHOT_BUDGET,
            lease_points: 8,
            state_dir: state_dir.into(),
            worker_bin: sibling_worker_bin().unwrap_or_else(|| PathBuf::from("campaign_worker")),
            heartbeat_timeout: Duration::from_secs(30),
            max_restarts: 2,
            chaos_kill_after_units: None,
            events_jsonl: None,
        }
    }
}

/// The `campaign_worker` binary next to the currently running
/// executable, if present — how the supervisor bin and the bench harness
/// find their worker without configuration.
pub fn sibling_worker_bin() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let candidate = exe
        .parent()?
        .join(format!("campaign_worker{}", std::env::consts::EXE_SUFFIX));
    candidate.is_file().then_some(candidate)
}

/// What a supervised campaign produced, with the scheduler's own
/// accounting alongside the merged report.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// The merged report: records and triage over the whole space.
    pub report: CampaignReport,
    /// The plan tag every lease ran under (`fingerprint@plan-hash`).
    pub plan_tag: String,
    /// Fault points of the space.
    pub total_points: usize,
    /// Canonical units of the space.
    pub total_units: usize,
    /// Distinct crash signatures observed live (first-seen broadcasts).
    pub distinct_signatures: usize,
    /// Leases granted, initial assignment and reassignment included.
    pub leases_issued: u64,
    /// Queued leases revoked from a busy worker and re-granted to an
    /// idle one.
    pub leases_stolen: u64,
    /// Leases reclaimed from dead or hung workers.
    pub leases_expired: u64,
    /// Worker processes respawned after a death or hang.
    pub worker_restarts: u64,
    /// Distinct crash signatures broadcast to sibling workers.
    pub signatures_broadcast: u64,
    /// Units that finished more than once (the re-execution cost of
    /// recovery; bounded by `killed_in_flight_units`).
    pub re_executed_units: usize,
    /// Units of leases that were actually in flight on workers at the
    /// moment those workers died — the recovery re-execution bound.
    pub killed_in_flight_units: usize,
    /// The supervisor's own metrics registry snapshot.
    pub metrics: MetricsSnapshot,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Pending,
    Offered { worker: usize, grant: u64 },
    Running { worker: usize, grant: u64 },
    Revoking { worker: usize, grant: u64 },
    Done,
}

impl SlotState {
    fn holder(self) -> Option<usize> {
        match self {
            SlotState::Offered { worker, .. }
            | SlotState::Running { worker, .. }
            | SlotState::Revoking { worker, .. } => Some(worker),
            SlotState::Pending | SlotState::Done => None,
        }
    }
}

struct LeaseSlot {
    start: usize,
    end: usize,
    units: usize,
    state: SlotState,
}

struct WorkerSlot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Reader-thread generation: lines from a previous incarnation of
    /// this slot are discarded by generation mismatch.
    generation: u64,
    last_seen: Instant,
    greeted: bool,
    alive: bool,
}

enum Inbox {
    Line {
        worker: usize,
        generation: u64,
        line: String,
    },
    Eof {
        worker: usize,
        generation: u64,
    },
}

struct SupervisorCounters {
    leases_issued: Counter,
    leases_stolen: Counter,
    leases_expired: Counter,
    worker_restarts: Counter,
    signatures_broadcast: Counter,
}

struct Supervisor {
    options: SupervisorOptions,
    expected_plan: String,
    total_points: usize,
    total_units: usize,
    slots: Vec<LeaseSlot>,
    pending: VecDeque<usize>,
    grants: HashMap<u64, usize>,
    next_grant: u64,
    workers: Vec<WorkerSlot>,
    tx: Sender<Inbox>,
    rx: Receiver<Inbox>,
    seen_units: BTreeSet<usize>,
    signatures: BTreeSet<CrashSignature>,
    units_done: usize,
    re_executed: usize,
    killed_in_flight: usize,
    restarts_used: usize,
    chaos_armed: Option<usize>,
    shutting_down: bool,
    merged_events: Option<File>,
    telemetry: Telemetry,
    counters: SupervisorCounters,
}

/// Run one supervised campaign to completion and merge the result.
pub fn run_supervised(options: &SupervisorOptions) -> Result<SupervisedOutcome, String> {
    if options.workers == 0 {
        return Err("supervisor needs at least one worker".to_string());
    }
    if options.lease_points == 0 {
        return Err("lease size must be at least one fault point".to_string());
    }
    parse_strategy(&options.strategy, options.seed)?;
    fs::create_dir_all(&options.state_dir)
        .map_err(|err| format!("create state dir {}: {err}", options.state_dir.display()))?;

    // Build the space in-process: it sizes the leases and pins the plan
    // hash every worker must echo back.
    let (expected_plan, total_points, total_units, slots) = {
        let executor = StandardExecutor::new(&options.spec.target_names());
        let space = options.spec.build(&executor);
        let probe = Campaign::builder(space, &executor)
            .seed(options.seed)
            .build();
        let campaign = probe.campaign();
        let total_points = campaign.space().len();
        if total_points == 0 {
            return Err("the fault space is empty; nothing to lease".to_string());
        }
        let mut slots = Vec::new();
        let mut start = 0;
        while start < total_points {
            let end = (start + options.lease_points).min(total_points);
            slots.push(LeaseSlot {
                start,
                end,
                units: campaign.lease_units(Lease { id: 0, start, end }),
                state: SlotState::Pending,
            });
            start = end;
        }
        (
            format!("{:016x}", campaign.plan_hash()),
            total_points,
            campaign.total_units(),
            slots,
        )
    };

    let merged_events = match &options.events_jsonl {
        Some(path) => Some(
            File::create(path)
                .map_err(|err| format!("create event stream {}: {err}", path.display()))?,
        ),
        None => None,
    };

    let telemetry = Telemetry::new();
    let counters = SupervisorCounters {
        leases_issued: telemetry.counter("supervisor.leases_issued"),
        leases_stolen: telemetry.counter("supervisor.leases_stolen"),
        leases_expired: telemetry.counter("supervisor.leases_expired"),
        worker_restarts: telemetry.counter("supervisor.worker_restarts"),
        signatures_broadcast: telemetry.counter("supervisor.signatures_broadcast"),
    };
    let (tx, rx) = mpsc::channel();
    let pending = (0..slots.len()).collect();
    let mut supervisor = Supervisor {
        options: options.clone(),
        expected_plan,
        total_points,
        total_units,
        slots,
        pending,
        grants: HashMap::new(),
        next_grant: 1,
        workers: Vec::new(),
        tx,
        rx,
        seen_units: BTreeSet::new(),
        signatures: BTreeSet::new(),
        units_done: 0,
        re_executed: 0,
        killed_in_flight: 0,
        restarts_used: 0,
        chaos_armed: options.chaos_kill_after_units,
        shutting_down: false,
        merged_events,
        telemetry,
        counters,
    };
    supervisor.run()
}

impl Supervisor {
    fn run(&mut self) -> Result<SupervisedOutcome, String> {
        for index in 0..self.options.workers {
            self.workers.push(WorkerSlot {
                child: None,
                stdin: None,
                generation: 0,
                last_seen: Instant::now(),
                greeted: false,
                alive: false,
            });
            self.spawn_worker(index)?;
        }

        while !self.all_done() {
            match self.rx.recv_timeout(Duration::from_millis(25)) {
                Ok(Inbox::Line {
                    worker,
                    generation,
                    line,
                }) => self.handle_line(worker, generation, &line)?,
                Ok(Inbox::Eof { worker, generation }) => {
                    if self.workers[worker].generation == generation {
                        self.handle_death(worker, "stdout closed")?;
                    }
                }
                // The supervisor holds its own sender, so the channel
                // never disconnects; a timeout is just a tick.
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
            }
            self.tick()?;
        }

        self.shutdown();
        self.merge()
    }

    fn all_done(&self) -> bool {
        self.slots.iter().all(|s| s.state == SlotState::Done)
    }

    fn spawn_worker(&mut self, index: usize) -> Result<(), String> {
        let options = &self.options;
        let mut child = Command::new(&options.worker_bin)
            .args(options.spec.to_args())
            .arg("--strategy")
            .arg(&options.strategy)
            .arg("--jobs")
            .arg(options.jobs.to_string())
            .arg("--seed")
            .arg(options.seed.to_string())
            .arg("--backend")
            .arg(options.backend.to_string())
            .arg("--snapshot-budget")
            .arg(options.snapshot_budget.to_string())
            .arg("--state-dir")
            .arg(&options.state_dir)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|err| format!("spawn worker {}: {err}", options.worker_bin.display()))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");

        let slot = &mut self.workers[index];
        slot.generation += 1;
        slot.child = Some(child);
        slot.stdin = Some(stdin);
        slot.last_seen = Instant::now();
        slot.greeted = false;
        slot.alive = true;
        let generation = slot.generation;
        let tx = self.tx.clone();
        thread::spawn(move || read_worker_lines(index, generation, stdout, tx));
        Ok(())
    }

    fn handle_line(&mut self, worker: usize, generation: u64, line: &str) -> Result<(), String> {
        if self.workers[worker].generation != generation || !self.workers[worker].alive {
            return Ok(());
        }
        self.workers[worker].last_seen = Instant::now();
        let message = match WorkerMessage::from_json_line(line) {
            Ok(message) => message,
            Err(err) => {
                eprintln!("supervisor: worker {worker}: undecodable line ({err}): {line}");
                return Ok(());
            }
        };
        match message {
            WorkerMessage::Hello { plan, .. } => {
                if plan != self.expected_plan {
                    return Err(format!(
                        "worker {worker} enumerates plan {plan}, supervisor has {}: \
                         fault space or workload suites differ between the processes",
                        self.expected_plan
                    ));
                }
                self.workers[worker].greeted = true;
                self.top_up(worker);
            }
            WorkerMessage::LeaseStarted { lease } => {
                if let Some(&slot) = self.grants.get(&lease) {
                    match self.slots[slot].state {
                        SlotState::Offered { worker: w, grant } if w == worker => {
                            self.slots[slot].state = SlotState::Running { worker: w, grant };
                        }
                        // The revoke lost the race: the lease runs where
                        // it started.
                        SlotState::Revoking { worker: w, grant } if w == worker => {
                            self.slots[slot].state = SlotState::Running { worker: w, grant };
                        }
                        _ => {}
                    }
                }
            }
            WorkerMessage::LeaseFinished { lease, .. } => {
                if let Some(&slot) = self.grants.get(&lease) {
                    if self.slots[slot].state.holder() == Some(worker) {
                        self.slots[slot].state = SlotState::Done;
                        self.top_up(worker);
                    }
                }
            }
            WorkerMessage::LeaseRevoked { lease } => {
                if let Some(&slot) = self.grants.get(&lease) {
                    if let SlotState::Revoking { worker: w, .. } = self.slots[slot].state {
                        if w == worker {
                            self.slots[slot].state = SlotState::Pending;
                            self.pending.push_front(slot);
                            self.counters.leases_stolen.inc();
                            // An idle sibling picks it up on the next
                            // tick's top-up round.
                        }
                    }
                }
            }
            WorkerMessage::Event(event) => self.handle_event(&event, line),
        }
        Ok(())
    }

    fn handle_event(&mut self, event: &CampaignEvent, line: &str) {
        if let Some(file) = &mut self.merged_events {
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
        match event {
            CampaignEvent::UnitFinished { record, .. } => {
                self.units_done += 1;
                if !self.seen_units.insert(record.unit) {
                    self.re_executed += 1;
                }
                self.maybe_fire_chaos();
            }
            CampaignEvent::CrashFound(signature) if self.signatures.insert(signature.clone()) => {
                self.broadcast(signature);
            }
            _ => {}
        }
    }

    /// Send a first-seen signature to every worker (the originator
    /// already knows it and suppresses re-announcement of seeded
    /// signatures, so the blanket send is idempotent).
    fn broadcast(&mut self, signature: &CrashSignature) {
        self.counters.signatures_broadcast.inc();
        let message = ControlMessage::SignatureBroadcast(signature.clone());
        for worker in 0..self.workers.len() {
            if self.workers[worker].alive && self.workers[worker].greeted {
                self.send_control(worker, &message);
            }
        }
    }

    fn maybe_fire_chaos(&mut self) {
        let Some(threshold) = self.chaos_armed else {
            return;
        };
        if self.units_done < threshold {
            return;
        }
        let victim = (0..self.workers.len()).find(|&w| {
            self.workers[w].alive
                && self
                    .slots
                    .iter()
                    .any(|s| matches!(s.state, SlotState::Running { worker, .. } if worker == w))
        });
        let Some(victim) = victim else {
            // Nobody has a lease in flight right now; stay armed.
            return;
        };
        self.chaos_armed = None;
        eprintln!("supervisor: chaos hook: killing worker {victim} mid-lease");
        if let Some(child) = &mut self.workers[victim].child {
            let _ = child.kill();
        }
        // The death is observed through the usual EOF path, so the
        // accounting (reclaim, expire, restart) stays on one code path.
    }

    fn handle_death(&mut self, worker: usize, why: &str) -> Result<(), String> {
        if self.shutting_down || !self.workers[worker].alive {
            return Ok(());
        }
        self.workers[worker].alive = false;
        self.workers[worker].stdin = None;
        if let Some(mut child) = self.workers[worker].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        eprintln!("supervisor: worker {worker} died ({why}); reclaiming its leases");

        for index in 0..self.slots.len() {
            if self.slots[index].state.holder() != Some(worker) {
                continue;
            }
            if matches!(self.slots[index].state, SlotState::Running { .. }) {
                // The in-flight lease bounds recovery re-execution:
                // completed-and-checkpointed units are resumed, so at
                // most this lease's units run twice.
                self.killed_in_flight += self.slots[index].units;
            }
            self.slots[index].state = SlotState::Pending;
            self.pending.push_front(index);
            self.counters.leases_expired.inc();
        }

        if self.all_done() {
            return Ok(());
        }
        if self.restarts_used < self.options.max_restarts {
            self.restarts_used += 1;
            self.counters.worker_restarts.inc();
            self.spawn_worker(worker)?;
        } else if self.workers.iter().all(|w| !w.alive) {
            return Err(format!(
                "every worker is dead (restart budget {} exhausted) with {} leases unfinished",
                self.options.max_restarts,
                self.slots
                    .iter()
                    .filter(|s| s.state != SlotState::Done)
                    .count()
            ));
        }
        Ok(())
    }

    fn tick(&mut self) -> Result<(), String> {
        // Reap deaths the reader thread has not surfaced yet.
        for worker in 0..self.workers.len() {
            if !self.workers[worker].alive {
                continue;
            }
            let exited = match &mut self.workers[worker].child {
                Some(child) => child.try_wait().map(|s| s.is_some()).unwrap_or(true),
                None => false,
            };
            if exited {
                self.handle_death(worker, "process exited")?;
                continue;
            }
            // Hang detection: granted leases but no traffic.
            let silent_for = self.workers[worker].last_seen.elapsed();
            let has_leases = self.slots.iter().any(|s| s.state.holder() == Some(worker));
            if has_leases && silent_for > self.options.heartbeat_timeout {
                self.handle_death(worker, &format!("no heartbeat for {:.1?}", silent_for))?;
            }
        }
        for worker in 0..self.workers.len() {
            self.top_up(worker);
        }
        self.steal();
        Ok(())
    }

    fn assigned_count(&self, worker: usize) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state.holder() == Some(worker))
            .count()
    }

    /// Keep `worker`'s pipeline full from the pending pool.
    fn top_up(&mut self, worker: usize) {
        while self.workers[worker].alive
            && self.workers[worker].greeted
            && self.assigned_count(worker) < PIPELINE_DEPTH
        {
            let Some(slot) = self.pending.pop_front() else {
                return;
            };
            let grant = self.next_grant;
            self.next_grant += 1;
            self.grants.insert(grant, slot);
            self.slots[slot].state = SlotState::Offered { worker, grant };
            let lease = Lease {
                id: grant,
                start: self.slots[slot].start,
                end: self.slots[slot].end,
            };
            self.counters.leases_issued.inc();
            if !self.send_control(worker, &ControlMessage::Lease(lease)) {
                // Broken pipe: the EOF path reclaims the lease.
                return;
            }
        }
    }

    /// When the pool is dry, revoke queued (never started) leases from
    /// busy workers on behalf of idle ones.
    fn steal(&mut self) {
        if !self.pending.is_empty() {
            return;
        }
        let idle: Vec<usize> = (0..self.workers.len())
            .filter(|&w| {
                self.workers[w].alive && self.workers[w].greeted && self.assigned_count(w) == 0
            })
            .collect();
        for _ in idle {
            let victim_slot = (0..self.slots.len()).find(|&i| {
                match self.slots[i].state {
                    // Only steal from a worker that is also running
                    // something: its queued lease would otherwise wait a
                    // full lease duration.
                    SlotState::Offered { worker, .. } => self.slots.iter().any(
                        |s| matches!(s.state, SlotState::Running { worker: r, .. } if r == worker),
                    ),
                    _ => false,
                }
            });
            let Some(slot) = victim_slot else { return };
            let SlotState::Offered { worker, grant } = self.slots[slot].state else {
                return;
            };
            self.slots[slot].state = SlotState::Revoking { worker, grant };
            self.send_control(worker, &ControlMessage::Revoke { lease: grant });
        }
    }

    /// Write one control line to a worker; false on a broken pipe (the
    /// death is handled by the EOF path, not here).
    fn send_control(&mut self, worker: usize, message: &ControlMessage) -> bool {
        let Some(stdin) = &mut self.workers[worker].stdin else {
            return false;
        };
        writeln!(stdin, "{}", message.to_json_line())
            .and_then(|()| stdin.flush())
            .is_ok()
    }

    fn shutdown(&mut self) {
        self.shutting_down = true;
        for worker in 0..self.workers.len() {
            if self.workers[worker].alive {
                self.send_control(worker, &ControlMessage::Shutdown);
            }
            // Dropping stdin EOFs the worker even if the shutdown line
            // was lost.
            self.workers[worker].stdin = None;
        }
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        for worker in &mut self.workers {
            let Some(child) = &mut worker.child else {
                continue;
            };
            loop {
                match child.try_wait() {
                    Ok(Some(_)) | Err(_) => break,
                    Ok(None) if Instant::now() >= deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => thread::sleep(Duration::from_millis(10)),
                }
            }
            worker.alive = false;
        }
    }

    fn merge(&mut self) -> Result<SupervisedOutcome, String> {
        let mut outcomes = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let path = self
                .options
                .state_dir
                .join(format!("lease_{}_{}.json", slot.start, slot.end));
            let text = fs::read_to_string(&path)
                .map_err(|err| format!("read lease checkpoint {}: {err}", path.display()))?;
            let state = CampaignState::from_json(&text)
                .map_err(|err| format!("parse lease checkpoint {}: {err}", path.display()))?;
            let outcome = LeaseOutcome::from_state(&state)
                .map_err(|err| format!("lease checkpoint {}: {err}", path.display()))?;
            outcomes.push(outcome);
        }
        let plan_tag = outcomes
            .first()
            .map(|o| o.plan_tag().to_string())
            .unwrap_or_default();
        let report = CampaignReport::merge_leases(outcomes, self.total_points)
            .map_err(|err| format!("merge leases: {err}"))?;
        Ok(SupervisedOutcome {
            report,
            plan_tag,
            total_points: self.total_points,
            total_units: self.total_units,
            distinct_signatures: self.signatures.len(),
            leases_issued: self.counters.leases_issued.value(),
            leases_stolen: self.counters.leases_stolen.value(),
            leases_expired: self.counters.leases_expired.value(),
            worker_restarts: self.counters.worker_restarts.value(),
            signatures_broadcast: self.counters.signatures_broadcast.value(),
            re_executed_units: self.re_executed,
            killed_in_flight_units: self.killed_in_flight,
            metrics: self.telemetry.snapshot(),
        })
    }
}

/// Reader-thread body: frame a worker's stdout into lines and forward
/// them (with the worker's generation, so a restarted slot never sees
/// its predecessor's tail).
fn read_worker_lines(worker: usize, generation: u64, mut stdout: ChildStdout, tx: Sender<Inbox>) {
    let mut framer = LineFramer::new();
    let mut buf = [0u8; 8192];
    loop {
        match stdout.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                for line in framer.push_bytes(&buf[..n]) {
                    if tx
                        .send(Inbox::Line {
                            worker,
                            generation,
                            line,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            }
        }
    }
    let _ = tx.send(Inbox::Eof { worker, generation });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(start: usize, end: usize, state: SlotState) -> LeaseSlot {
        LeaseSlot {
            start,
            end,
            units: (end - start) * 2,
            state,
        }
    }

    #[test]
    fn slot_states_report_their_holder() {
        assert_eq!(SlotState::Pending.holder(), None);
        assert_eq!(SlotState::Done.holder(), None);
        assert_eq!(
            SlotState::Offered {
                worker: 2,
                grant: 9
            }
            .holder(),
            Some(2)
        );
        assert_eq!(
            SlotState::Running {
                worker: 1,
                grant: 9
            }
            .holder(),
            Some(1)
        );
        assert_eq!(
            SlotState::Revoking {
                worker: 0,
                grant: 9
            }
            .holder(),
            Some(0)
        );
    }

    #[test]
    fn lease_slots_tile_like_the_carving_loop() {
        // The same loop run_supervised uses, over 11 points in chunks
        // of 4: 0..4, 4..8, 8..11.
        let total_points = 11;
        let lease_points = 4;
        let mut slots = Vec::new();
        let mut start = 0;
        while start < total_points {
            let end = (start + lease_points).min(total_points);
            slots.push(slot(start, end, SlotState::Pending));
            start = end;
        }
        assert_eq!(
            slots.iter().map(|s| (s.start, s.end)).collect::<Vec<_>>(),
            vec![(0, 4), (4, 8), (8, 11)]
        );
        assert_eq!(slots.first().unwrap().state, SlotState::Pending);
    }
}
