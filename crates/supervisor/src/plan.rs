//! What a supervised campaign runs over: the fault-space specification
//! the supervisor and every worker must agree on.
//!
//! A [`SpaceSpec`] is the portable description of one fault space —
//! which targets to enumerate, which functions to keep per target, and
//! the baseline-reachability seed. The supervisor builds the space
//! in-process (to size leases and pin the plan hash) and ships the same
//! spec to each worker as command-line flags; the worker rebuilds it and
//! echoes its plan hash back in the `Hello` handshake, so a supervisor
//! and a worker that would enumerate different spaces fail loudly
//! instead of merging nonsense.

use lfi_campaign::{
    CoverageAdaptive, Exhaustive, FaultSpace, InjectionGuided, RandomSample, StandardExecutor,
    Strategy,
};
use lfi_targets::standard_controller;

/// The targets of the Table 1 hunt. Mirrors `lfi_bench`'s hunt targets;
/// the digest-parity test over there keeps the two in lockstep.
pub const TABLE1_TARGETS: [&str; 4] = ["bind-lite", "git-lite", "db-lite", "bft-lite"];

/// The bft-lite functions the Table 1 hunt injects into (a full cluster
/// run per fault point is expensive; the paper's PBFT bugs live behind
/// these).
pub const TABLE1_BFT_FUNCTIONS: [&str; 6] =
    ["recvfrom", "sendto", "fopen", "fwrite", "open", "close"];

/// A portable fault-space description: targets, per-target function
/// allowlists, and the baseline seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSpec {
    /// Targets to enumerate, in order (order is part of plan identity).
    pub targets: Vec<String>,
    /// Per-target function allowlists; a target not listed here keeps
    /// every profiled function.
    pub retain: Vec<(String, Vec<String>)>,
    /// Seed of the baseline (no-injection) reachability runs.
    pub baseline_seed: u64,
}

impl SpaceSpec {
    /// An empty spec with the stock baseline seed; callers add targets.
    pub fn new() -> SpaceSpec {
        SpaceSpec {
            targets: Vec::new(),
            retain: Vec::new(),
            baseline_seed: 7,
        }
    }

    /// The Table 1 hunt space: all four evaluation targets, with
    /// bft-lite restricted to its harness functions. Must enumerate the
    /// exact space `lfi_bench::table1_fault_space` does.
    pub fn table1() -> SpaceSpec {
        SpaceSpec {
            targets: TABLE1_TARGETS.iter().map(|t| t.to_string()).collect(),
            retain: vec![(
                "bft-lite".to_string(),
                TABLE1_BFT_FUNCTIONS.iter().map(|f| f.to_string()).collect(),
            )],
            baseline_seed: 7,
        }
    }

    /// The target list as borrowed names, for executor APIs.
    pub fn target_names(&self) -> Vec<&str> {
        self.targets.iter().map(String::as_str).collect()
    }

    /// Enumerate, filter, and annotate the space this spec describes.
    /// Deterministic: the same spec against the same executor build
    /// yields the same space (and therefore the same plan hash) in every
    /// process.
    pub fn build(&self, executor: &StandardExecutor) -> FaultSpace {
        let profile = standard_controller().profile_libraries();
        let mut space = executor.fault_space(&self.target_names(), &profile);
        for (target, functions) in &self.retain {
            space.retain(|p| p.target != *target || functions.contains(&p.function));
        }
        executor.annotate_baseline_reachability(&mut space, self.baseline_seed);
        space
    }

    /// The spec as worker command-line flags — the inverse of what the
    /// worker bin parses, so supervisor and worker cannot drift.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = Vec::new();
        for target in &self.targets {
            args.push("--target".to_string());
            args.push(target.clone());
        }
        for (target, functions) in &self.retain {
            args.push("--retain".to_string());
            args.push(format!("{target}:{}", functions.join(",")));
        }
        args.push("--baseline-seed".to_string());
        args.push(self.baseline_seed.to_string());
        args
    }

    /// Parse one `--retain` value of the form `target:fn1,fn2,...`.
    pub fn parse_retain(value: &str) -> Result<(String, Vec<String>), String> {
        let (target, functions) = value
            .split_once(':')
            .ok_or_else(|| format!("--retain `{value}`: expected `target:fn1,fn2,...`"))?;
        let functions: Vec<String> = functions
            .split(',')
            .filter(|f| !f.is_empty())
            .map(|f| f.to_string())
            .collect();
        if target.is_empty() || functions.is_empty() {
            return Err(format!("--retain `{value}`: expected `target:fn1,fn2,...`"));
        }
        Ok((target.to_string(), functions))
    }
}

impl Default for SpaceSpec {
    fn default() -> Self {
        SpaceSpec::new()
    }
}

/// Parse a strategy name into the boxed strategy every worker runs.
///
/// `exhaustive` and `guided` cover a history-independent unit set, so a
/// supervised run merges back byte-identical to the unsharded one;
/// `adaptive` prunes against lease-local history and `random:N` samples
/// the whole space, so their merged coverage is valid but need not match
/// a single-process run unit-for-unit.
pub fn parse_strategy(name: &str, seed: u64) -> Result<Box<dyn Strategy>, String> {
    match name {
        "exhaustive" => Ok(Box::new(Exhaustive)),
        "guided" => Ok(Box::new(InjectionGuided)),
        "adaptive" => Ok(Box::new(CoverageAdaptive {
            prune_saturated: true,
            ..CoverageAdaptive::default()
        })),
        other => match other.strip_prefix("random:").and_then(|n| n.parse().ok()) {
            Some(count) => Ok(Box::new(RandomSample { count, seed })),
            None => Err(format!(
                "unknown strategy `{other}` (expected exhaustive, guided, adaptive, or random:N)"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retain_values_parse_and_reject_malformed_forms() {
        assert_eq!(
            SpaceSpec::parse_retain("bft-lite:open,close").unwrap(),
            ("bft-lite".to_string(), vec!["open".into(), "close".into()])
        );
        assert!(SpaceSpec::parse_retain("no-colon").is_err());
        assert!(SpaceSpec::parse_retain(":open").is_err());
        assert!(SpaceSpec::parse_retain("bft-lite:").is_err());
    }

    #[test]
    fn specs_round_trip_through_worker_flags() {
        let spec = SpaceSpec::table1();
        let args = spec.to_args();
        // Re-parse the flag stream the way the worker bin does.
        let mut parsed = SpaceSpec::new();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let value = iter.next().expect("every spec flag takes a value");
            match flag.as_str() {
                "--target" => parsed.targets.push(value.clone()),
                "--retain" => parsed.retain.push(SpaceSpec::parse_retain(value).unwrap()),
                "--baseline-seed" => parsed.baseline_seed = value.parse().unwrap(),
                other => panic!("unexpected spec flag {other}"),
            }
        }
        assert_eq!(parsed, spec);
    }

    #[test]
    fn strategy_names_parse_to_the_hunt_strategies() {
        assert_eq!(
            parse_strategy("exhaustive", 7).unwrap().fingerprint(),
            Exhaustive.fingerprint()
        );
        assert!(parse_strategy("guided", 7).is_ok());
        assert!(parse_strategy("adaptive", 7).is_ok());
        assert!(parse_strategy("random:40", 7).is_ok());
        assert!(parse_strategy("random:x", 7).is_err());
        assert!(parse_strategy("warp", 7).is_err());
    }
}
