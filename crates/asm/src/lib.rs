//! Assembler for the LFI simulated ISA.
//!
//! Two front ends produce [`lfi_obj::Module`] binaries:
//!
//! * [`AsmBuilder`] — a programmatic builder with labels, forward references,
//!   symbol deduplication, data/BSS allocation and line-table emission. The
//!   mini-C compiler (`lfi-cc`) drives this API.
//! * [`assemble_text`] — a textual assembler for hand-written modules, used
//!   heavily by the test suites of the profiler and the call-site analyzer to
//!   construct precise binary patterns.

pub mod builder;
pub mod text;

pub use builder::{AsmBuilder, AsmError};
pub use text::{assemble_text, TextAsmError};
