//! Textual assembler.
//!
//! The textual form exists for tests and for small hand-written modules (the
//! profiler and analyzer test suites construct precise binary patterns with
//! it). The syntax mirrors the disassembly printed by `lfi-obj`:
//!
//! ```text
//! .module libdemo lib
//! .needed libc
//! .file "demo.c"
//!
//! .func my_read
//! .line 10
//!     movi r1, 3
//!     callsym read
//!     cmpi r0, -1
//!     je fail
//!     ret
//! fail:
//!     movi r0, -1
//!     tlsst errno, r0
//!     ret
//!
//! .string msg "hello"
//! .word table 1 2 3
//! .bss buffer 4096
//! ```

use std::fmt;

use lfi_arch::{errno, sys, AluOp, Cond, Insn, Reg, Word};
use lfi_obj::{Module, ModuleKind, SymKind};

use crate::builder::{AsmBuilder, AsmError};

/// Errors produced by [`assemble_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextAsmError {
    /// 1-based line number in the assembly source.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TextAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextAsmError {}

fn err(line: usize, message: impl Into<String>) -> TextAsmError {
    TextAsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, TextAsmError> {
    tok.parse::<Reg>().map_err(|e| err(line, e))
}

fn parse_imm(tok: &str, line: usize) -> Result<Word, TextAsmError> {
    let tok = tok.trim();
    if let Some(value) = errno::from_name(tok) {
        return Ok(value);
    }
    if let Some(name) = tok.strip_prefix("SYS_") {
        if let Some(num) = sys_by_name(&name.to_lowercase()) {
            return Ok(num);
        }
    }
    let (neg, digits) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = digits.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad immediate `{tok}`")))?
    } else if let Some(ch) = digits.strip_prefix('\'') {
        let ch = ch.strip_suffix('\'').unwrap_or(ch);
        let mut chars = ch.chars();
        let c = chars
            .next()
            .ok_or_else(|| err(line, "empty character literal"))?;
        c as i64
    } else {
        digits
            .parse::<i64>()
            .map_err(|_| err(line, format!("bad immediate `{tok}`")))?
    };
    Ok(if neg { -value } else { value })
}

fn sys_by_name(name: &str) -> Option<Word> {
    (sys::EXIT..=sys::TRUNCATE).find(|&n| sys::name(n) == Some(name))
}

/// Parse a `[reg+off]` or `[reg-off]` or `[reg]` memory operand.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, Word), TextAsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected memory operand, got `{tok}`")))?;
    let (reg_part, off) = if let Some(pos) = inner.rfind(['+', '-']) {
        if pos == 0 {
            (inner, 0)
        } else {
            let (r, o) = inner.split_at(pos);
            (r, parse_imm(o, line)?)
        }
    } else {
        (inner, 0)
    };
    Ok((parse_reg(reg_part.trim(), line)?, off))
}

fn unquote(tok: &str, line: usize) -> Result<String, TextAsmError> {
    let inner = tok
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected quoted string, got `{tok}`")))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => return Err(err(line, format!("bad escape `\\{other:?}`"))),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn alu_by_name(name: &str) -> Option<AluOp> {
    AluOp::ALL.iter().copied().find(|op| op.mnemonic() == name)
}

fn cond_by_name(name: &str) -> Option<Cond> {
    Cond::ALL.iter().copied().find(|c| c.mnemonic() == name)
}

/// Assemble a textual module into a [`Module`].
pub fn assemble_text(source: &str) -> Result<Module, TextAsmError> {
    let mut builder: Option<AsmBuilder> = None;
    let mut pending: Vec<(usize, String)> = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw_line.find(';') {
            // Keep semicolons inside string literals.
            Some(pos) if !raw_line[..pos].contains('"') => &raw_line[..pos],
            _ => raw_line,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix(".module") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| err(lineno, ".module needs a name"))?;
            let kind = match parts.next() {
                Some("exe") | Some("executable") | None => ModuleKind::Executable,
                Some("lib") | Some("shared") => ModuleKind::SharedLib,
                Some(other) => return Err(err(lineno, format!("unknown module kind `{other}`"))),
            };
            builder = Some(AsmBuilder::new(name, kind));
            continue;
        }

        let b = builder
            .as_mut()
            .ok_or_else(|| err(lineno, "missing .module directive"))?;

        // Directives.
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.splitn(2, char::is_whitespace);
            let directive = parts.next().unwrap_or_default();
            let args = parts.next().unwrap_or("").trim();
            match directive {
                "needed" => {
                    b.needs(args);
                }
                "file" => {
                    let path = if args.starts_with('"') {
                        unquote(args, lineno)?
                    } else {
                        args.to_string()
                    };
                    b.set_file(path);
                }
                "line" => {
                    let n = parse_imm(args, lineno)? as u32;
                    b.mark_line(n);
                }
                "func" => {
                    if args.is_empty() {
                        return Err(err(lineno, ".func needs a name"));
                    }
                    b.export_func(args);
                }
                "string" => {
                    let (name, value) = args
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| err(lineno, ".string needs a name and a value"))?;
                    let text = unquote(value.trim(), lineno)?;
                    let off = b.add_cstring(&text);
                    b.export_data(name, off, text.len() as u64 + 1);
                }
                "word" => {
                    let mut parts = args.split_whitespace();
                    let name = parts
                        .next()
                        .ok_or_else(|| err(lineno, ".word needs a name"))?;
                    let words: Result<Vec<Word>, _> = parts.map(|t| parse_imm(t, lineno)).collect();
                    let words = words?;
                    let off = b.add_words(&words);
                    b.export_data(name, off, words.len() as u64 * 8);
                }
                "bss" => {
                    let (name, size) = args
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| err(lineno, ".bss needs a name and a size"))?;
                    let size = parse_imm(size.trim(), lineno)? as u64;
                    let off = b.reserve_bss(size);
                    b.export_data(name, off, size);
                }
                other => return Err(err(lineno, format!("unknown directive `.{other}`"))),
            }
            continue;
        }

        // Labels.
        if let Some(label) = line.strip_suffix(':') {
            if label.split_whitespace().count() != 1 {
                return Err(err(lineno, format!("bad label `{label}`")));
            }
            b.bind(label.trim());
            continue;
        }

        // Instructions.
        let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (line, ""),
        };
        let ops: Vec<String> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(|s| s.trim().to_string()).collect()
        };
        let expect = |n: usize| -> Result<(), TextAsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    lineno,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        match mnemonic {
            "nop" => {
                expect(0)?;
                b.emit(Insn::Nop);
            }
            "halt" => {
                expect(0)?;
                b.emit(Insn::Halt);
            }
            "brk" => {
                expect(0)?;
                b.emit(Insn::Brk);
            }
            "ret" => {
                expect(0)?;
                b.emit(Insn::Ret);
            }
            "movi" => {
                expect(2)?;
                b.emit(Insn::MovI {
                    dst: parse_reg(&ops[0], lineno)?,
                    imm: parse_imm(&ops[1], lineno)?,
                });
            }
            "mov" => {
                expect(2)?;
                b.emit(Insn::MovR {
                    dst: parse_reg(&ops[0], lineno)?,
                    src: parse_reg(&ops[1], lineno)?,
                });
            }
            "ld" | "ld8" => {
                expect(2)?;
                let dst = parse_reg(&ops[0], lineno)?;
                let (base, off) = parse_mem(&ops[1], lineno)?;
                b.emit(if mnemonic == "ld" {
                    Insn::Load { dst, base, off }
                } else {
                    Insn::Load8 { dst, base, off }
                });
            }
            "st" | "st8" => {
                expect(2)?;
                let (base, off) = parse_mem(&ops[0], lineno)?;
                let src = parse_reg(&ops[1], lineno)?;
                b.emit(if mnemonic == "st" {
                    Insn::Store { base, off, src }
                } else {
                    Insn::Store8 { base, off, src }
                });
            }
            "lea" => {
                expect(2)?;
                let dst = parse_reg(&ops[0], lineno)?;
                let (base, off) = parse_mem(&ops[1], lineno)?;
                b.emit(Insn::Lea { dst, base, off });
            }
            "leasym" => {
                expect(2)?;
                let dst = parse_reg(&ops[0], lineno)?;
                b.lea_sym(dst, ops[1].clone(), SymKind::Data);
            }
            "leafn" => {
                expect(2)?;
                let dst = parse_reg(&ops[0], lineno)?;
                b.lea_sym(dst, ops[1].clone(), SymKind::Func);
            }
            "push" => {
                expect(1)?;
                b.emit(Insn::Push {
                    src: parse_reg(&ops[0], lineno)?,
                });
            }
            "pop" => {
                expect(1)?;
                b.emit(Insn::Pop {
                    dst: parse_reg(&ops[0], lineno)?,
                });
            }
            "neg" => {
                expect(1)?;
                b.emit(Insn::Neg {
                    dst: parse_reg(&ops[0], lineno)?,
                });
            }
            "not" => {
                expect(1)?;
                b.emit(Insn::Not {
                    dst: parse_reg(&ops[0], lineno)?,
                });
            }
            "cmp" => {
                expect(2)?;
                b.emit(Insn::Cmp {
                    a: parse_reg(&ops[0], lineno)?,
                    b: parse_reg(&ops[1], lineno)?,
                });
            }
            "cmpi" => {
                expect(2)?;
                b.emit(Insn::CmpI {
                    a: parse_reg(&ops[0], lineno)?,
                    imm: parse_imm(&ops[1], lineno)?,
                });
            }
            "jmp" => {
                expect(1)?;
                b.jmp(ops[0].clone());
            }
            "call" => {
                expect(1)?;
                b.call_local(ops[0].clone());
            }
            "callsym" => {
                expect(1)?;
                b.call_sym(ops[0].clone());
            }
            "callr" => {
                expect(1)?;
                b.emit(Insn::CallR {
                    reg: parse_reg(&ops[0], lineno)?,
                });
            }
            "tlsld" => {
                expect(2)?;
                let dst = parse_reg(&ops[0], lineno)?;
                b.tls_load(dst, ops[1].clone());
            }
            "tlsst" => {
                expect(2)?;
                let src = parse_reg(&ops[1], lineno)?;
                b.tls_store(ops[0].clone(), src);
            }
            "sys" => {
                expect(1)?;
                let num = if let Some(n) = sys_by_name(&ops[0]) {
                    n
                } else {
                    parse_imm(&ops[0], lineno)?
                };
                b.emit(Insn::Sys { num });
            }
            other => {
                // Conditional jumps (`je`, `jne`, ...), ALU reg-reg and reg-imm forms.
                if let Some(cond) = other.strip_prefix('j').and_then(cond_by_name) {
                    expect(1)?;
                    b.j(cond, ops[0].clone());
                } else if let Some(op) = other.strip_suffix('i').and_then(alu_by_name) {
                    expect(2)?;
                    b.emit(Insn::AluI {
                        op,
                        dst: parse_reg(&ops[0], lineno)?,
                        imm: parse_imm(&ops[1], lineno)?,
                    });
                } else if let Some(op) = alu_by_name(other) {
                    expect(2)?;
                    b.emit(Insn::Alu {
                        op,
                        dst: parse_reg(&ops[0], lineno)?,
                        src: parse_reg(&ops[1], lineno)?,
                    });
                } else {
                    return Err(err(lineno, format!("unknown mnemonic `{other}`")));
                }
            }
        }
        pending.clear();
    }

    let builder = builder.ok_or_else(|| err(0, "missing .module directive"))?;
    builder
        .finish()
        .map_err(|errors: Vec<AsmError>| TextAsmError {
            line: 0,
            message: errors
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        })
}

#[cfg(test)]
mod tests {
    use lfi_arch::INSN_SIZE;

    use super::*;

    const DEMO: &str = r#"
        .module libdemo lib
        .needed libc
        .file "demo.c"

        .func safe_read
        .line 5
            movi r1, 3
            callsym read
            cmpi r0, -1
            je fail
            ret
        fail:
        .line 8
            movi r0, -1
            tlsst errno, r0
            ret

        .string msg "hi\n"
        .word tbl 1 2 3
        .bss buf 64
    "#;

    #[test]
    fn assembles_a_full_module() {
        let m = assemble_text(DEMO).expect("assemble");
        assert_eq!(m.kind, ModuleKind::SharedLib);
        assert_eq!(m.needed, vec!["libc".to_string()]);
        assert_eq!(m.call_sites_of("read"), vec![INSN_SIZE]);
        assert!(m.func_export("safe_read").is_some());
        assert!(m.export("msg", SymKind::Data).is_some());
        assert!(m.export("tbl", SymKind::Data).is_some());
        assert!(m.export("buf", SymKind::Data).is_some());
        assert_eq!(m.line_for_offset(0), Some(("demo.c", 5)));
        assert_eq!(m.line_for_offset(6 * INSN_SIZE), Some(("demo.c", 8)));
        assert_eq!(m.validate(), Ok(()));
    }

    #[test]
    fn errno_and_sys_names_are_recognized() {
        let src = r#"
            .module t lib
            .func f
                movi r0, EINVAL
                sys read
                sys SYS_WRITE
                ret
        "#;
        let m = assemble_text(src).expect("assemble");
        let insns = m.decode_code();
        assert_eq!(
            insns[0].1,
            Insn::MovI {
                dst: Reg::R(0),
                imm: errno::EINVAL
            }
        );
        assert_eq!(insns[1].1, Insn::Sys { num: sys::READ });
        assert_eq!(insns[2].1, Insn::Sys { num: sys::WRITE });
    }

    #[test]
    fn memory_operands_parse_offsets() {
        let src = r#"
            .module t lib
            .func f
                ld r1, [fp-16]
                st [sp+8], r2
                lea r3, [fp+0]
                ret
        "#;
        let m = assemble_text(src).expect("assemble");
        let insns = m.decode_code();
        assert_eq!(
            insns[0].1,
            Insn::Load {
                dst: Reg::R(1),
                base: Reg::Fp,
                off: -16
            }
        );
        assert_eq!(
            insns[1].1,
            Insn::Store {
                base: Reg::Sp,
                off: 8,
                src: Reg::R(2)
            }
        );
    }

    #[test]
    fn reports_unknown_mnemonics_with_line_numbers() {
        let src = ".module t lib\n.func f\n  frobnicate r1, r2\n  ret\n";
        let e = assemble_text(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn reports_undefined_labels() {
        let src = ".module t lib\n.func f\n  jmp nowhere\n  ret\n";
        let e = assemble_text(src).unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn reports_missing_module_directive() {
        let e = assemble_text("  ret\n").unwrap_err();
        assert!(e.message.contains(".module"));
    }

    #[test]
    fn alu_mnemonics_cover_reg_and_imm_forms() {
        let src = r#"
            .module t lib
            .func f
                add r1, r2
                subi r1, 4
                shli r1, 2
                xor r1, r1
                ret
        "#;
        let m = assemble_text(src).expect("assemble");
        let insns = m.decode_code();
        assert_eq!(
            insns[0].1,
            Insn::Alu {
                op: AluOp::Add,
                dst: Reg::R(1),
                src: Reg::R(2)
            }
        );
        assert_eq!(
            insns[1].1,
            Insn::AluI {
                op: AluOp::Sub,
                dst: Reg::R(1),
                imm: 4
            }
        );
        assert_eq!(
            insns[2].1,
            Insn::AluI {
                op: AluOp::Shl,
                dst: Reg::R(1),
                imm: 2
            }
        );
    }
}
