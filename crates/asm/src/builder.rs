//! Programmatic module builder with labels, fixups and symbol management.

use std::collections::HashMap;
use std::fmt;

use lfi_arch::{Cond, Insn, Reg, Word, INSN_SIZE};
use lfi_obj::{DataReloc, Export, LineEntry, Module, ModuleKind, SymKind, SymRef};

/// Errors reported by [`AsmBuilder::finish`] or by individual emit calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or local call referenced a label that was never bound.
    UndefinedLabel(String),
    /// The same label was bound twice.
    DuplicateLabel(String),
    /// The same symbol was exported twice.
    DuplicateExport(String),
    /// The finished module failed structural validation.
    Invalid(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::DuplicateExport(n) => write!(f, "duplicate export `{n}`"),
            AsmError::Invalid(msg) => write!(f, "invalid module: {msg}"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    Jmp,
    J(Cond),
    Call,
}

#[derive(Debug, Clone)]
struct Fixup {
    insn_index: usize,
    kind: FixupKind,
    label: String,
}

/// Incremental builder for a [`Module`].
#[derive(Debug, Clone)]
pub struct AsmBuilder {
    name: String,
    kind: ModuleKind,
    needed: Vec<String>,
    insns: Vec<Insn>,
    labels: HashMap<String, u64>,
    fixups: Vec<Fixup>,
    symrefs: Vec<SymRef>,
    symref_index: HashMap<(String, SymKind), u32>,
    data: Vec<u8>,
    bss_size: u64,
    exports: Vec<Export>,
    data_relocs: Vec<DataReloc>,
    files: Vec<String>,
    line_table: Vec<LineEntry>,
    current_file: Option<u32>,
    errors: Vec<AsmError>,
}

impl AsmBuilder {
    /// Start building a module.
    pub fn new(name: impl Into<String>, kind: ModuleKind) -> AsmBuilder {
        AsmBuilder {
            name: name.into(),
            kind,
            needed: Vec::new(),
            insns: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            symrefs: Vec::new(),
            symref_index: HashMap::new(),
            data: Vec::new(),
            bss_size: 0,
            exports: Vec::new(),
            data_relocs: Vec::new(),
            files: Vec::new(),
            line_table: Vec::new(),
            current_file: None,
            errors: Vec::new(),
        }
    }

    /// Declare a library dependency (like `DT_NEEDED`).
    pub fn needs(&mut self, lib: impl Into<String>) -> &mut Self {
        let lib = lib.into();
        if !self.needed.contains(&lib) {
            self.needed.push(lib);
        }
        self
    }

    /// Byte offset of the next instruction to be emitted.
    pub fn here(&self) -> u64 {
        self.insns.len() as u64 * INSN_SIZE
    }

    /// Bind a label at the current code offset.
    pub fn bind(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        if self.labels.insert(label.clone(), self.here()).is_some() {
            self.errors.push(AsmError::DuplicateLabel(label));
        }
        self
    }

    /// Whether a label with this name has been bound already.
    pub fn is_bound(&self, label: &str) -> bool {
        self.labels.contains_key(label)
    }

    /// Append a raw instruction.
    pub fn emit(&mut self, insn: Insn) -> &mut Self {
        self.insns.push(insn);
        self
    }

    /// Append several raw instructions.
    pub fn emit_all(&mut self, insns: impl IntoIterator<Item = Insn>) -> &mut Self {
        self.insns.extend(insns);
        self
    }

    /// Emit an unconditional jump to a label (forward references allowed).
    pub fn jmp(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups.push(Fixup {
            insn_index: self.insns.len(),
            kind: FixupKind::Jmp,
            label: label.into(),
        });
        self.insns.push(Insn::Jmp { target: 0 });
        self
    }

    /// Emit a conditional jump to a label.
    pub fn j(&mut self, cond: Cond, label: impl Into<String>) -> &mut Self {
        self.fixups.push(Fixup {
            insn_index: self.insns.len(),
            kind: FixupKind::J(cond),
            label: label.into(),
        });
        self.insns.push(Insn::J { cond, target: 0 });
        self
    }

    /// Emit a direct call to a module-local label.
    pub fn call_local(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups.push(Fixup {
            insn_index: self.insns.len(),
            kind: FixupKind::Call,
            label: label.into(),
        });
        self.insns.push(Insn::Call { target: 0 });
        self
    }

    /// Intern a symbol reference, returning its index.
    pub fn symref(&mut self, name: impl Into<String>, kind: SymKind) -> u32 {
        let name = name.into();
        if let Some(&idx) = self.symref_index.get(&(name.clone(), kind)) {
            return idx;
        }
        let idx = self.symrefs.len() as u32;
        self.symrefs.push(SymRef {
            name: name.clone(),
            kind,
        });
        self.symref_index.insert((name, kind), idx);
        idx
    }

    /// Emit a call through the symbol table (imported or exported function).
    pub fn call_sym(&mut self, name: impl Into<String>) -> &mut Self {
        let sym = self.symref(name, SymKind::Func);
        self.insns.push(Insn::CallSym { sym });
        self
    }

    /// Emit `leasym dst, <symbol>`.
    pub fn lea_sym(&mut self, dst: Reg, name: impl Into<String>, kind: SymKind) -> &mut Self {
        let sym = self.symref(name, kind);
        self.insns.push(Insn::LeaSym { dst, sym });
        self
    }

    /// Emit a TLS load.
    pub fn tls_load(&mut self, dst: Reg, name: impl Into<String>) -> &mut Self {
        let sym = self.symref(name, SymKind::Tls);
        self.insns.push(Insn::TlsLoad { dst, sym });
        self
    }

    /// Emit a TLS store.
    pub fn tls_store(&mut self, name: impl Into<String>, src: Reg) -> &mut Self {
        let sym = self.symref(name, SymKind::Tls);
        self.insns.push(Insn::TlsStore { sym, src });
        self
    }

    /// Export a function starting at the current code offset, and bind a label
    /// of the same name so local calls can reach it directly.
    pub fn export_func(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        if self
            .exports
            .iter()
            .any(|e| e.name == name && e.kind == SymKind::Func)
        {
            self.errors.push(AsmError::DuplicateExport(name.clone()));
            return self;
        }
        self.exports.push(Export {
            name: name.clone(),
            kind: SymKind::Func,
            offset: self.here(),
            size: 0,
        });
        self.bind(name);
        self
    }

    /// Append raw bytes to the data section, returning their offset.
    pub fn add_data(&mut self, bytes: &[u8]) -> u64 {
        // Keep words naturally aligned so data relocations stay simple.
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        let off = self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        off
    }

    /// Append a NUL-terminated string to the data section, returning its offset.
    pub fn add_cstring(&mut self, s: &str) -> u64 {
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.add_data(&bytes)
    }

    /// Append 64-bit words to the data section, returning their offset.
    pub fn add_words(&mut self, words: &[Word]) -> u64 {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.add_data(&bytes)
    }

    /// Reserve zero-initialized space, returning its offset (which lies past
    /// the end of the initialized data section).
    pub fn reserve_bss(&mut self, size: u64) -> u64 {
        let data_end = (self.data.len() as u64 + 7) & !7;
        let off = data_end + self.bss_size;
        self.bss_size += (size + 7) & !7;
        off
    }

    /// Export a data symbol at the given data/BSS offset.
    pub fn export_data(&mut self, name: impl Into<String>, offset: u64, size: u64) -> &mut Self {
        let name = name.into();
        if self
            .exports
            .iter()
            .any(|e| e.name == name && e.kind == SymKind::Data)
        {
            self.errors.push(AsmError::DuplicateExport(name));
            return self;
        }
        self.exports.push(Export {
            name,
            kind: SymKind::Data,
            offset,
            size,
        });
        self
    }

    /// Record that the 8-byte word at `data_offset` must be patched with the
    /// absolute address of a symbol at load time.
    pub fn data_reloc(&mut self, data_offset: u64, name: impl Into<String>, kind: SymKind) {
        let sym = self.symref(name, kind);
        self.data_relocs.push(DataReloc { data_offset, sym });
    }

    /// Switch the current source file for subsequent [`AsmBuilder::mark_line`] calls.
    pub fn set_file(&mut self, path: impl Into<String>) -> &mut Self {
        let path = path.into();
        let idx = match self.files.iter().position(|f| *f == path) {
            Some(i) => i as u32,
            None => {
                self.files.push(path);
                (self.files.len() - 1) as u32
            }
        };
        self.current_file = Some(idx);
        self
    }

    /// Record that code emitted from the current offset onward originates from
    /// the given 1-based line of the current source file.
    pub fn mark_line(&mut self, line: u32) -> &mut Self {
        if let Some(file) = self.current_file {
            let offset = self.here();
            if let Some(last) = self.line_table.last_mut() {
                if last.code_offset == offset {
                    last.file = file;
                    last.line = line;
                    return self;
                }
                if last.file == file && last.line == line {
                    return self;
                }
            }
            self.line_table.push(LineEntry {
                code_offset: offset,
                file,
                line,
            });
        }
        self
    }

    /// Resolve all fixups and produce the final module.
    pub fn finish(mut self) -> Result<Module, Vec<AsmError>> {
        let mut errors = std::mem::take(&mut self.errors);
        for fixup in &self.fixups {
            let Some(&target) = self.labels.get(&fixup.label) else {
                errors.push(AsmError::UndefinedLabel(fixup.label.clone()));
                continue;
            };
            let insn = match fixup.kind {
                FixupKind::Jmp => Insn::Jmp {
                    target: target as Word,
                },
                FixupKind::J(cond) => Insn::J {
                    cond,
                    target: target as Word,
                },
                FixupKind::Call => Insn::Call {
                    target: target as Word,
                },
            };
            self.insns[fixup.insn_index] = insn;
        }
        // Fill in function export sizes now that the layout is final.
        let code_len = self.insns.len() as u64 * INSN_SIZE;
        let mut func_offsets: Vec<u64> = self
            .exports
            .iter()
            .filter(|e| e.kind == SymKind::Func)
            .map(|e| e.offset)
            .collect();
        func_offsets.sort_unstable();
        for export in &mut self.exports {
            if export.kind == SymKind::Func {
                let next = func_offsets
                    .iter()
                    .copied()
                    .find(|&o| o > export.offset)
                    .unwrap_or(code_len);
                export.size = next.saturating_sub(export.offset);
            }
        }
        let mut code = Vec::with_capacity(self.insns.len() * INSN_SIZE as usize);
        for insn in &self.insns {
            code.extend_from_slice(&insn.encode());
        }
        let module = Module {
            name: self.name,
            kind: self.kind,
            needed: self.needed,
            code,
            data: self.data,
            bss_size: self.bss_size,
            symrefs: self.symrefs,
            exports: self.exports,
            data_relocs: self.data_relocs,
            files: self.files,
            line_table: self.line_table,
        };
        if errors.is_empty() {
            if let Err(verrs) = module.validate() {
                errors.extend(verrs.into_iter().map(|e| AsmError::Invalid(e.to_string())));
            }
        }
        if errors.is_empty() {
            Ok(module)
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use lfi_arch::AluOp;

    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = AsmBuilder::new("demo", ModuleKind::Executable);
        b.export_func("main");
        b.emit(Insn::MovI {
            dst: Reg::R(0),
            imm: 0,
        });
        b.bind("loop");
        b.emit(Insn::AluI {
            op: AluOp::Add,
            dst: Reg::R(0),
            imm: 1,
        });
        b.emit(Insn::CmpI {
            a: Reg::R(0),
            imm: 10,
        });
        b.j(Cond::Lt, "loop");
        b.j(Cond::Ge, "done");
        b.bind("done");
        b.emit(Insn::Ret);
        let module = b.finish().expect("assemble");
        let insns = module.decode_code();
        // The backward branch targets the `loop` label (offset of insn 1).
        assert_eq!(
            insns[3].1,
            Insn::J {
                cond: Cond::Lt,
                target: INSN_SIZE as Word
            }
        );
        // The forward branch targets `done` (offset of the `ret`).
        assert_eq!(
            insns[4].1,
            Insn::J {
                cond: Cond::Ge,
                target: (5 * INSN_SIZE) as Word
            }
        );
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = AsmBuilder::new("demo", ModuleKind::SharedLib);
        b.export_func("f");
        b.jmp("nowhere");
        b.emit(Insn::Ret);
        let errs = b.finish().unwrap_err();
        assert!(errs.contains(&AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_and_export_are_errors() {
        let mut b = AsmBuilder::new("demo", ModuleKind::SharedLib);
        b.export_func("f");
        b.emit(Insn::Ret);
        b.bind("f");
        let errs = b.finish().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, AsmError::DuplicateLabel(_))));

        let mut b = AsmBuilder::new("demo", ModuleKind::SharedLib);
        b.export_func("f");
        b.emit(Insn::Ret);
        b.exports.push(Export {
            name: "f".into(),
            kind: SymKind::Func,
            offset: 0,
            size: 0,
        });
        assert!(b.finish().is_err());
    }

    #[test]
    fn symrefs_are_deduplicated() {
        let mut b = AsmBuilder::new("demo", ModuleKind::SharedLib);
        b.export_func("f");
        b.call_sym("read");
        b.call_sym("read");
        b.call_sym("write");
        b.tls_store("errno", Reg::R(0));
        b.tls_load(Reg::R(1), "errno");
        b.emit(Insn::Ret);
        let module = b.finish().expect("assemble");
        assert_eq!(module.symrefs.len(), 3);
        assert_eq!(module.call_sites_of("read").len(), 2);
        assert_eq!(module.call_sites_of("write").len(), 1);
    }

    #[test]
    fn data_strings_words_and_bss_are_laid_out_aligned() {
        let mut b = AsmBuilder::new("demo", ModuleKind::SharedLib);
        b.export_func("f");
        b.emit(Insn::Ret);
        let s = b.add_cstring("hi");
        let w = b.add_words(&[1, 2, 3]);
        let bss = b.reserve_bss(10);
        b.export_data("words", w, 24);
        let module = b.finish().expect("assemble");
        assert_eq!(s, 0);
        assert_eq!(w % 8, 0);
        assert!(bss >= module.data.len() as u64);
        assert_eq!(module.bss_size, 16); // rounded up to 8-byte multiple
        assert_eq!(
            &module.data[w as usize..w as usize + 8],
            &1i64.to_le_bytes()
        );
    }

    #[test]
    fn function_sizes_are_computed() {
        let mut b = AsmBuilder::new("demo", ModuleKind::SharedLib);
        b.export_func("first");
        b.emit(Insn::Nop);
        b.emit(Insn::Ret);
        b.export_func("second");
        b.emit(Insn::Ret);
        let module = b.finish().expect("assemble");
        assert_eq!(module.func_export("first").unwrap().size, 2 * INSN_SIZE);
        assert_eq!(module.func_export("second").unwrap().size, INSN_SIZE);
    }

    #[test]
    fn line_table_deduplicates_consecutive_marks() {
        let mut b = AsmBuilder::new("demo", ModuleKind::SharedLib);
        b.export_func("f");
        b.set_file("f.c");
        b.mark_line(1);
        b.emit(Insn::Nop);
        b.mark_line(1);
        b.emit(Insn::Nop);
        b.mark_line(2);
        b.emit(Insn::Ret);
        let module = b.finish().expect("assemble");
        assert_eq!(module.line_table.len(), 2);
        assert_eq!(module.line_for_offset(INSN_SIZE), Some(("f.c", 1)));
        assert_eq!(module.line_for_offset(2 * INSN_SIZE), Some(("f.c", 2)));
    }
}
