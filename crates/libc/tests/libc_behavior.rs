//! Behavioural tests of the simulated libc: compile small applications
//! against it and check the classic C semantics the target applications and
//! the paper's bugs rely on.

use lfi_cc::Compiler;
use lfi_obj::ModuleKind;
use lfi_vm::{Loader, Machine, NoHooks, ProcessConfig, RunExit};

fn run_app(src: &str, setup: impl FnOnce(&mut Machine)) -> (Machine, RunExit) {
    let exe = Compiler::new("app", ModuleKind::Executable)
        .needs("libc")
        .add_source("app.c", src)
        .compile()
        .expect("compile app");
    let mut loader = Loader::new();
    loader.add_library(lfi_libc::build());
    let image = loader.load(exe).expect("load");
    let mut machine = Machine::new(image, ProcessConfig::default());
    setup(&mut machine);
    let exit = machine.run_to_completion(&mut NoHooks);
    (machine, exit)
}

fn code(src: &str) -> i64 {
    match run_app(src, |_| {}).1 {
        RunExit::Exited(c) => c,
        other => panic!("expected exit, got {other:?}"),
    }
}

#[test]
fn malloc_returns_distinct_zeroed_blocks() {
    let src = r#"
        int main() {
            int a = malloc(32);
            int b = malloc(32);
            if (a == 0 || b == 0) { return 1; }
            if (a == b) { return 2; }
            if (*a != 0) { return 3; }
            *a = 11;
            b[1] = 22;
            return *a + b[1];
        }
    "#;
    assert_eq!(code(src), 33);
}

#[test]
fn string_functions_behave_like_c() {
    let src = r#"
        int main() {
            int buf[32];
            strcpy(buf, "hello");
            strcat(buf, ", world");
            if (strlen(buf) != 12) { return 1; }
            if (strcmp(buf, "hello, world") != 0) { return 2; }
            if (strncmp(buf, "hello, there", 7) != 0) { return 3; }
            if (strcmp("abc", "abd") >= 0) { return 4; }
            if (atoi("-472") != -472) { return 5; }
            int num[4];
            int len = itoa(90210, num);
            if (len != 5) { return 6; }
            if (strcmp(num, "90210") != 0) { return 7; }
            return 0;
        }
    "#;
    assert_eq!(code(src), 0);
}

#[test]
fn file_io_roundtrip_through_libc() {
    let src = r#"
        int main() {
            int fd = open("/tmp/out.txt", O_WRONLY | O_CREAT, 0);
            if (fd == -1) { return 1; }
            if (write(fd, "data-123", 8) != 8) { return 2; }
            if (close(fd) != 0) { return 3; }
            int rfd = open("/tmp/out.txt", O_RDONLY, 0);
            if (rfd == -1) { return 4; }
            int buf[8];
            int n = read(rfd, buf, 64);
            close(rfd);
            if (n != 8) { return 5; }
            if (strncmp(buf, "data-123", 8) != 0) { return 6; }
            return 0;
        }
    "#;
    let (machine, exit) = run_app(src, |m| m.fs_mut().mkdir_all("/tmp"));
    assert_eq!(exit, RunExit::Exited(0));
    assert_eq!(machine.fs().read_file("/tmp/out.txt").unwrap(), b"data-123");
}

#[test]
fn open_missing_file_sets_enoent() {
    let src = r#"
        int main() {
            int fd = open("/does/not/exist", O_RDONLY, 0);
            if (fd != -1) { return 99; }
            return errno;
        }
    "#;
    assert_eq!(code(src), lfi_arch::errno::ENOENT);
}

#[test]
fn fopen_fwrite_fclose_and_null_fopen_behaviour() {
    let src = r#"
        int main() {
            int f = fopen("/log/checkpoint", "w");
            if (f == 0) { return 1; }
            if (fwrite("state", 1, 5, f) != 5) { return 2; }
            fclose(f);
            // fopen of a missing directory returns NULL and sets errno.
            int g = fopen("/missing-dir/file", "w");
            if (g != 0) { return 3; }
            if (errno != ENOENT) { return 4; }
            return 0;
        }
    "#;
    let (machine, exit) = run_app(src, |m| m.fs_mut().mkdir_all("/log"));
    assert_eq!(exit, RunExit::Exited(0));
    assert_eq!(machine.fs().read_file("/log/checkpoint").unwrap(), b"state");
}

#[test]
fn fwrite_on_null_file_crashes_like_the_pbft_bug() {
    let src = r#"
        int main() {
            int f = fopen("/missing-dir/ckpt", "w");
            // Missing check for f == NULL, then fwrite dereferences it.
            fwrite("state", 1, 5, f);
            return 0;
        }
    "#;
    let (_, exit) = run_app(src, |_| {});
    assert!(matches!(exit, RunExit::Fault(f) if f.to_string().contains("null dereference")));
}

#[test]
fn opendir_readdir_list_files_and_null_dir_crashes() {
    let src = r#"
        int count_entries(int path) {
            int d = opendir(path);
            if (d == 0) { return -1; }
            int n = 0;
            while (readdir(d) != 0) { n = n + 1; }
            closedir(d);
            return n;
        }
        int main() {
            int n = count_entries("/repo");
            if (n != 3) { return 1; }
            // The unchecked variant, as in the Git bug: opendir fails and
            // readdir dereferences NULL.
            int d = opendir("/nope");
            readdir(d);
            return 0;
        }
    "#;
    let (_, exit) = run_app(src, |m| {
        m.fs_mut().mkdir_all("/repo");
        m.fs_mut().write_file("/repo/a", b"1").unwrap();
        m.fs_mut().write_file("/repo/b", b"2").unwrap();
        m.fs_mut().write_file("/repo/c", b"3").unwrap();
    });
    assert!(matches!(exit, RunExit::Fault(f) if f.to_string().contains("null dereference")));
}

#[test]
fn read_on_io_error_path_returns_eio() {
    let src = r#"
        int main() {
            int fd = open("/errmsg.sys", O_RDONLY, 0);
            if (fd == -1) { return 1; }
            int buf[8];
            int n = read(fd, buf, 64);
            if (n != -1) { return 2; }
            return errno;
        }
    "#;
    let (_, exit) = run_app(src, |m| {
        m.fs_mut().write_file("/errmsg.sys", b"messages").unwrap();
        m.fs_mut().set_io_error("/errmsg.sys");
    });
    assert_eq!(exit, RunExit::Exited(lfi_arch::errno::EIO));
}

#[test]
fn mutexes_threads_and_double_unlock_abort() {
    let ok_src = r#"
        int total = 0;
        int finished = 0;
        int worker(int n) {
            pthread_mutex_lock(1);
            total = total + n;
            pthread_mutex_unlock(1);
            pthread_mutex_lock(2);
            finished = finished + 1;
            pthread_mutex_unlock(2);
            pthread_exit();
            return 0;
        }
        int main() {
            pthread_create(__fnaddr(worker), 10);
            pthread_create(__fnaddr(worker), 32);
            while (finished < 2) { pthread_yield(); }
            return total;
        }
    "#;
    assert_eq!(code(ok_src), 42);

    let double_unlock = r#"
        int main() {
            pthread_mutex_lock(9);
            pthread_mutex_unlock(9);
            pthread_mutex_unlock(9);
            return 0;
        }
    "#;
    let (_, exit) = run_app(double_unlock, |_| {});
    assert!(matches!(exit, RunExit::Fault(f) if f.to_string().contains("mutex")));
}

#[test]
fn setenv_getenv_roundtrip() {
    let src = r#"
        int main() {
            if (setenv("PATH", "/usr/bin", 1) != 0) { return 1; }
            int buf[32];
            int n = getenv_r("PATH", buf, 200);
            if (n != 8) { return 2; }
            if (strcmp(buf, "/usr/bin") != 0) { return 3; }
            if (getenv_r("UNSET_VAR", buf, 200) != -1) { return 4; }
            return errno;
        }
    "#;
    assert_eq!(code(src), lfi_arch::errno::ENOENT);
}

#[test]
fn sockets_roundtrip_between_two_processes() {
    let server_src = r#"
        int main() {
            int s = socket(0, 0, 0);
            bind(s, 53);
            int buf[64];
            int waited = 0;
            while (waited < 20000) {
                int n = recvfrom(s, buf, 500, 0);
                if (n > 0) {
                    // Echo back to the harness (node 99, port 1000).
                    sendto(s, buf, n, 99, 1000);
                    return n;
                }
                waited = waited + 1;
            }
            return -1;
        }
    "#;
    let exe = Compiler::new("server", ModuleKind::Executable)
        .needs("libc")
        .add_source("server.c", server_src)
        .compile()
        .unwrap();
    let mut loader = Loader::new();
    loader.add_library(lfi_libc::build());
    let image = loader.load(exe).unwrap();
    let mut machine = Machine::new(image, ProcessConfig::default());
    let net = lfi_vm::NetHandle::default();
    net.bind(99, 1000);
    // Pre-bind the server's endpoint so the query sent before the server
    // starts is queued rather than dropped as unroutable.
    net.bind(0, 53);
    machine.attach_net(net.clone());
    net.send(lfi_vm::Datagram {
        from_node: 99,
        from_port: 1000,
        to_node: 0,
        to_port: 53,
        payload: b"query".to_vec(),
    });
    let exit = machine.run_to_completion(&mut NoHooks);
    assert_eq!(exit, RunExit::Exited(5));
    let reply = net.recv(99, 1000).expect("echoed datagram");
    assert_eq!(reply.payload, b"query");
}

#[test]
fn assert_true_aborts_with_message() {
    let src = r#"
        int main() {
            assert_true(1 == 1, "fine");
            assert_true(2 < 1, "math is broken");
            return 0;
        }
    "#;
    let (machine, exit) = run_app(src, |_| {});
    assert!(matches!(exit, RunExit::Fault(f) if f.to_string().contains("abort")));
    assert!(machine.output_string().contains("math is broken"));
}
