//! The simulated C library.
//!
//! This crate plays the role GNU libc plays in the paper: the shared library
//! whose API errors LFI injects at. The sources live in `csrc/*.c` (mini-C)
//! and are compiled with `lfi-cc` into a `libc` shared-library module. Every
//! wrapper follows the C convention — error return value plus `errno` set
//! through TLS — with explicit per-errno branches, so the LFI profiler can
//! recover each function's fault profile purely from the binary.

use std::sync::OnceLock;

use lfi_cc::Compiler;
use lfi_obj::{Module, ModuleKind};

/// The mini-C sources of the library, as `(file name, text)` pairs.
pub const SOURCES: &[(&str, &str)] = &[
    ("mem.c", include_str!("../csrc/mem.c")),
    ("string.c", include_str!("../csrc/string.c")),
    ("io.c", include_str!("../csrc/io.c")),
    ("stdio.c", include_str!("../csrc/stdio.c")),
    ("net.c", include_str!("../csrc/net.c")),
    ("thread.c", include_str!("../csrc/thread.c")),
    ("misc.c", include_str!("../csrc/misc.c")),
];

/// Library functions that commonly fail in practice and are therefore the
/// default interposition set used by the evaluation (the paper trims its
/// auto-generated scenarios to roughly 25 such calls for Table 3).
pub const COMMONLY_FAILING: &[&str] = &[
    "open", "close", "read", "write", "lseek", "fstat", "stat", "unlink", "mkdir", "rename",
    "readlink", "symlink", "truncate", "fcntl", "opendir", "readdir", "closedir", "malloc",
    "calloc", "fopen", "fclose", "fread", "fwrite", "sendto", "recvfrom", "setenv",
];

/// Functions whose interception is usually observational (triggers watch them
/// to maintain state) rather than an injection target.
pub const OBSERVATIONAL: &[&str] = &["pthread_mutex_lock", "pthread_mutex_unlock"];

fn compile() -> Module {
    let mut compiler = Compiler::new("libc", ModuleKind::SharedLib);
    for (file, text) in SOURCES {
        compiler = compiler.add_source(*file, *text);
    }
    compiler
        .compile()
        .expect("the bundled libc sources must always compile")
}

/// Build (and cache) the libc module. The returned module is a clone of a
/// process-wide cached build, so repeated calls are cheap.
pub fn build() -> Module {
    static CACHE: OnceLock<Module> = OnceLock::new();
    CACHE.get_or_init(compile).clone()
}

/// All function names exported by the library.
pub fn exported_functions() -> Vec<String> {
    build()
        .exports
        .iter()
        .filter(|e| e.kind == lfi_obj::SymKind::Func)
        .map(|e| e.name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libc_compiles_and_validates() {
        let module = build();
        assert_eq!(module.name, "libc");
        assert_eq!(module.kind, ModuleKind::SharedLib);
        assert_eq!(module.validate(), Ok(()));
    }

    #[test]
    fn expected_api_surface_is_exported() {
        let funcs = exported_functions();
        for required in [
            "malloc",
            "free",
            "calloc",
            "memset",
            "memcpy",
            "strlen",
            "strcmp",
            "strcpy",
            "open",
            "close",
            "read",
            "write",
            "unlink",
            "readlink",
            "opendir",
            "readdir",
            "closedir",
            "fopen",
            "fclose",
            "fread",
            "fwrite",
            "socket",
            "bind",
            "sendto",
            "recvfrom",
            "pthread_mutex_lock",
            "pthread_mutex_unlock",
            "pthread_create",
            "setenv",
            "getenv_r",
            "exit",
            "abort",
            "fcntl",
            "stat",
            "fstat",
            "itoa",
            "atoi",
        ] {
            assert!(
                funcs.iter().any(|f| f == required),
                "libc does not export `{required}`"
            );
        }
    }

    #[test]
    fn commonly_failing_set_is_a_subset_of_exports() {
        let funcs = exported_functions();
        for name in COMMONLY_FAILING {
            assert!(funcs.iter().any(|f| f == name), "`{name}` not exported");
        }
    }

    #[test]
    fn errno_is_set_via_tls_stores() {
        let module = build();
        let insns = module.decode_code();
        let tls_stores = insns
            .iter()
            .filter(|(_, i)| matches!(i, lfi_arch::Insn::TlsStore { .. }))
            .count();
        assert!(
            tls_stores > 30,
            "expected many errno stores across the library, found {tls_stores}"
        );
    }

    #[test]
    fn read_has_error_constant_comparisons() {
        // The profiler relies on seeing `cmpi` checks against negative errno
        // constants inside the wrappers.
        let module = build();
        let read = module.func_export("read").unwrap().clone();
        let insns = module.decode_code();
        let in_read: Vec<_> = insns
            .iter()
            .filter(|(off, _)| *off >= read.offset && *off < read.offset + read.size)
            .map(|(_, i)| *i)
            .collect();
        assert!(in_read.iter().any(
            |i| matches!(i, lfi_arch::Insn::CmpI { imm, .. } if *imm == -lfi_arch::errno::EINTR)
        ));
    }
}
