// Buffered-file facade. A FILE* is a heap cell holding the underlying fd,
// so fwrite/fread on a NULL FILE* fault with a null dereference — the
// crash mode of the PBFT unchecked-fopen bug reproduced in the paper.

int fopen(int path, int mode) {
    int m = __load8(mode);
    int flags = O_RDONLY;
    if (m == 'w') { flags = O_WRONLY | O_CREAT | O_TRUNC; }
    if (m == 'a') { flags = O_WRONLY | O_CREAT | O_APPEND; }
    int fd = __sys(SYS_OPEN, path, flags, 0);
    if (fd >= 0) {
        int f = malloc(8);
        if (f == 0) { errno = ENOMEM; return 0; }
        *f = fd;
        return f;
    }
    if (fd == -ENOENT) { errno = ENOENT; return 0; }
    if (fd == -EISDIR) { errno = EISDIR; return 0; }
    if (fd == -EACCES) { errno = EACCES; return 0; }
    if (fd == -EMFILE) { errno = EMFILE; return 0; }
    errno = EINVAL;
    return 0;
}

int fclose(int f) {
    int fd = *f;
    int r = __sys(SYS_CLOSE, fd);
    free(f);
    if (r >= 0) { return 0; }
    errno = EBADF;
    return -1;
}

// Returns the number of items read, like C fread.
int fread(int buf, int size, int nmemb, int f) {
    int fd = *f;
    int r = __sys(SYS_READ, fd, buf, size * nmemb);
    if (r >= 0) {
        if (size == 0) { return 0; }
        return r / size;
    }
    if (r == -EBADF) { errno = EBADF; return 0; }
    if (r == -EIO) { errno = EIO; return 0; }
    errno = EINVAL;
    return 0;
}

// Returns the number of items written, like C fwrite.
int fwrite(int buf, int size, int nmemb, int f) {
    int fd = *f;
    int r = __sys(SYS_WRITE, fd, buf, size * nmemb);
    if (r >= 0) {
        if (size == 0) { return 0; }
        return r / size;
    }
    if (r == -EBADF) { errno = EBADF; return 0; }
    if (r == -ENOSPC) { errno = ENOSPC; return 0; }
    if (r == -EIO) { errno = EIO; return 0; }
    errno = EINVAL;
    return 0;
}

// Write a NUL-terminated string to stdout.
int print(int s) {
    __sys(SYS_WRITE, STDOUT, s, strlen(s));
    return 0;
}

int puts(int s) {
    print(s);
    print("\n");
    return 0;
}

// Print an integer in decimal followed by nothing (compose with print).
int print_num(int value) {
    int buf[4];
    itoa(value, buf);
    print(buf);
    return 0;
}
