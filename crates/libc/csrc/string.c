// Byte-string routines. Strings are NUL-terminated byte sequences addressed
// with __load8/__store8; pointers are plain integers.

int strlen(int s) {
    int n = 0;
    while (__load8(s + n) != 0) {
        n = n + 1;
    }
    return n;
}

int strcpy(int dst, int src) {
    int i = 0;
    while (__load8(src + i) != 0) {
        __store8(dst + i, __load8(src + i));
        i = i + 1;
    }
    __store8(dst + i, 0);
    return dst;
}

int strcat(int dst, int src) {
    strcpy(dst + strlen(dst), src);
    return dst;
}

int strcmp(int a, int b) {
    int i = 0;
    while (1) {
        int ca = __load8(a + i);
        int cb = __load8(b + i);
        if (ca != cb) { return ca - cb; }
        if (ca == 0) { return 0; }
        i = i + 1;
    }
    return 0;
}

int strncmp(int a, int b, int n) {
    int i = 0;
    while (i < n) {
        int ca = __load8(a + i);
        int cb = __load8(b + i);
        if (ca != cb) { return ca - cb; }
        if (ca == 0) { return 0; }
        i = i + 1;
    }
    return 0;
}

int atoi(int s) {
    int i = 0;
    int sign = 1;
    int value = 0;
    if (__load8(s) == '-') {
        sign = -1;
        i = 1;
    }
    while (__load8(s + i) >= '0' && __load8(s + i) <= '9') {
        value = value * 10 + (__load8(s + i) - '0');
        i = i + 1;
    }
    return value * sign;
}

// Write the decimal form of `value` into `buf` (NUL-terminated); returns the
// number of characters written, not counting the NUL.
int itoa(int value, int buf) {
    int n = 0;
    int v = value;
    if (v < 0) {
        __store8(buf, '-');
        n = 1;
        v = 0 - v;
    }
    int div = 1;
    while (v / div >= 10) {
        div = div * 10;
    }
    while (div > 0) {
        __store8(buf + n, '0' + (v / div) % 10);
        n = n + 1;
        div = div / 10;
    }
    __store8(buf + n, 0);
    return n;
}
