// File-descriptor I/O wrappers. The kernel boundary (__sys) reports failures
// as negative errno values; each wrapper translates them into the C
// convention of -1 (or NULL) plus errno, one explicit branch per errno so
// the profiler sees a `cmpi` against each error constant.

int open(int path, int flags, int mode) {
    int fd = __sys(SYS_OPEN, path, flags, mode);
    if (fd >= 0) { return fd; }
    if (fd == -ENOENT) { errno = ENOENT; return -1; }
    if (fd == -EISDIR) { errno = EISDIR; return -1; }
    if (fd == -EACCES) { errno = EACCES; return -1; }
    if (fd == -EMFILE) { errno = EMFILE; return -1; }
    if (fd == -EIO) { errno = EIO; return -1; }
    errno = EINVAL;
    return -1;
}

int close(int fd) {
    int r = __sys(SYS_CLOSE, fd);
    if (r >= 0) { return 0; }
    errno = EBADF;
    return -1;
}

int read(int fd, int buf, int count) {
    int r = __sys(SYS_READ, fd, buf, count);
    if (r >= 0) { return r; }
    if (r == -EINTR) { errno = EINTR; return -1; }
    if (r == -EBADF) { errno = EBADF; return -1; }
    if (r == -EISDIR) { errno = EISDIR; return -1; }
    if (r == -EAGAIN) { errno = EAGAIN; return -1; }
    if (r == -EIO) { errno = EIO; return -1; }
    errno = EINVAL;
    return -1;
}

int write(int fd, int buf, int count) {
    int r = __sys(SYS_WRITE, fd, buf, count);
    if (r >= 0) { return r; }
    if (r == -EINTR) { errno = EINTR; return -1; }
    if (r == -EBADF) { errno = EBADF; return -1; }
    if (r == -EISDIR) { errno = EISDIR; return -1; }
    if (r == -ENOSPC) { errno = ENOSPC; return -1; }
    if (r == -EPIPE) { errno = EPIPE; return -1; }
    if (r == -EIO) { errno = EIO; return -1; }
    errno = EINVAL;
    return -1;
}

int lseek(int fd, int offset, int whence) {
    int r = __sys(SYS_LSEEK, fd, offset, whence);
    if (r >= 0) { return r; }
    if (r == -EBADF) { errno = EBADF; return -1; }
    errno = EINVAL;
    return -1;
}

int fstat(int fd, int buf) {
    int r = __sys(SYS_FSTAT, fd, buf);
    if (r >= 0) { return 0; }
    if (r == -EBADF) { errno = EBADF; return -1; }
    errno = EINVAL;
    return -1;
}

int stat(int path, int buf) {
    int r = __sys(SYS_STAT, path, buf);
    if (r >= 0) { return 0; }
    if (r == -ENOENT) { errno = ENOENT; return -1; }
    if (r == -ENOTDIR) { errno = ENOTDIR; return -1; }
    errno = EINVAL;
    return -1;
}

int unlink(int path) {
    int r = __sys(SYS_UNLINK, path);
    if (r >= 0) { return 0; }
    if (r == -ENOENT) { errno = ENOENT; return -1; }
    if (r == -EISDIR) { errno = EISDIR; return -1; }
    if (r == -EACCES) { errno = EACCES; return -1; }
    if (r == -EBUSY) { errno = EBUSY; return -1; }
    errno = EINVAL;
    return -1;
}

int mkdir(int path, int mode) {
    int r = __sys(SYS_MKDIR, path);
    if (r >= 0) { return 0; }
    if (r == -EEXIST) { errno = EEXIST; return -1; }
    if (r == -ENOENT) { errno = ENOENT; return -1; }
    if (r == -ENOTDIR) { errno = ENOTDIR; return -1; }
    errno = EINVAL;
    return -1;
}

int rename(int old, int new) {
    int r = __sys(SYS_RENAME, old, new);
    if (r >= 0) { return 0; }
    if (r == -ENOENT) { errno = ENOENT; return -1; }
    if (r == -EISDIR) { errno = EISDIR; return -1; }
    if (r == -EACCES) { errno = EACCES; return -1; }
    errno = EINVAL;
    return -1;
}

int readlink(int path, int buf, int cap) {
    int r = __sys(SYS_READLINK, path, buf, cap);
    if (r >= 0) { return r; }
    if (r == -ENOENT) { errno = ENOENT; return -1; }
    errno = EINVAL;
    return -1;
}

int symlink(int target, int link) {
    int r = __sys(SYS_SYMLINK, target, link);
    if (r >= 0) { return 0; }
    if (r == -EEXIST) { errno = EEXIST; return -1; }
    if (r == -ENOENT) { errno = ENOENT; return -1; }
    errno = EINVAL;
    return -1;
}

int truncate(int path, int length) {
    int r = __sys(SYS_TRUNCATE, path, length);
    if (r >= 0) { return 0; }
    if (r == -ENOENT) { errno = ENOENT; return -1; }
    if (r == -EIO) { errno = EIO; return -1; }
    errno = EINVAL;
    return -1;
}

int fcntl(int fd, int cmd, int arg) {
    int r = __sys(SYS_FCNTL, fd, cmd, arg);
    if (r >= 0) { return r; }
    if (r == -EBADF) { errno = EBADF; return -1; }
    if (r == -EACCES) { errno = EACCES; return -1; }
    errno = EINVAL;
    return -1;
}

// Directory streams: a DIR* is a heap cell holding the directory fd, so a
// NULL DIR* dereference faults exactly like glibc's readdir(NULL) — the
// unchecked-opendir pattern of the Git bug study.

int __dirent[40];

int opendir(int path) {
    int d = __sys(SYS_OPENDIR, path);
    if (d >= 0) {
        int dirp = malloc(8);
        if (dirp == 0) { errno = ENOMEM; return 0; }
        *dirp = d;
        return dirp;
    }
    if (d == -ENOENT) { errno = ENOENT; return 0; }
    if (d == -ENOTDIR) { errno = ENOTDIR; return 0; }
    if (d == -EACCES) { errno = EACCES; return 0; }
    if (d == -EMFILE) { errno = EMFILE; return 0; }
    errno = EINVAL;
    return 0;
}

// Returns a pointer to the next entry name, or NULL at end of stream.
int readdir(int dirp) {
    int fd = *dirp;
    int r = __sys(SYS_READDIR, fd, __dirent, 256);
    if (r > 0) { return __dirent; }
    if (r == 0) { return 0; }
    if (r == -EBADF) { errno = EBADF; return 0; }
    if (r == -ENOTDIR) { errno = ENOTDIR; return 0; }
    errno = EINVAL;
    return 0;
}

int closedir(int dirp) {
    int fd = *dirp;
    int r = __sys(SYS_CLOSEDIR, fd);
    free(dirp);
    if (r >= 0) { return 0; }
    errno = EBADF;
    return -1;
}
