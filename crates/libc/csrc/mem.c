// Memory management over the VM's sbrk heap. Fresh sbrk pages are
// zero-filled, so malloc/calloc both hand out zeroed blocks. Every error
// path sets an explicit errno constant right before the constant return
// value so the LFI profiler can recover the fault profile from the binary.

int malloc(int size) {
    if (size < 0) { errno = EINVAL; return 0; }
    int need = ((size + 7) / 8) * 8;
    if (need == 0) { need = 8; }
    int p = __sys(SYS_SBRK, need);
    if (p > 0) { return p; }
    errno = ENOMEM;
    return 0;
}

int calloc(int count, int size) {
    if (count < 0 || size < 0) { errno = EINVAL; return 0; }
    int need = ((count * size + 7) / 8) * 8;
    if (need == 0) { need = 8; }
    int p = __sys(SYS_SBRK, need);
    if (p > 0) { return p; }
    errno = ENOMEM;
    return 0;
}

// The bump allocator never reuses blocks; free is a no-op, like the
// original LFI's preload shim which leaves allocation policy to the app.
int free(int p) {
    return 0;
}

int memset(int p, int value, int n) {
    int i = 0;
    while (i < n) {
        __store8(p + i, value);
        i = i + 1;
    }
    return p;
}

int memcpy(int dst, int src, int n) {
    int i = 0;
    while (i < n) {
        __store8(dst + i, __load8(src + i));
        i = i + 1;
    }
    return dst;
}
