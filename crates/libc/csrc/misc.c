// Process control, environment, time, and assertion helpers.

int exit(int code) {
    __sys(SYS_EXIT, code);
    return 0;
}

int abort() {
    __sys(SYS_ABORT);
    return 0;
}

// Abort with a message when `cond` is false; the targets' internal sanity
// checks use this, and its abort is one of the failure modes the test
// controller classifies.
int assert_true(int cond, int msg) {
    if (cond != 0) { return 0; }
    print("assertion failed: ");
    print(msg);
    print("\n");
    abort();
    return 0;
}

int setenv(int name, int value, int overwrite) {
    int r = __sys(SYS_SETENV, name, value);
    if (r >= 0) { return 0; }
    if (r == -EINVAL) { errno = EINVAL; return -1; }
    errno = ENOMEM;
    return -1;
}

// Reentrant getenv: copies the value into `buf` (capacity `cap`) and
// returns the value's length, or -1 with errno = ENOENT when unset.
int getenv_r(int name, int buf, int cap) {
    int r = __sys(SYS_GETENV, name, buf, cap);
    if (r >= 0) { return r; }
    if (r == -ENOENT) { errno = ENOENT; return -1; }
    errno = EINVAL;
    return -1;
}

// Virtual-time clock, in VM ticks.
int gettime() {
    return __sys(SYS_GETTIME);
}

// Non-negative pseudo-random number from the VM's seeded generator.
int rand() {
    return __sys(SYS_RANDOM);
}
