// Datagram sockets over the VM's simulated network. Addresses are
// (node, port) pairs; recvfrom is non-blocking and reports EAGAIN when no
// datagram is queued, which is what the PBFT replicas poll on.

int socket(int domain, int type, int protocol) {
    int s = __sys(SYS_SOCKET);
    if (s >= 0) { return s; }
    errno = EMFILE;
    return -1;
}

int bind(int s, int port) {
    int r = __sys(SYS_BIND, s, port);
    if (r >= 0) { return 0; }
    if (r == -EBADF) { errno = EBADF; return -1; }
    errno = EINVAL;
    return -1;
}

int sendto(int s, int buf, int len, int node, int port) {
    int r = __sys(SYS_SENDTO, s, buf, len, node, port);
    if (r >= 0) { return r; }
    if (r == -EBADF) { errno = EBADF; return -1; }
    if (r == -ECONNREFUSED) { errno = ECONNREFUSED; return -1; }
    if (r == -EMSGSIZE) { errno = EMSGSIZE; return -1; }
    errno = EINVAL;
    return -1;
}

int recvfrom(int s, int buf, int cap, int srcinfo) {
    int r = __sys(SYS_RECVFROM, s, buf, cap, srcinfo);
    if (r >= 0) { return r; }
    if (r == -EAGAIN) { errno = EAGAIN; return -1; }
    if (r == -EBADF) { errno = EBADF; return -1; }
    if (r == -ECONNREFUSED) { errno = ECONNREFUSED; return -1; }
    errno = EINVAL;
    return -1;
}
