// Threads and mutexes. Mutexes follow glibc's error-checking discipline:
// relocking a held mutex fails with EPERM, and unlocking a mutex the thread
// does not hold is fatal in the VM (the MySQL double-unlock crash mode).

int pthread_create(int entry, int arg) {
    int tid = __sys(SYS_THREAD_CREATE, entry, arg);
    if (tid >= 0) { return tid; }
    if (tid == -EAGAIN) { errno = EAGAIN; return -1; }
    errno = EINVAL;
    return -1;
}

int pthread_exit() {
    __sys(SYS_THREAD_EXIT);
    return 0;
}

int pthread_yield() {
    __sys(SYS_YIELD);
    return 0;
}

int pthread_mutex_init(int m) {
    __sys(SYS_MUTEX_INIT, m);
    return 0;
}

int pthread_mutex_lock(int m) {
    int r = __sys(SYS_MUTEX_LOCK, m);
    if (r >= 0) { return 0; }
    errno = EPERM;
    return -1;
}

int pthread_mutex_unlock(int m) {
    int r = __sys(SYS_MUTEX_UNLOCK, m);
    if (r >= 0) { return 0; }
    errno = EPERM;
    return -1;
}
