//! Fault-space enumeration.
//!
//! A campaign explores a **fault space**: the set of concrete fault points a
//! target program exposes. Following the paper, one fault point is a
//! `(call site, library function, error case)` triple — injecting the error
//! case at exactly that call site is the unit of exploration. The space is
//! enumerated from the library fault profile (which functions can fail, and
//! how) and the target binary (where those functions are called), then
//! annotated with the two signals the paper's workflow produces:
//!
//! * the call-site analyzer's classification (checked / partially checked /
//!   unchecked) — unchecked sites are the prime injection targets;
//! * baseline reachability — call sites the default test suite never
//!   executes cannot inject, so guided strategies prune them.

use lfi_analyzer::{CallSiteClass, CallSiteReport, PropagationReport, PropagationVerdict};
use lfi_arch::Word;
use lfi_core::Scenario;
use lfi_obj::Module;
use lfi_profiler::FaultProfile;
use lfi_vm::Coverage;

/// One concrete fault point: inject `retval`/`errno` into `function` at the
/// call site `offset` of `target`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPoint {
    /// Target program (module) name.
    pub target: String,
    /// Library function whose failure is injected.
    pub function: String,
    /// Code offset of the call site in the target binary.
    pub offset: u64,
    /// Function containing the call site, if known.
    pub caller: Option<String>,
    /// Injected return value (from the fault profile's representative case).
    pub retval: Word,
    /// Injected errno side effect.
    pub errno: Option<Word>,
    /// Analyzer classification of the call site, when annotated.
    pub class: Option<CallSiteClass>,
    /// Whether the baseline suite reaches the call site, when annotated.
    pub reached: Option<bool>,
    /// Interprocedural propagation verdict, when annotated.
    pub verdict: Option<PropagationVerdict>,
    /// The analyzer's classification came from a truncated CFG, so `class`
    /// and `verdict` are not definitive (set by [`annotate_analysis`]).
    ///
    /// [`annotate_analysis`]: FaultSpace::annotate_analysis
    pub low_confidence: bool,
    /// The static-prune pass demoted this point: its error return is
    /// provably handled, so strategies explore it last (or, under
    /// saturation pruning, skip it once runtime evidence corroborates).
    pub demoted: bool,
}

impl FaultPoint {
    /// Compile this fault point into its single-fault-point scenario.
    pub fn scenario(&self) -> Scenario {
        Scenario::single_fault_point(
            &self.target,
            &self.function,
            self.offset,
            self.retval,
            self.errno,
        )
    }
}

/// Outcome of a [`FaultSpace::static_prune`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Fault points examined.
    pub total: usize,
    /// Points demoted because their verdict proves the error is handled.
    pub demoted: usize,
    /// Points exempt from demotion because their analysis is low-confidence.
    pub low_confidence: usize,
}

/// The enumerated fault space of one or more target programs.
#[derive(Debug, Clone, Default)]
pub struct FaultSpace {
    /// All enumerated fault points, in enumeration order.
    pub points: Vec<FaultPoint>,
}

impl FaultSpace {
    /// An empty fault space.
    pub fn new() -> FaultSpace {
        FaultSpace::default()
    }

    /// Enumerate every fault point of `target`: for each imported function
    /// with at least one error case in `profile`, every call site, paired
    /// with the profile's representative error case.
    pub fn add_target(&mut self, target: &str, exe: &Module, profile: &FaultProfile) -> &mut Self {
        for function in exe.imported_functions() {
            let Some(func_profile) = profile.function(&function) else {
                continue;
            };
            let Some(case) = func_profile.representative_case() else {
                continue;
            };
            for offset in exe.call_sites_of(&function) {
                self.points.push(FaultPoint {
                    target: target.to_string(),
                    function: function.clone(),
                    offset,
                    caller: exe.containing_function(offset).map(|e| e.name.clone()),
                    retval: case.retval,
                    errno: case.errno,
                    ..FaultPoint::default()
                });
            }
        }
        self
    }

    /// Keep only the fault points satisfying a predicate (e.g. restrict a
    /// target to the functions its harness exercises).
    pub fn retain(&mut self, keep: impl FnMut(&FaultPoint) -> bool) -> &mut Self {
        self.points.retain(keep);
        self
    }

    /// Annotate the points of `target` with the analyzer's classification of
    /// their call sites.
    pub fn annotate_analysis(&mut self, target: &str, reports: &[CallSiteReport]) -> &mut Self {
        for (report, site) in lfi_analyzer::iter_sites(reports) {
            for point in &mut self.points {
                if point.target == target
                    && point.function == report.function
                    && point.offset == site.offset
                {
                    point.class = Some(site.class);
                    point.low_confidence = site.low_confidence;
                }
            }
        }
        self
    }

    /// Annotate the points of `target` with interprocedural propagation
    /// verdicts (see [`lfi_analyzer::propagation_reports`]).
    pub fn annotate_propagation(
        &mut self,
        target: &str,
        reports: &[PropagationReport],
    ) -> &mut Self {
        for report in reports {
            for finding in &report.findings {
                for point in &mut self.points {
                    if point.target == target
                        && point.function == report.function
                        && point.offset == finding.offset
                    {
                        point.verdict = Some(finding.verdict);
                    }
                }
            }
        }
        self
    }

    /// The `StaticPrune` pass: demote every point whose error return is
    /// provably handled (a confident [`PropagationVerdict`] of
    /// `HandledLocally` or `PropagatedChecked`). Demoted points are never
    /// removed — strategies explore them last, which keeps the differential
    /// guarantee that pruning cannot drop a bug-finding unit — but the
    /// adaptive strategy may skip them once runtime evidence corroborates
    /// the static verdict. Low-confidence annotations (truncated CFGs)
    /// block demotion.
    pub fn static_prune(&mut self) -> PruneStats {
        let mut stats = PruneStats {
            total: self.points.len(),
            ..PruneStats::default()
        };
        for point in &mut self.points {
            if point.low_confidence {
                stats.low_confidence += 1;
                continue;
            }
            if point.verdict.is_some_and(|v| v.is_handled()) {
                point.demoted = true;
                stats.demoted += 1;
            }
        }
        stats
    }

    /// Annotate the points of `target` with baseline reachability: a point
    /// is reached when the baseline coverage executed its call-site offset.
    pub fn annotate_reached(&mut self, target: &str, baseline: &Coverage) -> &mut Self {
        for point in &mut self.points {
            if point.target == target {
                point.reached = Some(baseline.offset_executed(target, point.offset));
            }
        }
        self
    }

    /// Number of fault points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// A stable digest of the space's **full** identity: every point's
    /// target, function, offset, and caller, plus the injected error case
    /// (`retval`/`errno`) and both annotations (`class`/`reached`), in
    /// order. Folded into the resumable-state tag so a persisted campaign
    /// cannot be resumed against a different, reordered, re-profiled, or
    /// re-annotated fault space — anywhere unit ids would keep lining up
    /// while the scenarios (or a guided schedule) behind them changed.
    pub fn digest(&self) -> u64 {
        // FNV-1a over the identifying fields.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for byte in bytes {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for point in &self.points {
            mix(point.target.as_bytes());
            mix(point.function.as_bytes());
            mix(&point.offset.to_le_bytes());
            match &point.caller {
                Some(caller) => mix(caller.as_bytes()),
                None => mix(&[0xfe]),
            }
            mix(&point.retval.to_le_bytes());
            match point.errno {
                Some(errno) => mix(&errno.to_le_bytes()),
                None => mix(&[0xfe]),
            }
            mix(&[match point.class {
                None => 0xf0,
                Some(CallSiteClass::Unchecked) => 0,
                Some(CallSiteClass::PartiallyChecked) => 1,
                Some(CallSiteClass::Checked) => 2,
            }]);
            mix(&[match point.reached {
                None => 0xf0,
                Some(false) => 0,
                Some(true) => 1,
            }]);
            mix(&[match point.verdict {
                None => 0xf0,
                Some(PropagationVerdict::HandledLocally) => 0,
                Some(PropagationVerdict::PropagatedChecked) => 1,
                Some(PropagationVerdict::PropagatedUnchecked) => 2,
                Some(PropagationVerdict::Dropped) => 3,
            }]);
            mix(&[u8::from(point.low_confidence), u8::from(point.demoted)]);
            mix(&[0xff]);
        }
        hash
    }

    /// The distinct target names present in the space, **sorted and
    /// deduplicated**.
    ///
    /// The ordering is a guarantee, not an accident: consumers that derive
    /// identity or partitions from the target list (baseline-reachability
    /// annotation order, shard bookkeeping, plan digests) must see the
    /// same list however the points were inserted, so this never reflects
    /// insertion order.
    pub fn targets(&self) -> Vec<String> {
        let names: std::collections::BTreeSet<&str> =
            self.points.iter().map(|p| p.target.as_str()).collect();
        names.into_iter().map(str::to_string).collect()
    }
}

#[cfg(test)]
mod tests {
    use lfi_cc::Compiler;
    use lfi_obj::ModuleKind;

    use super::*;

    fn demo_exe() -> Module {
        Compiler::new("demo", ModuleKind::Executable)
            .needs("libc")
            .add_source(
                "demo.c",
                r#"
                int main() {
                    int fd = open("/tmp/x", O_RDONLY, 0);
                    if (fd == -1) { return 1; }
                    int p = malloc(16);
                    *p = 1;
                    close(fd);
                    return 0;
                }
                "#,
            )
            .compile()
            .unwrap()
    }

    #[test]
    fn enumerates_call_sites_of_failing_functions() {
        let exe = demo_exe();
        let profile = lfi_profiler::profile_library(&lfi_libc::build());
        let mut space = FaultSpace::new();
        space.add_target("demo", &exe, &profile);
        assert!(!space.is_empty());
        assert!(space.points.iter().any(|p| p.function == "open"));
        assert!(space.points.iter().any(|p| p.function == "malloc"));
        assert_eq!(space.targets(), vec!["demo"]);
        // Every point compiles into a valid scenario.
        for point in &space.points {
            point.scenario().validate().unwrap();
        }
    }

    #[test]
    fn annotations_mark_class_and_reachability() {
        let exe = demo_exe();
        let profile = lfi_profiler::profile_library(&lfi_libc::build());
        let mut space = FaultSpace::new();
        space.add_target("demo", &exe, &profile);
        let reports =
            lfi_analyzer::analyze_program(&exe, &profile, lfi_analyzer::AnalysisConfig::default());
        space.annotate_analysis("demo", &reports);
        let open = space.points.iter().find(|p| p.function == "open").unwrap();
        assert_eq!(open.class, Some(CallSiteClass::Checked));
        let malloc = space
            .points
            .iter()
            .find(|p| p.function == "malloc")
            .unwrap();
        assert_eq!(malloc.class, Some(CallSiteClass::Unchecked));

        // An empty baseline marks every point unreached.
        space.annotate_reached("demo", &Coverage::new());
        assert!(space.points.iter().all(|p| p.reached == Some(false)));
    }

    #[test]
    fn targets_are_sorted_and_deduplicated_regardless_of_insertion_order() {
        let point = |target: &str| FaultPoint {
            target: target.to_string(),
            function: "read".into(),
            retval: -1,
            ..FaultPoint::default()
        };
        let space = FaultSpace {
            points: vec![
                point("zeta"),
                point("alpha"),
                point("zeta"),
                point("mid"),
                point("alpha"),
            ],
        };
        assert_eq!(space.targets(), vec!["alpha", "mid", "zeta"]);

        // Insertion order must not leak into the list.
        let mut reversed = space.clone();
        reversed.points.reverse();
        assert_eq!(space.targets(), reversed.targets());
    }

    #[test]
    fn digest_covers_error_cases_and_annotations() {
        let exe = demo_exe();
        let profile = lfi_profiler::profile_library(&lfi_libc::build());
        let mut space = FaultSpace::new();
        space.add_target("demo", &exe, &profile);
        let bare = space.digest();
        assert_eq!(bare, space.clone().digest(), "digest is stable");

        // Changing the injected error case changes the identity.
        let mut other_case = space.clone();
        other_case.points[0].retval = -2;
        assert_ne!(bare, other_case.digest());
        let mut other_errno = space.clone();
        other_errno.points[0].errno = Some(999);
        assert_ne!(bare, other_errno.digest());

        // So does (re-)annotating: classifications and reachability drive
        // guided schedules, so a checkpoint must not survive them.
        let mut annotated = space.clone();
        annotated.annotate_analysis(
            "demo",
            &lfi_analyzer::analyze_program(&exe, &profile, lfi_analyzer::AnalysisConfig::default()),
        );
        assert_ne!(bare, annotated.digest());
        let mut reached = space.clone();
        reached.annotate_reached("demo", &Coverage::new());
        assert_ne!(bare, reached.digest());

        // The propagation verdict and prune outcome are identity too: a
        // checkpoint taken before pruning must not resume after it.
        let mut verdict = space.clone();
        verdict.points[0].verdict = Some(PropagationVerdict::HandledLocally);
        assert_ne!(bare, verdict.digest());
        let mut low = space.clone();
        low.points[0].low_confidence = true;
        assert_ne!(bare, low.digest());
        let mut demoted = space.clone();
        demoted.points[0].demoted = true;
        assert_ne!(bare, demoted.digest());
    }

    #[test]
    fn propagation_annotation_and_prune_demote_handled_points() {
        let exe = demo_exe();
        let libc = lfi_libc::build();
        let profile = lfi_profiler::profile_library(&libc);
        let mut space = FaultSpace::new();
        space.add_target("demo", &exe, &profile);
        let config = lfi_analyzer::AnalysisConfig::default();
        let reports = lfi_analyzer::analyze_program(&exe, &profile, config);
        space.annotate_analysis("demo", &reports);
        let propagation = lfi_analyzer::propagation_reports(&[&exe, &libc], &reports, config);
        space.annotate_propagation("demo", &propagation);

        // Every annotated point carries a verdict; the checked `open` site
        // is handled locally, the unchecked `malloc` deref is not.
        let open = space.points.iter().find(|p| p.function == "open").unwrap();
        assert_eq!(open.verdict, Some(PropagationVerdict::HandledLocally));
        let malloc = space
            .points
            .iter()
            .find(|p| p.function == "malloc")
            .unwrap();
        assert!(malloc.verdict.is_some_and(|v| !v.is_handled()));

        let stats = space.static_prune();
        assert_eq!(stats.total, space.len());
        assert!(stats.demoted >= 1);
        for point in &space.points {
            assert_eq!(
                point.demoted,
                !point.low_confidence && point.verdict.is_some_and(|v| v.is_handled()),
                "prune must demote exactly the confidently handled points"
            );
        }
    }
}
