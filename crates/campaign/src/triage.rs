//! Failure triage: deduplicate campaign failures into crash signatures.
//!
//! Hundreds of scenarios routinely collapse onto a handful of underlying
//! defects. Triage groups crashed runs by a stable signature — where the
//! crash happened and which library function's failure provoked it — so the
//! campaign report lists *bugs*, not runs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use lfi_telemetry::MetricsSnapshot;

use crate::engine::{CrashInfo, OutcomeKind, RunRecord};
use crate::shard::{ShardMergeError, ShardOutcome};

/// A deduplicated crash signature.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrashSignature {
    /// Target program.
    pub target: String,
    /// Library function whose injected failure provoked the crash.
    pub function: String,
    /// Module containing the faulting instruction.
    pub module: String,
    /// Code offset of the faulting instruction.
    pub offset: u64,
    /// Innermost symbolized frame (or the containing function).
    pub frame: Option<String>,
}

/// All runs that collapsed onto one signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureBucket {
    /// The signature.
    pub signature: CrashSignature,
    /// Number of crashed runs with this signature.
    pub count: usize,
    /// Unit ids of those runs, in ascending order.
    pub units: Vec<usize>,
    /// A representative crash description.
    pub example: String,
}

/// Aggregate triage results of a campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Triage {
    /// Deduplicated signatures, in signature order.
    pub buckets: Vec<SignatureBucket>,
    /// Runs that passed.
    pub passes: usize,
    /// Runs that failed cleanly.
    pub clean_failures: usize,
    /// Runs that crashed.
    pub crashes: usize,
    /// Runs that hung.
    pub hangs: usize,
}

impl Triage {
    /// Number of distinct crash signatures.
    pub fn distinct_crashes(&self) -> usize {
        self.buckets.len()
    }
}

/// The signature one crash of one record collapses onto — the single
/// definition shared by [`triage`] and the engine's `CrashFound` events.
fn signature_of(record: &RunRecord, crash: &CrashInfo) -> CrashSignature {
    CrashSignature {
        target: record.target.clone(),
        function: record.function.clone(),
        module: crash.module.clone(),
        offset: crash.offset,
        frame: crash
            .in_function
            .clone()
            .or_else(|| crash.backtrace.first().cloned()),
    }
}

/// The distinct crash signatures of one record (a cluster run may crash
/// several nodes onto the same signature; each appears once).
pub(crate) fn crash_signatures(record: &RunRecord) -> Vec<CrashSignature> {
    let mut signatures: Vec<CrashSignature> = record
        .crashes
        .iter()
        .map(|crash| signature_of(record, crash))
        .collect();
    signatures.sort();
    signatures.dedup();
    signatures
}

/// Triage a batch of run records.
pub fn triage(records: &[RunRecord]) -> Triage {
    let mut result = Triage::default();
    let mut buckets: BTreeMap<CrashSignature, SignatureBucket> = BTreeMap::new();
    for record in records {
        match &record.outcome {
            OutcomeKind::Passed => result.passes += 1,
            OutcomeKind::CleanFailure(_) => result.clean_failures += 1,
            OutcomeKind::Hung => result.hangs += 1,
            OutcomeKind::Crashed => result.crashes += 1,
        }
        for crash in &record.crashes {
            let signature = signature_of(record, crash);
            let bucket = buckets
                .entry(signature.clone())
                .or_insert_with(|| SignatureBucket {
                    signature,
                    count: 0,
                    units: Vec::new(),
                    example: crash.description.clone(),
                });
            bucket.count += 1;
            bucket.units.push(record.unit);
        }
    }
    result.buckets = buckets.into_values().collect();
    for bucket in &mut result.buckets {
        bucket.units.sort_unstable();
        bucket.units.dedup();
    }
    result
}

/// The final artifact of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Strategy that produced the schedule.
    pub strategy: String,
    /// Total fault points in the space.
    pub space_size: usize,
    /// Fault points the strategy dispatched across all batches.
    pub planned_points: usize,
    /// Work units covered by the dispatched points (points x workloads).
    pub units_total: usize,
    /// Non-empty batches the strategy emitted this session.
    pub batches: usize,
    /// Peak worker threads spawned by any batch (0 when every unit was
    /// already completed by a resumed state).
    pub peak_workers: usize,
    /// Units executed in this session (excludes resumed ones).
    pub executed_now: usize,
    /// Every run record, this session and resumed ones, by unit id.
    pub records: Vec<RunRecord>,
    /// Deduplicated failure triage over all records.
    pub triage: Triage,
    /// Final capture of the run's telemetry registry (`None` when the
    /// executor ran with collection disabled, and for outcomes
    /// reconstructed from persisted state, which does not checkpoint
    /// metrics). Merged reports fold shard snapshots together.
    pub metrics: Option<MetricsSnapshot>,
}

impl CampaignReport {
    /// Recombine a complete set of shard outcomes into one report.
    ///
    /// The outcomes must form exactly one campaign: every shard index of
    /// one `count`, exactly once, all recorded under the same plan tag
    /// (strategy fingerprint, space digest, workload suites) and campaign
    /// seed. The merged records are the shards' records united in
    /// canonical unit order, and the triage is recomputed over that union
    /// — for schedules whose covered unit set does not depend on observed
    /// history (exhaustive, guided, random, and adaptive without
    /// saturation pruning), both are **byte-identical** to the equivalent
    /// unsharded run's.
    ///
    /// Scheduling counters are aggregated: planned points, planned units,
    /// executed units, and batches are summed; `peak_workers` is the
    /// maximum (shards run concurrently); `space_size` is the maximum (all
    /// live outcomes agree; outcomes reconstructed by
    /// [`ShardOutcome::from_state`] carry 0).
    pub fn merge(outcomes: Vec<ShardOutcome>) -> Result<CampaignReport, ShardMergeError> {
        let Some(first) = outcomes.first() else {
            return Err(ShardMergeError::Empty);
        };
        let count = first.shard.count;
        let plan = first.plan_tag().to_string();
        let seed = first.seed;
        let mut indices: BTreeSet<usize> = BTreeSet::new();
        for outcome in &outcomes {
            // Outcomes normally carry builder-validated specs, but the
            // fields are public: an out-of-range index would otherwise
            // satisfy the completeness count below while a real shard's
            // coverage was silently missing.
            if let Err(err) = outcome.shard.validate() {
                return Err(ShardMergeError::InvalidShard(outcome.shard, err));
            }
            if outcome.shard.count != count {
                return Err(ShardMergeError::MixedCounts(count, outcome.shard.count));
            }
            if outcome.plan_tag() != plan {
                return Err(ShardMergeError::MixedPlans(
                    plan,
                    outcome.plan_tag().to_string(),
                ));
            }
            if outcome.seed != seed {
                return Err(ShardMergeError::MixedSeeds(seed, outcome.seed));
            }
            if !indices.insert(outcome.shard.index) {
                return Err(ShardMergeError::DuplicateShard(outcome.shard));
            }
        }
        if indices.len() != count {
            return Err(ShardMergeError::IncompleteShards {
                have: indices.len(),
                count,
            });
        }

        let mut merged: BTreeMap<usize, RunRecord> = BTreeMap::new();
        let mut report = CampaignReport {
            strategy: first.report.strategy.clone(),
            space_size: 0,
            planned_points: 0,
            units_total: 0,
            batches: 0,
            peak_workers: 0,
            executed_now: 0,
            triage: Triage::default(),
            records: Vec::new(),
            metrics: None,
        };
        for outcome in outcomes {
            report.space_size = report.space_size.max(outcome.report.space_size);
            report.planned_points += outcome.report.planned_points;
            report.units_total += outcome.report.units_total;
            report.batches += outcome.report.batches;
            report.peak_workers = report.peak_workers.max(outcome.report.peak_workers);
            report.executed_now += outcome.report.executed_now;
            if let Some(shard_metrics) = &outcome.report.metrics {
                report
                    .metrics
                    .get_or_insert_with(MetricsSnapshot::default)
                    .merge(shard_metrics);
            }
            for record in outcome.report.records {
                let unit = record.unit;
                if merged.insert(unit, record).is_some() {
                    return Err(ShardMergeError::DuplicateUnit(unit));
                }
            }
        }
        report.records = merged.into_values().collect();
        report.triage = triage(&report.records);
        Ok(report)
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign[{}]: {} of {} fault points planned in {}, {} units ({} run now)",
            self.strategy,
            self.planned_points,
            self.space_size,
            plural2(self.batches, "batch", "batches"),
            self.units_total,
            self.executed_now
        )?;
        writeln!(
            f,
            "outcomes: {} passed, {} clean failures, {} crashes, {} hangs",
            self.triage.passes, self.triage.clean_failures, self.triage.crashes, self.triage.hangs
        )?;
        writeln!(
            f,
            "{} distinct crash signatures:",
            self.triage.distinct_crashes()
        )?;
        for bucket in &self.triage.buckets {
            writeln!(
                f,
                "  {}: {} into {} -> {}+{:#x} [{}] x{} ({})",
                bucket.signature.target,
                bucket.signature.function,
                bucket.signature.frame.as_deref().unwrap_or("?"),
                bucket.signature.module,
                bucket.signature.offset,
                bucket.example,
                bucket.count,
                plural(bucket.units.len(), "unit"),
            )?;
        }
        Ok(())
    }
}

fn plural(n: usize, noun: &str) -> String {
    plural2(n, noun, &format!("{noun}s"))
}

fn plural2(n: usize, one: &str, many: &str) -> String {
    if n == 1 {
        format!("{n} {one}")
    } else {
        format!("{n} {many}")
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::CrashInfo;

    use super::*;

    fn record(unit: usize, offset: u64, crash: Option<u64>) -> RunRecord {
        RunRecord {
            unit,
            target: "demo".into(),
            function: "read".into(),
            offset,
            args: vec![],
            outcome: if crash.is_some() {
                OutcomeKind::Crashed
            } else {
                OutcomeKind::Passed
            },
            injections: 1,
            injected_sites: vec![],
            crashes: crash
                .map(|off| {
                    vec![CrashInfo {
                        module: "demo".into(),
                        offset: off,
                        description: "segfault".into(),
                        in_function: Some("victim".into()),
                        backtrace: vec!["victim".into()],
                    }]
                })
                .unwrap_or_default(),
            virtual_time: 1,
        }
    }

    fn outcome(index: usize, count: usize, records: Vec<RunRecord>) -> ShardOutcome {
        ShardOutcome {
            shard: crate::shard::ShardSpec { index, count },
            tag: format!("exhaustive@0000000000000000#{index}/{count}"),
            seed: 7,
            report: CampaignReport {
                strategy: "exhaustive".to_string(),
                space_size: 4,
                planned_points: records.len(),
                units_total: records.len(),
                batches: 1,
                peak_workers: 1,
                executed_now: records.len(),
                triage: triage(&records),
                records,
                metrics: None,
            },
        }
    }

    #[test]
    fn merge_rejects_incomplete_duplicate_and_invalid_shard_sets() {
        let shard0 = || outcome(0, 2, vec![record(0, 4, None)]);
        let shard1 = || outcome(1, 2, vec![record(1, 8, None)]);

        let merged = CampaignReport::merge(vec![shard0(), shard1()]).unwrap();
        assert_eq!(merged.records.len(), 2);
        assert_eq!(merged.strategy, "exhaustive");

        assert_eq!(
            CampaignReport::merge(Vec::new()).unwrap_err(),
            ShardMergeError::Empty
        );
        assert_eq!(
            CampaignReport::merge(vec![shard0()]).unwrap_err(),
            ShardMergeError::IncompleteShards { have: 1, count: 2 }
        );
        assert!(matches!(
            CampaignReport::merge(vec![shard0(), shard0()]),
            Err(ShardMergeError::DuplicateShard(_))
        ));
        // An out-of-range index must not satisfy the completeness count
        // while a real shard's coverage is missing.
        assert!(matches!(
            CampaignReport::merge(vec![shard0(), outcome(3, 2, vec![record(1, 8, None)])]),
            Err(ShardMergeError::InvalidShard(_, _))
        ));
        // Two shards claiming the same unit violate the partition.
        assert_eq!(
            CampaignReport::merge(vec![shard0(), outcome(1, 2, vec![record(0, 4, None)])])
                .unwrap_err(),
            ShardMergeError::DuplicateUnit(0)
        );
    }

    #[test]
    fn identical_crashes_collapse_into_one_signature() {
        let records = vec![
            record(0, 4, Some(0x100)),
            record(1, 8, Some(0x100)),
            record(2, 12, None),
            record(3, 16, Some(0x200)),
        ];
        let triage = triage(&records);
        assert_eq!(triage.passes, 1);
        assert_eq!(triage.crashes, 3);
        // Units 0 and 1 share (function, module, offset, frame); unit 3
        // crashed elsewhere.
        assert_eq!(triage.distinct_crashes(), 2);
        let first = &triage.buckets[0];
        assert_eq!(first.count, 2);
        assert_eq!(first.units, vec![0, 1]);
    }
}
