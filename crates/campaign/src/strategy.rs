//! Pluggable search strategies, as adaptive batch schedulers.
//!
//! A strategy decides *which* fault points of the space to explore and in
//! *what order* — but it no longer commits to a full plan up front. The
//! engine repeatedly asks for the next **batch** of fault points (indices
//! into [`FaultSpace::points`]), drains that batch on the worker pool, and
//! feeds the completed [`RunRecord`](crate::engine::RunRecord)s back through
//! the [`CampaignHistory`] before asking again. Static strategies simply
//! emit their whole ordering in one batch; adaptive strategies (see
//! [`CoverageAdaptive`](crate::adaptive::CoverageAdaptive)) reorder or prune
//! the remainder between batches based on what the campaign has observed.
//!
//! The engine guarantees each fault point is dispatched at most once per
//! run: points already dispatched are filtered out of every batch, and an
//! empty (post-filter) batch ends the campaign. A strategy may therefore
//! re-emit its full ordering on every call and rely on the engine to keep
//! only the new points — the pattern the single-batch strategies below use.

use lfi_analyzer::CallSiteClass;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::engine::WorkUnit;
use crate::history::CampaignHistory;
use crate::space::FaultSpace;

/// Session knowledge a batch ordering may consult: where a function is
/// first intercepted in a workload's injectable-call trace. The engine
/// implements it over the executor ([`Executor::first_call_depth`]
/// (crate::engine::Executor::first_call_depth)); `None` means the depth is
/// unknown and the ordering must treat it as "no information".
pub trait DepthOracle: Sync {
    /// The 1-based first-call depth of `function` under the
    /// `(target, args)` workload, when known.
    fn first_call_depth(&self, target: &str, args: &[String], function: &str) -> Option<usize>;
}

/// A fault-space search strategy: a scheduler that emits fault points in
/// batches and may react to completed runs between batches.
pub trait Strategy: Send + Sync {
    /// Short name used in reports.
    fn name(&self) -> &str;

    /// Plan identity used to tag persisted campaign state: two strategy
    /// values with the same fingerprint must schedule the same units over
    /// the same space given the same history. Strategies with parameters
    /// that affect scheduling (sample size, sampling seed, batch size, ...)
    /// must fold them in here. The engine combines this fingerprint with a
    /// plan hash of the space and workload suites to form the state tag.
    fn fingerprint(&self) -> String {
        self.name().to_string()
    }

    /// Emit the next batch of fault points to explore, as indices into
    /// `space.points`. `history` carries every completed record (including
    /// ones resumed from a checkpoint) and which points have already been
    /// dispatched this run; the engine filters re-emitted points out, and
    /// stops when a batch is empty after filtering.
    fn next_batch(&self, space: &FaultSpace, history: &CampaignHistory) -> Vec<usize>;

    /// Reorder a batch's pending units in place just before the engine
    /// drains them (snapshot backend only) — a scheduling hint for
    /// executors whose per-unit cost depends on adjacency, e.g. keeping
    /// units that fork the same snapshot-tree ancestors together so the
    /// LRU holds those ancestors hot. The signature enforces that the
    /// ordering is a **pure permutation** of the batch, and the engine
    /// sorts completed records by canonical unit id, so ordering can never
    /// change results — only throughput. The default keeps the batch as
    /// scheduled.
    fn order_units(&self, _units: &mut [&WorkUnit], _depths: &dyn DepthOracle) {}
}

/// Explore every fault point, in enumeration order, as one batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive;

impl Strategy for Exhaustive {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn next_batch(&self, space: &FaultSpace, _history: &CampaignHistory) -> Vec<usize> {
        (0..space.len()).collect()
    }
}

/// Explore a uniform random sample of the fault space, as one batch.
/// Sampling is a seed-deterministic Fisher–Yates shuffle truncated to
/// `count` points, so the same seed always yields the same schedule.
#[derive(Debug, Clone, Copy)]
pub struct RandomSample {
    /// Number of fault points to sample (clamped to the space size).
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Strategy for RandomSample {
    fn name(&self) -> &str {
        "random"
    }

    fn fingerprint(&self) -> String {
        format!("random(count={},seed={})", self.count, self.seed)
    }

    fn next_batch(&self, space: &FaultSpace, _history: &CampaignHistory) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..space.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Partial Fisher–Yates: position i receives a uniform draw from the
        // not-yet-placed suffix.
        let take = self.count.min(indices.len());
        for i in 0..take {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices.truncate(take);
        indices
    }
}

/// The paper's accuracy insight as a search strategy: prune fault points
/// whose call sites the baseline suite never reaches (they cannot inject),
/// and explore the remaining points in order of how likely an injection is
/// to expose a bug — analyzer-flagged *unchecked* sites first, partially
/// checked next, unclassified sites after them, and fully checked sites
/// last (still explored: recovery code behind a check can itself be buggy).
#[derive(Debug, Clone, Copy, Default)]
pub struct InjectionGuided;

/// Priority rank of a fault point (lower explores earlier). Interprocedural
/// verdicts refine the per-site classification: a point whose error provably
/// escapes unhandled ranks with the unchecked sites even if the local check
/// pattern looked partial, and a statically demoted point sinks below every
/// checked site — explored dead last, never dropped.
pub(crate) fn rank(point: &crate::space::FaultPoint) -> u8 {
    if point.demoted {
        return 4;
    }
    if point.verdict.is_some_and(|v| !v.is_handled()) {
        return 0;
    }
    match point.class {
        Some(CallSiteClass::Unchecked) => 0,
        Some(CallSiteClass::PartiallyChecked) => 1,
        None => 2,
        Some(CallSiteClass::Checked) => 3,
    }
}

/// The guided ordering over a space: unreached points pruned, the rest
/// sorted by fault-point rank. Shared by [`InjectionGuided`] and the
/// adaptive scheduler that starts from it.
pub(crate) fn guided_order(space: &FaultSpace) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..space.len())
        .filter(|&i| space.points[i].reached != Some(false))
        .collect();
    indices.sort_by_key(|&i| (rank(&space.points[i]), i));
    indices
}

impl Strategy for InjectionGuided {
    fn name(&self) -> &str {
        "guided"
    }

    fn next_batch(&self, space: &FaultSpace, _history: &CampaignHistory) -> Vec<usize> {
        guided_order(space)
    }
}

#[cfg(test)]
mod tests {
    use crate::space::FaultPoint;

    use super::*;

    fn point(function: &str, offset: u64) -> FaultPoint {
        FaultPoint {
            target: "demo".into(),
            function: function.into(),
            offset,
            retval: -1,
            ..FaultPoint::default()
        }
    }

    fn space_of(points: Vec<FaultPoint>) -> FaultSpace {
        FaultSpace { points }
    }

    fn empty_history(space: &FaultSpace) -> CampaignHistory {
        CampaignHistory::for_space_size(space.len())
    }

    #[test]
    fn exhaustive_selects_everything_in_order() {
        let space = space_of((0..5).map(|i| point("read", i * 4)).collect());
        let history = empty_history(&space);
        assert_eq!(Exhaustive.next_batch(&space, &history), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_sample_is_deterministic_under_a_fixed_seed() {
        let space = space_of((0..50).map(|i| point("read", i * 4)).collect());
        let history = empty_history(&space);
        let a = RandomSample {
            count: 10,
            seed: 42,
        }
        .next_batch(&space, &history);
        let b = RandomSample {
            count: 10,
            seed: 42,
        }
        .next_batch(&space, &history);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 10);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "sampling is without replacement");

        let c = RandomSample {
            count: 10,
            seed: 43,
        }
        .next_batch(&space, &history);
        assert_ne!(a, c, "different seeds explore differently");
        // Plan-affecting parameters are part of the state fingerprint, so a
        // resumed state from a differently-parameterized sample is discarded
        // rather than silently misapplied.
        let fp = |count, seed| RandomSample { count, seed }.fingerprint();
        assert_ne!(fp(10, 42), fp(10, 43));
        assert_ne!(fp(10, 42), fp(20, 42));

        // Oversized requests clamp to the space.
        let all = RandomSample { count: 99, seed: 1 }.next_batch(&space, &history);
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn injection_guided_prunes_unreached_and_prioritizes_unchecked() {
        let mut unreached = point("read", 0);
        unreached.reached = Some(false);
        let mut checked = point("read", 4);
        checked.class = Some(CallSiteClass::Checked);
        checked.reached = Some(true);
        let mut unchecked = point("read", 8);
        unchecked.class = Some(CallSiteClass::Unchecked);
        unchecked.reached = Some(true);
        let mut partial = point("read", 12);
        partial.class = Some(CallSiteClass::PartiallyChecked);
        partial.reached = Some(true);
        let unknown = point("read", 16); // no annotations at all

        let space = space_of(vec![unreached, checked, unchecked, partial, unknown]);
        let history = empty_history(&space);
        let batch = InjectionGuided.next_batch(&space, &history);
        // The unreached point (index 0) is pruned; the rest are ordered
        // unchecked, partial, unknown, checked.
        assert_eq!(batch, vec![2, 3, 4, 1]);
        assert!(batch.len() < space.len(), "guided explores fewer points");
    }

    #[test]
    fn verdicts_and_demotion_reorder_the_guided_schedule() {
        use lfi_analyzer::PropagationVerdict;

        // A partially checked site whose error provably escapes unhandled
        // jumps to the front; a demoted point sinks below checked sites but
        // is still scheduled (pruning never drops a unit).
        let mut escaping = point("read", 0);
        escaping.class = Some(CallSiteClass::PartiallyChecked);
        escaping.verdict = Some(PropagationVerdict::PropagatedUnchecked);
        let mut unchecked = point("read", 4);
        unchecked.class = Some(CallSiteClass::Unchecked);
        let mut checked = point("read", 8);
        checked.class = Some(CallSiteClass::Checked);
        checked.verdict = Some(PropagationVerdict::HandledLocally);
        let mut demoted = point("read", 12);
        demoted.class = Some(CallSiteClass::Unchecked);
        demoted.verdict = Some(PropagationVerdict::PropagatedChecked);
        demoted.demoted = true;

        let space = space_of(vec![demoted, checked, escaping, unchecked]);
        let history = empty_history(&space);
        let batch = InjectionGuided.next_batch(&space, &history);
        assert_eq!(batch, vec![2, 3, 1, 0]);
        assert_eq!(batch.len(), space.len(), "demotion reorders, never drops");
    }
}
