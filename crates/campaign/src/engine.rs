//! The campaign engine: an adaptive work queue of concrete scenarios
//! executed on a parallel worker pool.
//!
//! The engine repeatedly asks the [`Strategy`] for a batch of fault points,
//! expands the batch into [`WorkUnit`]s (one per fault point and workload),
//! skips units a resumed [`CampaignState`] has already completed, drains the
//! rest on `jobs` worker threads, and feeds the completed records back into
//! the [`CampaignHistory`] before requesting the next batch — so strategies
//! can react to results mid-campaign. Each worker pulls units off a shared
//! cursor and hands them to the [`Executor`].
//!
//! ## Execution backends
//!
//! Two backends run units ([`ExecBackend`] in [`CampaignConfig`]):
//!
//! * **Fresh** — every unit builds a fresh VM via [`Executor::execute`];
//!   runs share nothing but the immutable target modules.
//! * **Snapshot** — the executor prepares one [`Session`] per
//!   `(target, workload)` pair ([`Executor::prepare`]): the workload runs
//!   once up to its first injectable library call and is captured as a VM
//!   snapshot. Every unit of that pair then forks from a snapshot
//!   ([`Executor::execute_from`]), so the prefix — target load, init, and
//!   workload setup — is executed once instead of once per fault point.
//!   The stock executor grows each session into a call-indexed snapshot
//!   *tree*, so a unit injecting deep in the workload forks the deepest
//!   snapshot preceding its function's first call instead of replaying
//!   from the first injectable call; resident snapshots are bounded by
//!   [`CampaignConfig::snapshot_budget`]. Sessions are prepared lazily in
//!   an engine-owned cache shared across worker threads; targets that
//!   cannot snapshot (multi-process cluster targets return `None` from
//!   `prepare`) fall back to fresh VMs.
//!
//! Both backends must produce identical [`Execution`]s for the same unit —
//! results stay independent of the backend, the worker count, and the
//! interleaving, and resumable state is backend-agnostic.
//!
//! ## Unit identity, resumability, and sharding
//!
//! Unit ids are **canonical**: unit `id` is the position of its
//! `(fault point, workload)` pair in the full expansion of the space in
//! enumeration order, independent of the strategy's schedule. Persisted
//! state is tagged `fingerprint@plan-hash#shard`, where the plan hash
//! covers every point's full identity (target, function, offset, caller,
//! injected retval/errno, analyzer class, baseline reachability) and a
//! digest of each target's workload suite, and the shard suffix is the
//! run's [`ShardSpec`]. Any change that could shift unit ids or swap the
//! scenario behind an id — re-annotation, a different fault profile, an
//! edited test suite, a different shard spec — therefore invalidates the
//! checkpoint instead of silently misapplying it.
//!
//! ## Driving a campaign
//!
//! Construction and orchestration live in the fluent
//! [`CampaignBuilder`](crate::builder::CampaignBuilder) /
//! [`CampaignDriver`](crate::builder::CampaignDriver) API
//! (`Campaign::builder(space, &executor).strategy(...).build()`), which
//! adds shard selection, streamed [`CampaignEvent`]s, and per-batch
//! checkpointing on top of the engine loop. The old blocking
//! [`Campaign::run`] remains as a deprecated shim over the same loop.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use lfi_core::Scenario;
use lfi_telemetry::Telemetry;

use crate::builder::CampaignBuilder;
use crate::control::Lease;
use crate::events::{CampaignEvent, EventSink};
use crate::history::CampaignHistory;
use crate::shard::{ShardOutcome, ShardSpec};
use crate::space::{FaultPoint, FaultSpace};
use crate::state::CampaignState;
use crate::strategy::{DepthOracle, Strategy};
use crate::triage::{crash_signatures, triage, CampaignReport, CrashSignature};

/// How one campaign run ended, from the triage point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Exit code 0.
    Passed,
    /// Clean non-zero exit.
    CleanFailure(i64),
    /// Crash (the interesting case).
    Crashed,
    /// Budget exhausted or all threads blocked.
    Hung,
}

impl OutcomeKind {
    /// Whether this outcome is a crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, OutcomeKind::Crashed)
    }
}

/// One observed crash, with enough context to form a signature and to match
/// known bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashInfo {
    /// Module containing the faulting instruction.
    pub module: String,
    /// Code offset of the faulting instruction.
    pub offset: u64,
    /// Human-readable description (fault kind and location).
    pub description: String,
    /// Function containing the faulting instruction, if resolvable.
    pub in_function: Option<String>,
    /// Symbolized backtrace function names, innermost first.
    pub backtrace: Vec<String>,
}

/// One call site where the unit's fault was actually injected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedSite {
    /// Module of the call site.
    pub module: String,
    /// Code offset of the call site.
    pub offset: u64,
    /// Function containing the call site, if resolvable.
    pub caller: Option<String>,
}

/// The executor-produced result of one work unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// Interpreted outcome.
    pub outcome: OutcomeKind,
    /// Number of injections performed.
    pub injections: u64,
    /// Call sites where the unit's function was failed.
    pub injected_sites: Vec<InjectedSite>,
    /// Observed crashes (a cluster target may produce several).
    pub crashes: Vec<CrashInfo>,
    /// Virtual time consumed.
    pub virtual_time: u64,
}

/// One unit of campaign work: a single-fault-point scenario applied to one
/// workload of the target's test suite.
#[derive(Debug, Clone)]
pub struct WorkUnit {
    /// Canonical unit id: the position of this `(fault point, workload)`
    /// pair in the full expansion of the space in enumeration order. Stable
    /// across strategies and batch schedules, so resumed records always
    /// refer to the same scenario.
    pub id: usize,
    /// The fault point under test.
    pub point: FaultPoint,
    /// The compiled scenario.
    pub scenario: Scenario,
    /// Workload arguments.
    pub args: Vec<String>,
    /// Seed for the run (a splitmix64-style mix of the campaign seed and
    /// the canonical unit id, so results do not depend on scheduling and
    /// adjacent campaign seeds do not share unit seeds).
    pub seed: u64,
}

/// The durable record of one executed unit: everything triage and
/// known-bug matching need, and what [`CampaignState`] persists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Canonical unit id.
    pub unit: usize,
    /// Target program.
    pub target: String,
    /// Injected library function.
    pub function: String,
    /// Fault-point call-site offset.
    pub offset: u64,
    /// Workload arguments.
    pub args: Vec<String>,
    /// Interpreted outcome.
    pub outcome: OutcomeKind,
    /// Number of injections performed.
    pub injections: u64,
    /// Call sites where the function was failed.
    pub injected_sites: Vec<InjectedSite>,
    /// Observed crashes.
    pub crashes: Vec<CrashInfo>,
    /// Virtual time consumed.
    pub virtual_time: u64,
}

/// An opaque prepared execution session for one `(target, workload)` pair,
/// produced by [`Executor::prepare`] and cached by the engine.
///
/// The engine never looks inside a session — it only caches it per
/// `(target, workload)` key and hands it back to
/// [`Executor::execute_from`], which downcasts to whatever payload its
/// `prepare` stored (for the standard executor: a VM snapshot paused at the
/// workload's first injectable library call).
pub struct Session(Box<dyn Any + Send + Sync>);

impl Session {
    /// Wrap an executor-specific payload.
    pub fn new<T: Any + Send + Sync>(payload: T) -> Session {
        Session(Box::new(payload))
    }

    /// Recover the payload stored by [`Session::new`].
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }

    /// Recover the payload stored by [`Session::new`] **by value**,
    /// consuming the session. Returns `None` (and drops the session) when
    /// the payload is not a `T`.
    ///
    /// Prefer this over [`Session::downcast_ref`] when tearing a session
    /// down or when the payload is cheap to move; the engine's cache hands
    /// out shared `Arc<Session>`s, so executors called through the cache
    /// only ever see `&Session` and use `downcast_ref`.
    pub fn downcast<T: Any>(self) -> Option<T> {
        self.0.downcast::<T>().ok().map(|payload| *payload)
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish_non_exhaustive()
    }
}

/// One planned unit's session coordinates, handed to
/// [`Executor::prefetch_batch`] before a batch drains so executors that
/// snapshot can warm per-session state for the whole batch at once.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PrefetchKey {
    /// Target program.
    pub target: String,
    /// Workload arguments.
    pub args: Vec<String>,
    /// Function the unit injects.
    pub function: String,
}

/// Runs work units against real targets. Implementations must be shareable
/// across worker threads.
///
/// # The prepare / execute_from contract
///
/// The trait is a **session model** with two execution paths; which path a
/// unit takes is the engine's choice ([`ExecBackend`]), never the
/// implementor's:
///
/// * Under [`ExecBackend::Fresh`] the engine only ever calls
///   [`Executor::execute`]. Every call must build an isolated instance
///   (fresh VM, fresh simulated filesystem/network, RNG seeded from
///   [`WorkUnit::seed`]) so units never share mutable state.
/// * Under [`ExecBackend::Snapshot`] the engine calls
///   [`Executor::prepare`] **at most once** per `(target, workload)` pair
///   — its cache memoizes the result, and concurrent workers needing the
///   same pair wait on the single preparation — then
///   [`Executor::execute_from`] once per unit, always with a [`Session`]
///   this same executor returned for exactly that unit's pair.
///   `execute_from` must treat the session as immutable shared state:
///   every sibling unit forks from the same session, concurrently.
///
/// ## The `None` fallback
///
/// `prepare` returning `None` declares "this pair cannot snapshot". The
/// engine memoizes the refusal (so the decision is made once, not once per
/// unit) and routes every unit of the pair through [`Executor::execute`]
/// instead — even under the snapshot backend. The stock
/// [`StandardExecutor`](crate::standard::StandardExecutor) refuses for
/// **bft-lite**: the PBFT cluster target is multi-process (four replica
/// VMs plus a client harness), so no single-machine snapshot can capture
/// it, and its units always run as fresh cluster runs whatever the
/// backend. It also refuses when a workload's prefix consumed randomness,
/// because forks reseed the RNG per unit and would otherwise diverge from
/// fresh runs.
///
/// Whichever path runs a unit, the resulting [`Execution`] must be
/// **identical** — the backend is a performance choice, not a semantics
/// choice, and the differential tests in
/// `crates/campaign/tests/backend_parity.rs` enforce it.
pub trait Executor: Sync {
    /// The workload argument lists forming `target`'s default test suite.
    /// Every selected fault point is run once per workload.
    fn workloads(&self, target: &str) -> Vec<Vec<String>>;

    /// Prepare a reusable session for one `(target, workload)` pair: run the
    /// workload's shared prefix once and capture it. Return `None` when the
    /// target cannot snapshot (e.g. multi-process cluster targets); its
    /// units then run through [`Executor::execute`]. The default never
    /// snapshots, so fresh-only executors need not implement the session
    /// half.
    fn prepare(&self, _target: &str, _args: &[String]) -> Option<Session> {
        None
    }

    /// Execute one unit by forking the prepared session. Only called with
    /// sessions this executor returned from [`Executor::prepare`]; the
    /// default delegates to a fresh run.
    fn execute_from(&self, _session: &Session, unit: &WorkUnit) -> Execution {
        self.execute(unit)
    }

    /// Hint the deduplicated `(target, workload, function)` keys of a batch
    /// the engine is about to drain (snapshot backend only), with up to
    /// `jobs` threads' worth of parallelism available. Executors that
    /// snapshot can warm sessions speculatively — the stock executor
    /// materializes every snapshot-tree depth the batch will fork in one
    /// shared deepening walk per session, so the first unit per depth pays
    /// a fork instead of the whole walk. A pure performance hint: results
    /// must not depend on it. The default does nothing.
    fn prefetch_batch(&self, _units: &[PrefetchKey], _jobs: usize) {}

    /// The 1-based injectable-call depth at which `function` is first
    /// intercepted under the `(target, args)` workload, when a prepared
    /// session's certified trace places it (clamped to any session-depth
    /// cap). Batch orderings consult it to group units by fork depth;
    /// `None` means "unknown" and must order as "no information". The
    /// default knows nothing.
    fn first_call_depth(&self, _target: &str, _args: &[String], _function: &str) -> Option<usize> {
        None
    }

    /// Cap the bytes of resident snapshot state sessions may keep
    /// (executors that snapshot evict least-recently-used snapshots past
    /// the cap). A pure performance knob: eviction re-derives state, never
    /// changes results. The default ignores it — fresh-only executors keep
    /// no snapshots.
    fn set_snapshot_budget(&self, _bytes: u64) {}

    /// Bytes of resident snapshot state currently held across sessions
    /// (`0` for executors that never snapshot).
    fn snapshot_bytes(&self) -> u64 {
        0
    }

    /// The telemetry registry this executor records into. The engine uses
    /// the same registry for its own spans (unit execution, triage,
    /// checkpoint writes), heartbeat metric captures, the final
    /// [`CampaignReport::metrics`] snapshot, and for draining the
    /// executor's out-of-band notes into the event stream. The default is
    /// a disabled (no-op) registry: executors opt in by owning a live
    /// [`Telemetry`] and returning clones of it here.
    fn telemetry(&self) -> Telemetry {
        Telemetry::disabled()
    }

    /// Execute one unit on a fresh VM instance.
    fn execute(&self, unit: &WorkUnit) -> Execution;
}

/// Default cap on resident snapshot bytes under the snapshot backend
/// (see [`CampaignConfig::snapshot_budget`]).
pub const DEFAULT_SNAPSHOT_BUDGET: u64 = 256 << 20;

/// How the engine runs work units — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// A fresh VM per unit.
    #[default]
    Fresh,
    /// Fork each unit from a prepared per-`(target, workload)` snapshot,
    /// falling back to fresh VMs for targets that cannot snapshot.
    Snapshot,
}

impl std::fmt::Display for ExecBackend {
    /// The command-line name of the backend (`fresh` / `snapshot`) —
    /// the inverse of the [`FromStr`](std::str::FromStr) impl.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecBackend::Fresh => "fresh",
            ExecBackend::Snapshot => "snapshot",
        })
    }
}

/// An unknown backend name; the message lists the accepted values, so
/// command-line tools can surface it verbatim instead of silently
/// defaulting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    found: String,
}

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown execution backend `{}` (expected `fresh` or `snapshot`)",
            self.found
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for ExecBackend {
    type Err = ParseBackendError;

    fn from_str(name: &str) -> Result<ExecBackend, ParseBackendError> {
        match name {
            "fresh" => Ok(ExecBackend::Fresh),
            "snapshot" => Ok(ExecBackend::Snapshot),
            _ => Err(ParseBackendError {
                found: name.to_string(),
            }),
        }
    }
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of worker threads (clamped to at least 1, and never more than
    /// the pending units of a batch).
    pub jobs: usize,
    /// Base seed; unit seeds are derived from it and the canonical unit id
    /// via [`derive_seed`].
    pub seed: u64,
    /// Execution backend. Not part of the persisted plan identity: both
    /// backends produce identical records, so a checkpoint written under one
    /// backend resumes cleanly under the other.
    pub backend: ExecBackend,
    /// Byte cap on resident snapshot state under the snapshot backend,
    /// forwarded to [`Executor::set_snapshot_budget`] at construction. Like
    /// the backend itself, a pure performance knob outside the plan
    /// identity.
    pub snapshot_budget: u64,
    /// Minimum interval between [`CampaignEvent::Heartbeat`] events while
    /// units drain (`None` disables heartbeats). Heartbeats are emitted
    /// only when an event sink is registered; the first fires once a full
    /// interval of run time has elapsed.
    pub heartbeat_interval: Option<Duration>,
}

/// Default minimum interval between heartbeat events (see
/// [`CampaignConfig::heartbeat_interval`]).
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_millis(500);

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            jobs: 1,
            seed: 7,
            backend: ExecBackend::Fresh,
            snapshot_budget: DEFAULT_SNAPSHOT_BUDGET,
            heartbeat_interval: Some(DEFAULT_HEARTBEAT_INTERVAL),
        }
    }
}

/// Persist a campaign checkpoint with write-then-rename, so an
/// interruption mid-write leaves the previous checkpoint intact instead of
/// a truncated file the next run would refuse to parse.
fn write_checkpoint(
    path: &Path,
    state: &CampaignState,
    sink: Option<&dyn EventSink>,
    batch_duration: Duration,
) {
    // Append (never substitute) the marker: `state.0` and `state.1` in one
    // directory must not share a temp file, and a checkpoint path that
    // itself ends in `.tmp` must still get a distinct temp sibling.
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, state.to_json())
        .and_then(|()| std::fs::rename(&tmp, path))
        .unwrap_or_else(|err| panic!("write campaign checkpoint {}: {err}", path.display()));
    if let Some(sink) = sink {
        sink.event(&CampaignEvent::CheckpointWritten {
            path: path.to_path_buf(),
            completed: state.records().len(),
            batch_duration_micros: batch_duration.as_micros() as u64,
        });
    }
}

/// Shared per-run progress state: the drain workers update it, throttle
/// heartbeat emission through it, and republish executor notes from it.
struct RunProgress {
    telemetry: Telemetry,
    unit_execute_micros: lfi_telemetry::Histogram,
    units_executed: lfi_telemetry::Counter,
    shard: ShardSpec,
    run_start: Instant,
    heartbeat_interval: Option<Duration>,
    /// Run time (micros since `run_start`) of the last emitted heartbeat.
    last_heartbeat_micros: AtomicU64,
    /// Units executed this session so far.
    executed: AtomicUsize,
    /// Units planned this session so far (grows batch by batch).
    planned: AtomicUsize,
}

impl RunProgress {
    fn new(telemetry: Telemetry, shard: ShardSpec, heartbeat_interval: Option<Duration>) -> Self {
        RunProgress {
            unit_execute_micros: telemetry.histogram("unit_execute_micros"),
            units_executed: telemetry.counter("units_executed"),
            telemetry,
            shard,
            run_start: Instant::now(),
            heartbeat_interval,
            last_heartbeat_micros: AtomicU64::new(0),
            executed: AtomicUsize::new(0),
            planned: AtomicUsize::new(0),
        }
    }

    /// Republish any notes the executor queued since the last drain as
    /// [`CampaignEvent::Note`]s.
    fn publish_notes(&self, sink: &dyn EventSink) {
        for note in self.telemetry.take_notes() {
            sink.event(&CampaignEvent::Note {
                source: note.source,
                message: note.message,
            });
        }
    }

    /// Emit a heartbeat if a full interval has elapsed since the last one.
    /// Workers race on the claim; the compare-exchange lets exactly one
    /// win per interval.
    fn maybe_heartbeat(&self, sink: &dyn EventSink) {
        let Some(interval) = self.heartbeat_interval else {
            return;
        };
        let elapsed = self.run_start.elapsed().as_micros() as u64;
        let last = self.last_heartbeat_micros.load(Ordering::Relaxed);
        if elapsed.saturating_sub(last) < interval.as_micros() as u64 {
            return;
        }
        if self
            .last_heartbeat_micros
            .compare_exchange(last, elapsed, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let units_done = self.executed.load(Ordering::Relaxed);
        // units/sec scaled by 1000 (the wire format is integer-only):
        // done / (elapsed/1e6) * 1000 = done * 1e9 / elapsed_micros.
        let milli_units_per_sec = (units_done as u64)
            .saturating_mul(1_000_000_000)
            .checked_div(elapsed)
            .unwrap_or(0);
        sink.event(&CampaignEvent::Heartbeat {
            shard: self.shard,
            units_done,
            units_planned: self.planned.load(Ordering::Relaxed),
            milli_units_per_sec,
            metrics: self.telemetry.snapshot(),
        });
    }
}

/// Mix a base seed and a stream index into an independent per-stream seed
/// (splitmix64 finalizer). Unlike `seed + index`, two adjacent base seeds
/// never produce near-identical seed sequences shifted by one.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `(target, workload arguments)` session key.
type SessionKey = (String, Vec<String>);
/// One cache slot: prepared at most once, `None` when the target cannot
/// snapshot.
type SessionSlot = Arc<OnceLock<Option<Arc<Session>>>>;

/// The engine-owned cache of prepared sessions, keyed by `(target,
/// workload arguments)` and shared across worker threads. Each key is
/// prepared at most once, by the first worker that needs it; workers
/// needing the same key wait for that preparation, while different keys
/// prepare concurrently. A `None` entry records that the target cannot
/// snapshot, so the fallback decision is also made only once.
#[derive(Default)]
struct SessionCache {
    slots: Mutex<BTreeMap<SessionKey, SessionSlot>>,
}

impl SessionCache {
    fn get(&self, executor: &dyn Executor, target: &str, args: &[String]) -> Option<Arc<Session>> {
        let slot = {
            let mut slots = self.slots.lock().unwrap();
            slots
                .entry((target.to_string(), args.to_vec()))
                .or_default()
                .clone()
        };
        slot.get_or_init(|| executor.prepare(target, args).map(Arc::new))
            .clone()
    }

    fn prepared(&self) -> usize {
        self.slots
            .lock()
            .unwrap()
            .values()
            .filter(|slot| matches!(slot.get(), Some(Some(_))))
            .count()
    }
}

/// Adapter exposing the executor's session knowledge to
/// [`Strategy::order_units`].
struct ExecutorDepths<'a>(&'a dyn Executor);

impl DepthOracle for ExecutorDepths<'_> {
    fn first_call_depth(&self, target: &str, args: &[String], function: &str) -> Option<usize> {
        self.0.first_call_depth(target, args, function)
    }
}

/// A fault-space exploration campaign.
pub struct Campaign<'a> {
    space: FaultSpace,
    executor: &'a dyn Executor,
    config: CampaignConfig,
    /// Workload suites per target, in the space's first-seen target order.
    suites: Vec<(String, Vec<Vec<String>>)>,
    /// Canonical id of the first unit of each fault point.
    unit_base: Vec<usize>,
    /// Total canonical units (points × their workload suites).
    total_units: usize,
    /// Prepared sessions (snapshot backend only).
    sessions: SessionCache,
}

impl<'a> Campaign<'a> {
    /// Start building a campaign over `space` with the fluent
    /// [`CampaignBuilder`] API — strategy, backend, jobs, seed, shard,
    /// event sink, and checkpoint path — finished by
    /// [`CampaignBuilder::build`] into a
    /// [`CampaignDriver`](crate::builder::CampaignDriver).
    pub fn builder(space: FaultSpace, executor: &'a dyn Executor) -> CampaignBuilder<'a> {
        CampaignBuilder::new(space, executor)
    }

    /// Create a campaign over `space`, executing with `executor`. The
    /// canonical unit layout (every point × its target's workload suite) is
    /// fixed here; workload suites are queried once per target.
    pub fn new(space: FaultSpace, executor: &'a dyn Executor, config: CampaignConfig) -> Self {
        let mut suites: Vec<(String, Vec<Vec<String>>)> = Vec::new();
        let mut unit_base = Vec::with_capacity(space.len());
        let mut total_units = 0usize;
        for point in &space.points {
            let suite_len = match suites.iter().find(|(name, _)| *name == point.target) {
                Some((_, suite)) => suite.len(),
                None => {
                    let suite = executor.workloads(&point.target);
                    let len = suite.len();
                    suites.push((point.target.clone(), suite));
                    len
                }
            };
            unit_base.push(total_units);
            total_units += suite_len;
        }
        if config.backend == ExecBackend::Snapshot {
            executor.set_snapshot_budget(config.snapshot_budget);
        }
        Campaign {
            space,
            executor,
            config,
            suites,
            unit_base,
            total_units,
            sessions: SessionCache::default(),
        }
    }

    /// Number of sessions the snapshot backend has prepared so far (0 under
    /// the fresh backend, and for executors that never snapshot).
    pub fn prepared_sessions(&self) -> usize {
        self.sessions.prepared()
    }

    /// Bytes of resident snapshot state the executor currently holds.
    pub fn snapshot_bytes(&self) -> u64 {
        self.executor.snapshot_bytes()
    }

    /// Run one unit through the configured backend.
    fn run_unit(&self, unit: &WorkUnit) -> Execution {
        match self.config.backend {
            ExecBackend::Fresh => self.executor.execute(unit),
            ExecBackend::Snapshot => {
                match self
                    .sessions
                    .get(self.executor, &unit.point.target, &unit.args)
                {
                    Some(session) => self.executor.execute_from(&session, unit),
                    None => self.executor.execute(unit),
                }
            }
        }
    }

    /// The fault space under exploration.
    pub fn space(&self) -> &FaultSpace {
        &self.space
    }

    /// Total canonical work units: every fault point × its target's
    /// workload suite.
    pub fn total_units(&self) -> usize {
        self.total_units
    }

    /// Number of canonical work units owned by `shard`: the units of its
    /// round-robin slice of fault points. Shards partition [`Campaign::
    /// total_units`]: summing over `0..count` gives the total exactly.
    pub fn shard_units(&self, shard: ShardSpec) -> usize {
        (0..self.space.len())
            .filter(|&point| shard.owns_point(point))
            .map(|point| self.point_units(point))
            .sum()
    }

    /// Number of canonical work units covered by `lease`'s point range
    /// (clamped to the space). Leases that tile the space partition
    /// [`Campaign::total_units`] exactly, like shards do.
    pub fn lease_units(&self, lease: Lease) -> usize {
        (lease.start..lease.end.min(self.space.len()))
            .map(|point| self.point_units(point))
            .sum()
    }

    /// Workload-suite size of one fault point (units between its base and
    /// the next point's).
    fn point_units(&self, point: usize) -> usize {
        let next = self
            .unit_base
            .get(point + 1)
            .copied()
            .unwrap_or(self.total_units);
        next - self.unit_base[point]
    }

    fn suite(&self, target: &str) -> &[Vec<String>] {
        self.suites
            .iter()
            .find(|(name, _)| name == target)
            .map(|(_, suite)| suite.as_slice())
            .unwrap_or(&[])
    }

    /// Expand the full space into the canonical work-unit list (every point
    /// in enumeration order × its workloads). Unit ids equal positions.
    pub fn units(&self) -> Vec<WorkUnit> {
        self.units_for((0..self.space.len()).collect::<Vec<_>>().as_slice())
    }

    /// Expand a batch of fault-point indices into work units with canonical
    /// ids and derived seeds.
    fn units_for(&self, points: &[usize]) -> Vec<WorkUnit> {
        let mut units = Vec::new();
        for &point_index in points {
            let point = &self.space.points[point_index];
            let scenario = point.scenario();
            for (w, args) in self.suite(&point.target).iter().enumerate() {
                let id = self.unit_base[point_index] + w;
                units.push(WorkUnit {
                    id,
                    point: point.clone(),
                    scenario: scenario.clone(),
                    args: args.clone(),
                    seed: derive_seed(self.config.seed, id as u64),
                });
            }
        }
        units
    }

    /// The identity of this campaign's plan: an FNV-1a fold of the space
    /// digest (full point identity, annotations included) and every
    /// target's workload suite. Combined with the strategy fingerprint to
    /// tag persisted state — see the module docs for what this invalidates.
    pub fn plan_hash(&self) -> u64 {
        let mut hash = self.space.digest();
        let mut mix = |bytes: &[u8]| {
            for byte in bytes {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (target, suite) in &self.suites {
            mix(target.as_bytes());
            mix(&[0xfe]);
            for args in suite {
                for arg in args {
                    mix(arg.as_bytes());
                    mix(&[0x1f]);
                }
                mix(&[0xfd]);
            }
        }
        hash
    }

    /// Drain one batch of pending units on the worker pool and return the
    /// completed records, ordered by unit id. Spawns `min(jobs, pending)`
    /// threads — zero when there is nothing to run. Workers stream
    /// `UnitStarted` / `UnitFinished` / first-seen `CrashFound` events into
    /// `sink` as they go, plus throttled `Heartbeat`s and any `Note`s the
    /// executor queued while running a unit.
    fn drain(
        &self,
        pending: &[&WorkUnit],
        sink: Option<&dyn EventSink>,
        seen_signatures: &Mutex<BTreeSet<CrashSignature>>,
        progress: &RunProgress,
    ) -> (Vec<RunRecord>, usize) {
        if pending.is_empty() {
            return (Vec::new(), 0);
        }
        let workers = self.config.jobs.max(1).min(pending.len());
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<RunRecord>> = Mutex::new(Vec::new());
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let next = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = pending.get(next) else {
                        break;
                    };
                    if let Some(sink) = sink {
                        sink.event(&CampaignEvent::UnitStarted {
                            unit: unit.id,
                            target: unit.point.target.clone(),
                            function: unit.point.function.clone(),
                            offset: unit.point.offset,
                        });
                    }
                    let started = Instant::now();
                    let execution = self.run_unit(unit);
                    let duration_micros = started.elapsed().as_micros() as u64;
                    progress.unit_execute_micros.record(duration_micros);
                    progress.units_executed.inc();
                    progress.executed.fetch_add(1, Ordering::Relaxed);
                    let record = RunRecord {
                        unit: unit.id,
                        target: unit.point.target.clone(),
                        function: unit.point.function.clone(),
                        offset: unit.point.offset,
                        args: unit.args.clone(),
                        outcome: execution.outcome,
                        injections: execution.injections,
                        injected_sites: execution.injected_sites,
                        crashes: execution.crashes,
                        virtual_time: execution.virtual_time,
                    };
                    if let Some(sink) = sink {
                        sink.event(&CampaignEvent::UnitFinished {
                            record: record.clone(),
                            duration_micros,
                        });
                        // Announce each distinct signature once per run,
                        // right after the unit that first exhibited it.
                        // The seen-set lock is released before the sink is
                        // invoked: a slow sink may delay its own worker,
                        // but must not serialize the others through the
                        // signature mutex.
                        for signature in crash_signatures(&record) {
                            let fresh_signature =
                                seen_signatures.lock().unwrap().insert(signature.clone());
                            if fresh_signature {
                                sink.event(&CampaignEvent::CrashFound(signature));
                            }
                        }
                        progress.publish_notes(sink);
                        progress.maybe_heartbeat(sink);
                    }
                    results.lock().unwrap().push(record);
                });
            }
        });
        let mut fresh = results.into_inner().unwrap();
        fresh.sort_by_key(|r| r.unit);
        (fresh, workers)
    }

    /// The engine loop behind [`CampaignDriver`](crate::builder::
    /// CampaignDriver) (and the deprecated [`Campaign::run`] shim):
    /// repeatedly request a batch from the strategy, execute its units that
    /// `state` has not already completed, feed the results back through the
    /// history, and stop when the strategy has nothing new to schedule.
    /// Fault points outside `shard` (and outside `lease`, when one is
    /// set) are pre-marked dispatched, confining any strategy's schedule
    /// to the run's slice. Progress streams through `sink`, and
    /// `checkpoint` (when set) persists the state after every batch.
    /// `known_signatures` seeds the run with crash signatures first seen
    /// elsewhere (a supervisor's broadcasts): adaptive strategies
    /// escalate around them, and they are not re-announced as
    /// `CrashFound` events.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_driven(
        &self,
        strategy: &dyn Strategy,
        state: &mut CampaignState,
        shard: ShardSpec,
        lease: Option<Lease>,
        known_signatures: &[CrashSignature],
        sink: Option<&dyn EventSink>,
        checkpoint: Option<&Path>,
    ) -> ShardOutcome {
        // The state tag covers the strategy's scheduling identity, the plan
        // (point identity incl. annotations + workload suites), AND the
        // run's slice: unit ids are indices into this exact expansion and
        // the record set is one slice of it, so a resume against anything
        // else — including the same plan under a different shard or lease
        // range — must start fresh. Lease identity is the *range* (not the
        // grant id): a reassigned lease adopts the previous worker's
        // checkpoint and re-executes only unfinished work.
        let tag = match lease {
            Some(lease) => format!(
                "{}@{:016x}%{}..{}",
                strategy.fingerprint(),
                self.plan_hash(),
                lease.start,
                lease.end
            ),
            None => format!(
                "{}@{:016x}#{}",
                strategy.fingerprint(),
                self.plan_hash(),
                shard
            ),
        };
        state.adopt(&tag, self.config.seed);

        let mut history = CampaignHistory::new(self.unit_base.clone(), self.total_units);
        // Points owned by other shards (or outside the lease range) are
        // excluded up front: strategies see them as already dispatched and
        // schedule around them, so the engine never has to second-guess a
        // batch (a strategy that emits one point at a time still
        // terminates correctly).
        for point in 0..self.space.len() {
            let owned =
                shard.owns_point(point) && lease.is_none_or(|lease| lease.owns_point(point));
            if !owned {
                history.exclude_point(point);
            }
        }
        let seen_signatures: Mutex<BTreeSet<CrashSignature>> = Mutex::new(BTreeSet::new());
        // Broadcast signatures steer scheduling (via the history's hint
        // set) and suppress duplicate announcements, but never contribute
        // records — merged results stay byte-identical to a run without
        // them for history-independent schedules.
        for signature in known_signatures {
            history.add_signature_hint(signature.clone());
            seen_signatures.lock().unwrap().insert(signature.clone());
        }
        for record in state.records() {
            seen_signatures
                .lock()
                .unwrap()
                .extend(crash_signatures(record));
            history.observe(record.clone());
        }

        let telemetry = self.executor.telemetry();
        let triage_micros = telemetry.histogram("triage_micros");
        let checkpoint_write_micros = telemetry.histogram("checkpoint_write_micros");
        let progress = RunProgress::new(telemetry.clone(), shard, self.config.heartbeat_interval);

        let mut executed_now = 0usize;
        let mut peak_workers = 0usize;
        let mut batch_started = Instant::now();
        loop {
            let proposed = strategy.next_batch(&self.space, &history);
            // Each point runs at most once per campaign: drop repeats
            // within the batch and points dispatched earlier. An empty
            // batch after filtering ends the run (and bounds it: at most
            // `space.len()` non-empty batches).
            let mut seen = BTreeSet::new();
            let batch: Vec<usize> = proposed
                .into_iter()
                .filter(|&i| !history.dispatched(i) && seen.insert(i))
                .collect();
            if batch.is_empty() {
                break;
            }
            let units = self.units_for(&batch);
            history.begin_batch(&batch, units.len());
            progress.planned.fetch_add(units.len(), Ordering::Relaxed);
            let mut pending: Vec<&WorkUnit> =
                units.iter().filter(|u| !state.completed(u.id)).collect();
            if let Some(sink) = sink {
                sink.event(&CampaignEvent::BatchPlanned {
                    batch: history.batches(),
                    points: batch.len(),
                    units: units.len(),
                    pending: pending.len(),
                });
            }
            if self.config.backend == ExecBackend::Snapshot && !pending.is_empty() {
                // Hand the executor the batch's session keys so it can warm
                // per-session state (snapshot-tree prefetch) before workers
                // start forking, then let the strategy reorder the batch for
                // locality. Both are pure performance moves: the prefetch
                // cannot change results, and ordering is a permutation of
                // `pending` — `drain` sorts records by canonical unit id.
                let mut keys: Vec<PrefetchKey> = pending
                    .iter()
                    .map(|u| PrefetchKey {
                        target: u.point.target.clone(),
                        args: u.args.clone(),
                        function: u.point.function.clone(),
                    })
                    .collect();
                keys.sort();
                keys.dedup();
                self.executor.prefetch_batch(&keys, self.config.jobs);
                // Order after the prefetch: the prefetch prepares sessions
                // and discovers first-call depths, which is exactly what
                // the ordering consults.
                strategy.order_units(&mut pending, &ExecutorDepths(self.executor));
            }
            let (fresh, workers) = self.drain(&pending, sink, &seen_signatures, &progress);
            peak_workers = peak_workers.max(workers);
            let batch_executed = fresh.len();
            executed_now += batch_executed;
            for record in fresh {
                history.observe(record.clone());
                state.push(record);
            }
            // Persist only batches that added records: a fully-resumed
            // batch has nothing new, and rewriting the file would briefly
            // unseal an already-complete checkpoint on disk.
            if let Some(path) = checkpoint.filter(|_| batch_executed > 0) {
                let span = checkpoint_write_micros.start();
                write_checkpoint(path, state, sink, batch_started.elapsed());
                span.finish();
                batch_started = Instant::now();
            }
        }

        // The strategy has nothing left: seal the state so a merge step
        // can tell this finished shard from a mid-run checkpoint of an
        // interrupted one, and persist the sealed form.
        state.mark_complete();
        if let Some(path) = checkpoint {
            let span = checkpoint_write_micros.start();
            write_checkpoint(path, state, sink, batch_started.elapsed());
            span.finish();
        }

        let triage_span = triage_micros.start();
        let final_triage = triage(state.records());
        triage_span.finish();
        let report = CampaignReport {
            strategy: strategy.name().to_string(),
            space_size: self.space.len(),
            planned_points: history.dispatched_points(),
            units_total: history.planned_units(),
            batches: history.batches(),
            peak_workers,
            executed_now,
            triage: final_triage,
            records: state.records().to_vec(),
            metrics: telemetry.enabled().then(|| telemetry.snapshot()),
        };
        if let Some(sink) = sink {
            // Flush any notes queued after the last unit finished, then
            // close the stream.
            progress.publish_notes(sink);
            sink.event(&CampaignEvent::ShardFinished {
                shard,
                executed: executed_now,
                records: report.records.len(),
            });
        }
        ShardOutcome {
            shard,
            tag,
            seed: self.config.seed,
            report,
        }
    }

    /// Run the whole campaign to completion, blocking, unsharded, with no
    /// event stream — the pre-builder API, kept for one release.
    ///
    /// `state` is updated in place; persist it with
    /// [`CampaignState::to_json`] to make the campaign resumable.
    #[deprecated(
        note = "build a CampaignDriver instead: Campaign::builder(space, &executor)\
                .strategy(...).build().run_with_state(&mut state)"
    )]
    pub fn run(&self, strategy: &dyn Strategy, state: &mut CampaignState) -> CampaignReport {
        self.run_driven(strategy, state, ShardSpec::FULL, None, &[], None, None)
            .report
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::atomic::AtomicUsize;

    use super::*;

    /// A synthetic executor: "crashes" whenever the fault-point offset is a
    /// multiple of 8, and counts how many executions happened.
    struct FakeExecutor {
        executions: AtomicUsize,
    }

    impl FakeExecutor {
        fn new() -> FakeExecutor {
            FakeExecutor {
                executions: AtomicUsize::new(0),
            }
        }
    }

    impl Executor for FakeExecutor {
        fn workloads(&self, _target: &str) -> Vec<Vec<String>> {
            vec![vec!["a".into()], vec!["b".into()]]
        }

        fn execute(&self, unit: &WorkUnit) -> Execution {
            self.executions.fetch_add(1, Ordering::Relaxed);
            let crashes = if unit.point.offset.is_multiple_of(8) {
                vec![CrashInfo {
                    module: unit.point.target.clone(),
                    offset: unit.point.offset + 100,
                    description: "segfault".into(),
                    in_function: Some("victim".into()),
                    backtrace: vec!["victim".into(), "main".into()],
                }]
            } else {
                Vec::new()
            };
            Execution {
                outcome: if crashes.is_empty() {
                    OutcomeKind::Passed
                } else {
                    OutcomeKind::Crashed
                },
                injections: 1,
                injected_sites: vec![InjectedSite {
                    module: unit.point.target.clone(),
                    offset: unit.point.offset,
                    caller: unit.point.caller.clone(),
                }],
                crashes,
                virtual_time: 10,
            }
        }
    }

    fn demo_space(points: usize) -> FaultSpace {
        FaultSpace {
            points: (0..points)
                .map(|i| crate::space::FaultPoint {
                    target: "demo".into(),
                    function: "read".into(),
                    offset: (i as u64) * 4,
                    caller: Some("main".into()),
                    retval: -1,
                    ..crate::space::FaultPoint::default()
                })
                .collect(),
        }
    }

    fn scenario_map(units: &[WorkUnit]) -> BTreeMap<usize, (u64, Vec<String>)> {
        units
            .iter()
            .map(|u| (u.id, (u.point.offset, u.args.clone())))
            .collect()
    }

    #[test]
    fn units_expand_points_by_workload_deterministically() {
        let executor = FakeExecutor::new();
        let campaign = Campaign::new(demo_space(3), &executor, CampaignConfig::default());
        let units = campaign.units();
        assert_eq!(units.len(), 6, "3 points x 2 workloads");
        assert_eq!(campaign.total_units(), 6);
        assert_eq!(scenario_map(&units), scenario_map(&campaign.units()));
        // Canonical ids equal positions in the full expansion.
        assert_eq!(
            units.iter().map(|u| u.id).collect::<Vec<_>>(),
            (0..6).collect::<Vec<_>>()
        );
        for unit in &units {
            unit.scenario.validate().unwrap();
        }
    }

    #[test]
    fn unit_seeds_do_not_collide_across_adjacent_campaign_seeds() {
        let executor = FakeExecutor::new();
        let seeds_of = |seed| {
            Campaign::new(
                demo_space(64),
                &executor,
                CampaignConfig {
                    jobs: 1,
                    seed,
                    ..CampaignConfig::default()
                },
            )
            .units()
            .iter()
            .map(|u| u.seed)
            .collect::<Vec<u64>>()
        };
        let a = seeds_of(7);
        let b = seeds_of(8);
        // With the old `seed.wrapping_add(id)` derivation, b was a shifted
        // by one: 127 of 128 unit seeds shared. The splitmix64-style mix
        // must keep the two campaigns' seed sets disjoint.
        let set_a: BTreeSet<u64> = a.iter().copied().collect();
        assert_eq!(
            set_a.len(),
            a.len(),
            "unit seeds within a campaign are distinct"
        );
        assert!(
            b.iter().all(|seed| !set_a.contains(seed)),
            "adjacent campaign seeds must not share unit seeds"
        );
        assert_eq!(a, seeds_of(7), "derivation is deterministic");
    }

    #[test]
    fn parallel_runs_match_serial_runs() {
        let serial_exec = FakeExecutor::new();
        let serial = Campaign::builder(demo_space(9), &serial_exec)
            .jobs(1)
            .seed(7)
            .build()
            .run_to_completion()
            .report;

        let parallel_exec = FakeExecutor::new();
        let parallel = Campaign::builder(demo_space(9), &parallel_exec)
            .jobs(4)
            .seed(7)
            .build()
            .run_to_completion()
            .report;

        assert_eq!(serial.records, parallel.records);
        assert_eq!(serial.triage.buckets.len(), parallel.triage.buckets.len());
        assert_eq!(parallel_exec.executions.load(Ordering::Relaxed), 18);
        assert_eq!(parallel.peak_workers, 4);
        assert_eq!(serial.peak_workers, 1);
    }

    /// An executor that blocks until `expected` workers are inside
    /// `execute` at the same time — proof the pool genuinely overlaps work
    /// (wall-clock scaling then only depends on available cores).
    struct RendezvousExecutor {
        expected: usize,
        inside: std::sync::Mutex<usize>,
        all_in: std::sync::Condvar,
    }

    impl Executor for RendezvousExecutor {
        fn workloads(&self, _target: &str) -> Vec<Vec<String>> {
            vec![vec![]]
        }

        fn execute(&self, _unit: &WorkUnit) -> Execution {
            let mut inside = self.inside.lock().unwrap();
            *inside += 1;
            if *inside >= self.expected {
                self.all_in.notify_all();
            } else {
                // Wait (bounded) until every other worker has arrived; a
                // serial pool would deadlock here and hit the timeout.
                let deadline = std::time::Duration::from_secs(10);
                while *inside < self.expected {
                    let (guard, result) = self.all_in.wait_timeout(inside, deadline).unwrap();
                    inside = guard;
                    assert!(
                        !result.timed_out(),
                        "workers never overlapped: the pool is not parallel"
                    );
                }
            }
            Execution {
                outcome: OutcomeKind::Passed,
                injections: 0,
                injected_sites: vec![],
                crashes: vec![],
                virtual_time: 1,
            }
        }
    }

    #[test]
    fn workers_execute_units_concurrently() {
        let executor = RendezvousExecutor {
            expected: 4,
            inside: std::sync::Mutex::new(0),
            all_in: std::sync::Condvar::new(),
        };
        let report = Campaign::builder(demo_space(4), &executor)
            .jobs(4)
            .seed(7)
            .build()
            .run_to_completion()
            .report;
        assert_eq!(report.executed_now, 4);
    }

    #[test]
    fn resumed_campaigns_skip_completed_units() {
        let executor = FakeExecutor::new();
        let driver = Campaign::builder(demo_space(4), &executor).build();
        let mut state = CampaignState::default();
        let first = driver.run_with_state(&mut state).report;
        assert_eq!(first.executed_now, 8);
        assert_eq!(first.batches, 1, "exhaustive is a single-batch schedule");

        // Round-trip the state through JSON, then run again: nothing left.
        let mut resumed = CampaignState::from_json(&state.to_json()).unwrap();
        let second = driver.run_with_state(&mut resumed).report;
        assert_eq!(second.executed_now, 0, "all units already completed");
        assert_eq!(second.records, first.records);
        assert_eq!(executor.executions.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn resuming_against_a_different_fault_space_starts_fresh() {
        let executor = FakeExecutor::new();
        let mut state = CampaignState::default();
        Campaign::builder(demo_space(3), &executor)
            .build()
            .run_with_state(&mut state);

        // Same strategy and seed, but the space grew: the stale unit ids
        // must be discarded, not misapplied.
        let report = Campaign::builder(demo_space(4), &executor)
            .build()
            .run_with_state(&mut state)
            .report;
        assert_eq!(report.executed_now, 8, "all units of the new plan re-ran");
        assert_eq!(report.records.len(), 8);
    }

    /// A strategy that schedules one point per batch, in reverse order —
    /// exercises the batch loop and the canonical-id invariant (ids must
    /// not depend on schedule order).
    struct ReverseOneByOne;

    impl Strategy for ReverseOneByOne {
        fn name(&self) -> &str {
            "reverse"
        }

        fn next_batch(&self, space: &FaultSpace, history: &CampaignHistory) -> Vec<usize> {
            (0..space.len())
                .rev()
                .find(|&i| !history.dispatched(i))
                .into_iter()
                .collect()
        }
    }

    #[test]
    fn batched_schedules_produce_the_same_records_as_single_batch_ones() {
        let exhaustive_exec = FakeExecutor::new();
        let forward = Campaign::builder(demo_space(5), &exhaustive_exec)
            .build()
            .run_to_completion()
            .report;

        let reverse_exec = FakeExecutor::new();
        let reverse = Campaign::builder(demo_space(5), &reverse_exec)
            .strategy(ReverseOneByOne)
            .build()
            .run_to_completion()
            .report;

        // Same units, same ids, same outcomes — only the schedule differed.
        assert_eq!(forward.records, reverse.records);
        assert_eq!(reverse.batches, 5, "one point per batch");
        assert_eq!(forward.units_total, reverse.units_total);
    }

    /// A strategy that keeps re-emitting the same points forever; the
    /// engine's dispatched-filter must terminate the campaign anyway.
    struct Stubborn;

    impl Strategy for Stubborn {
        fn name(&self) -> &str {
            "stubborn"
        }

        fn next_batch(&self, space: &FaultSpace, _history: &CampaignHistory) -> Vec<usize> {
            // Duplicates within the batch and across batches, plus an
            // out-of-range index for good measure.
            (0..space.len())
                .chain(0..space.len())
                .chain([999])
                .collect()
        }
    }

    #[test]
    fn re_emitted_points_are_dispatched_at_most_once() {
        let executor = FakeExecutor::new();
        let report = Campaign::builder(demo_space(3), &executor)
            .strategy(Stubborn)
            .build()
            .run_to_completion()
            .report;
        assert_eq!(report.executed_now, 6, "3 points x 2 workloads, once each");
        assert_eq!(report.planned_points, 3);
        assert_eq!(executor.executions.load(Ordering::Relaxed), 6);
    }

    /// A session-capable fake: sessions carry the `(target, args)` key they
    /// were prepared for, `execute_from` produces the same execution as
    /// `execute`, and both preparation and per-path executions are counted.
    struct SessionExecutor {
        inner: FakeExecutor,
        snapshottable: bool,
        prepares: AtomicUsize,
        forked: AtomicUsize,
    }

    impl SessionExecutor {
        fn new(snapshottable: bool) -> SessionExecutor {
            SessionExecutor {
                inner: FakeExecutor::new(),
                snapshottable,
                prepares: AtomicUsize::new(0),
                forked: AtomicUsize::new(0),
            }
        }
    }

    impl Executor for SessionExecutor {
        fn workloads(&self, target: &str) -> Vec<Vec<String>> {
            self.inner.workloads(target)
        }

        fn prepare(&self, target: &str, args: &[String]) -> Option<Session> {
            // Count every consultation, including refusals — the engine's
            // cache must memoize the `None` outcome too.
            self.prepares.fetch_add(1, Ordering::Relaxed);
            if !self.snapshottable {
                return None;
            }
            Some(Session::new((target.to_string(), args.to_vec())))
        }

        fn execute_from(&self, session: &Session, unit: &WorkUnit) -> Execution {
            let (target, args) = session
                .downcast_ref::<(String, Vec<String>)>()
                .expect("session payload");
            assert_eq!(target, &unit.point.target, "session matches unit");
            assert_eq!(args, &unit.args, "session matches workload");
            self.forked.fetch_add(1, Ordering::Relaxed);
            self.inner.execute(unit)
        }

        fn execute(&self, unit: &WorkUnit) -> Execution {
            self.inner.execute(unit)
        }
    }

    #[test]
    fn snapshot_backend_prepares_once_per_target_and_workload() {
        let executor = SessionExecutor::new(true);
        let driver = Campaign::builder(demo_space(9), &executor)
            .backend(ExecBackend::Snapshot)
            .jobs(4)
            .seed(7)
            .build();
        let report = driver.run_to_completion().report;
        assert_eq!(report.executed_now, 18, "9 points x 2 workloads");
        // One target, two workloads: exactly two sessions, however many
        // workers raced to prepare them.
        assert_eq!(executor.prepares.load(Ordering::Relaxed), 2);
        assert_eq!(driver.campaign().prepared_sessions(), 2);
        // Every unit ran through its session fork, none through execute's
        // session-path counter... (execute is also the fork's delegate here,
        // so count forks explicitly).
        assert_eq!(executor.forked.load(Ordering::Relaxed), 18);
    }

    #[test]
    fn snapshot_backend_matches_fresh_backend_records() {
        let fresh_exec = FakeExecutor::new();
        let fresh = Campaign::builder(demo_space(7), &fresh_exec)
            .build()
            .run_to_completion()
            .report;

        let session_exec = SessionExecutor::new(true);
        let snapshot = Campaign::builder(demo_space(7), &session_exec)
            .backend(ExecBackend::Snapshot)
            .jobs(3)
            .seed(7)
            .build()
            .run_to_completion()
            .report;

        assert_eq!(fresh.records, snapshot.records);
        assert_eq!(fresh.triage.buckets, snapshot.triage.buckets);
    }

    #[test]
    fn unsnapshottable_targets_fall_back_to_fresh_execution() {
        let executor = SessionExecutor::new(false);
        let driver = Campaign::builder(demo_space(4), &executor)
            .backend(ExecBackend::Snapshot)
            .jobs(2)
            .seed(7)
            .build();
        let report = driver.run_to_completion().report;
        assert_eq!(report.executed_now, 8);
        assert_eq!(executor.forked.load(Ordering::Relaxed), 0, "no sessions");
        assert_eq!(driver.campaign().prepared_sessions(), 0);
        // `prepare` was consulted once per (target, workload) — one target
        // with two workloads — not once per unit: the None outcome is
        // cached too.
        assert_eq!(executor.prepares.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn backend_names_round_trip_through_display_and_from_str() {
        for backend in [ExecBackend::Fresh, ExecBackend::Snapshot] {
            let name = backend.to_string();
            assert_eq!(name.parse::<ExecBackend>().unwrap(), backend);
        }
        let err = "qemu".parse::<ExecBackend>().unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("qemu") && message.contains("fresh") && message.contains("snapshot"),
            "error names the rejected value and the accepted ones: {message}"
        );
    }

    /// The payload round-trips by value through `Session::downcast`, and a
    /// type mismatch yields `None` instead of panicking.
    #[test]
    fn sessions_downcast_by_value() {
        let session = Session::new(vec![1u64, 2, 3]);
        assert!(session.downcast_ref::<Vec<u64>>().is_some());
        assert_eq!(session.downcast::<Vec<u64>>(), Some(vec![1u64, 2, 3]));
        let session = Session::new("payload".to_string());
        assert_eq!(session.downcast::<u32>(), None);
    }
}
