//! The campaign engine: a work queue of concrete scenarios executed on a
//! parallel worker pool.
//!
//! The engine expands a strategy's plan into [`WorkUnit`]s (one per selected
//! fault point and workload), skips units a resumed [`CampaignState`] has
//! already completed, and drains the remainder on `jobs` worker threads.
//! Each worker pulls units off a shared cursor and hands them to the
//! [`Executor`], which builds a **fresh VM instance per unit** — runs share
//! nothing but the immutable target modules, so results are independent of
//! the worker count and interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use lfi_core::Scenario;

use crate::space::{FaultPoint, FaultSpace};
use crate::state::CampaignState;
use crate::strategy::Strategy;
use crate::triage::{triage, CampaignReport};

/// How one campaign run ended, from the triage point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Exit code 0.
    Passed,
    /// Clean non-zero exit.
    CleanFailure(i64),
    /// Crash (the interesting case).
    Crashed,
    /// Budget exhausted or all threads blocked.
    Hung,
}

impl OutcomeKind {
    /// Whether this outcome is a crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, OutcomeKind::Crashed)
    }
}

/// One observed crash, with enough context to form a signature and to match
/// known bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashInfo {
    /// Module containing the faulting instruction.
    pub module: String,
    /// Code offset of the faulting instruction.
    pub offset: u64,
    /// Human-readable description (fault kind and location).
    pub description: String,
    /// Function containing the faulting instruction, if resolvable.
    pub in_function: Option<String>,
    /// Symbolized backtrace function names, innermost first.
    pub backtrace: Vec<String>,
}

/// One call site where the unit's fault was actually injected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedSite {
    /// Module of the call site.
    pub module: String,
    /// Code offset of the call site.
    pub offset: u64,
    /// Function containing the call site, if resolvable.
    pub caller: Option<String>,
}

/// The executor-produced result of one work unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// Interpreted outcome.
    pub outcome: OutcomeKind,
    /// Number of injections performed.
    pub injections: u64,
    /// Call sites where the unit's function was failed.
    pub injected_sites: Vec<InjectedSite>,
    /// Observed crashes (a cluster target may produce several).
    pub crashes: Vec<CrashInfo>,
    /// Virtual time consumed.
    pub virtual_time: u64,
}

/// One unit of campaign work: a single-fault-point scenario applied to one
/// workload of the target's test suite.
#[derive(Debug, Clone)]
pub struct WorkUnit {
    /// Stable unit id (index into the strategy's expanded plan). Resuming
    /// the same strategy over the same space reproduces the same ids.
    pub id: usize,
    /// The fault point under test.
    pub point: FaultPoint,
    /// The compiled scenario.
    pub scenario: Scenario,
    /// Workload arguments.
    pub args: Vec<String>,
    /// Seed for the run (derived from the campaign seed and unit id, so
    /// results do not depend on scheduling).
    pub seed: u64,
}

/// The durable record of one executed unit: everything triage and
/// known-bug matching need, and what [`CampaignState`] persists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Unit id.
    pub unit: usize,
    /// Target program.
    pub target: String,
    /// Injected library function.
    pub function: String,
    /// Fault-point call-site offset.
    pub offset: u64,
    /// Workload arguments.
    pub args: Vec<String>,
    /// Interpreted outcome.
    pub outcome: OutcomeKind,
    /// Number of injections performed.
    pub injections: u64,
    /// Call sites where the function was failed.
    pub injected_sites: Vec<InjectedSite>,
    /// Observed crashes.
    pub crashes: Vec<CrashInfo>,
    /// Virtual time consumed.
    pub virtual_time: u64,
}

/// Runs work units against real targets. Implementations must be shareable
/// across worker threads; every `execute` call is expected to build a fresh
/// VM so units never share mutable state.
pub trait Executor: Sync {
    /// The workload argument lists forming `target`'s default test suite.
    /// Every selected fault point is run once per workload.
    fn workloads(&self, target: &str) -> Vec<Vec<String>>;

    /// Execute one unit on a fresh VM instance.
    fn execute(&self, unit: &WorkUnit) -> Execution;
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Base seed; unit seeds are derived from it and the unit id.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { jobs: 1, seed: 7 }
    }
}

/// A fault-space exploration campaign.
pub struct Campaign<'a> {
    space: FaultSpace,
    executor: &'a dyn Executor,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Create a campaign over `space`, executing with `executor`.
    pub fn new(space: FaultSpace, executor: &'a dyn Executor, config: CampaignConfig) -> Self {
        Campaign {
            space,
            executor,
            config,
        }
    }

    /// The fault space under exploration.
    pub fn space(&self) -> &FaultSpace {
        &self.space
    }

    /// Expand a strategy's plan into the ordered work-unit queue: one unit
    /// per selected fault point and workload of its target.
    pub fn units(&self, strategy: &dyn Strategy) -> Vec<WorkUnit> {
        self.units_from_plan(&strategy.plan(&self.space))
    }

    fn units_from_plan(&self, plan: &[usize]) -> Vec<WorkUnit> {
        let mut units = Vec::new();
        for &point_index in plan {
            let point = &self.space.points[point_index];
            let scenario = point.scenario();
            for args in self.executor.workloads(&point.target) {
                let id = units.len();
                units.push(WorkUnit {
                    id,
                    point: point.clone(),
                    scenario: scenario.clone(),
                    args,
                    seed: self.config.seed.wrapping_add(id as u64),
                });
            }
        }
        units
    }

    /// Run the campaign: execute every unit of the strategy's plan that
    /// `state` has not already completed, on `jobs` workers, then triage all
    /// accumulated records (previous sessions included) into a report.
    ///
    /// `state` is updated in place; persist it with
    /// [`CampaignState::to_json`] to make the campaign resumable.
    pub fn run(&self, strategy: &dyn Strategy, state: &mut CampaignState) -> CampaignReport {
        // The state tag covers the strategy's plan identity AND the fault
        // space: unit ids are indices into this exact plan over this exact
        // space, so a resume against anything else must start fresh.
        let tag = format!("{}@{:016x}", strategy.fingerprint(), self.space.digest());
        state.adopt(&tag, self.config.seed);
        let plan = strategy.plan(&self.space);
        let units = self.units_from_plan(&plan);
        let pending: Vec<&WorkUnit> = units.iter().filter(|u| !state.completed(u.id)).collect();

        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<RunRecord>> = Mutex::new(Vec::new());
        let jobs = self.config.jobs.max(1);
        thread::scope(|scope| {
            for _ in 0..jobs.min(pending.len().max(1)) {
                scope.spawn(|| loop {
                    let next = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = pending.get(next) else {
                        break;
                    };
                    let execution = self.executor.execute(unit);
                    let record = RunRecord {
                        unit: unit.id,
                        target: unit.point.target.clone(),
                        function: unit.point.function.clone(),
                        offset: unit.point.offset,
                        args: unit.args.clone(),
                        outcome: execution.outcome,
                        injections: execution.injections,
                        injected_sites: execution.injected_sites,
                        crashes: execution.crashes,
                        virtual_time: execution.virtual_time,
                    };
                    results.lock().unwrap().push(record);
                });
            }
        });

        let mut fresh = results.into_inner().unwrap();
        fresh.sort_by_key(|r| r.unit);
        let executed_now = fresh.len();
        for record in fresh {
            state.push(record);
        }

        CampaignReport {
            strategy: strategy.name().to_string(),
            space_size: self.space.len(),
            planned_points: plan.len(),
            units_total: units.len(),
            executed_now,
            triage: triage(state.records()),
            records: state.records().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::atomic::AtomicUsize;

    use crate::strategy::Exhaustive;

    use super::*;

    /// A synthetic executor: "crashes" whenever the fault-point offset is a
    /// multiple of 8, and counts how many executions happened.
    struct FakeExecutor {
        executions: AtomicUsize,
    }

    impl Executor for FakeExecutor {
        fn workloads(&self, _target: &str) -> Vec<Vec<String>> {
            vec![vec!["a".into()], vec!["b".into()]]
        }

        fn execute(&self, unit: &WorkUnit) -> Execution {
            self.executions.fetch_add(1, Ordering::Relaxed);
            let crashes = if unit.point.offset.is_multiple_of(8) {
                vec![CrashInfo {
                    module: unit.point.target.clone(),
                    offset: unit.point.offset + 100,
                    description: "segfault".into(),
                    in_function: Some("victim".into()),
                    backtrace: vec!["victim".into(), "main".into()],
                }]
            } else {
                Vec::new()
            };
            Execution {
                outcome: if crashes.is_empty() {
                    OutcomeKind::Passed
                } else {
                    OutcomeKind::Crashed
                },
                injections: 1,
                injected_sites: vec![InjectedSite {
                    module: unit.point.target.clone(),
                    offset: unit.point.offset,
                    caller: unit.point.caller.clone(),
                }],
                crashes,
                virtual_time: 10,
            }
        }
    }

    fn demo_space(points: usize) -> FaultSpace {
        FaultSpace {
            points: (0..points)
                .map(|i| crate::space::FaultPoint {
                    target: "demo".into(),
                    function: "read".into(),
                    offset: (i as u64) * 4,
                    caller: Some("main".into()),
                    retval: -1,
                    errno: None,
                    class: None,
                    reached: None,
                })
                .collect(),
        }
    }

    fn scenario_map(units: &[WorkUnit]) -> BTreeMap<usize, (u64, Vec<String>)> {
        units
            .iter()
            .map(|u| (u.id, (u.point.offset, u.args.clone())))
            .collect()
    }

    #[test]
    fn units_expand_points_by_workload_deterministically() {
        let executor = FakeExecutor {
            executions: AtomicUsize::new(0),
        };
        let campaign = Campaign::new(demo_space(3), &executor, CampaignConfig::default());
        let units = campaign.units(&Exhaustive);
        assert_eq!(units.len(), 6, "3 points x 2 workloads");
        assert_eq!(
            scenario_map(&units),
            scenario_map(&campaign.units(&Exhaustive))
        );
        for unit in &units {
            unit.scenario.validate().unwrap();
        }
    }

    #[test]
    fn parallel_runs_match_serial_runs() {
        let serial_exec = FakeExecutor {
            executions: AtomicUsize::new(0),
        };
        let campaign = Campaign::new(
            demo_space(9),
            &serial_exec,
            CampaignConfig { jobs: 1, seed: 7 },
        );
        let mut serial_state = CampaignState::default();
        let serial = campaign.run(&Exhaustive, &mut serial_state);

        let parallel_exec = FakeExecutor {
            executions: AtomicUsize::new(0),
        };
        let campaign = Campaign::new(
            demo_space(9),
            &parallel_exec,
            CampaignConfig { jobs: 4, seed: 7 },
        );
        let mut parallel_state = CampaignState::default();
        let parallel = campaign.run(&Exhaustive, &mut parallel_state);

        assert_eq!(serial.records, parallel.records);
        assert_eq!(serial.triage.buckets.len(), parallel.triage.buckets.len());
        assert_eq!(parallel_exec.executions.load(Ordering::Relaxed), 18);
    }

    /// An executor that blocks until `expected` workers are inside
    /// `execute` at the same time — proof the pool genuinely overlaps work
    /// (wall-clock scaling then only depends on available cores).
    struct RendezvousExecutor {
        expected: usize,
        inside: std::sync::Mutex<usize>,
        all_in: std::sync::Condvar,
    }

    impl Executor for RendezvousExecutor {
        fn workloads(&self, _target: &str) -> Vec<Vec<String>> {
            vec![vec![]]
        }

        fn execute(&self, _unit: &WorkUnit) -> Execution {
            let mut inside = self.inside.lock().unwrap();
            *inside += 1;
            if *inside >= self.expected {
                self.all_in.notify_all();
            } else {
                // Wait (bounded) until every other worker has arrived; a
                // serial pool would deadlock here and hit the timeout.
                let deadline = std::time::Duration::from_secs(10);
                while *inside < self.expected {
                    let (guard, result) = self.all_in.wait_timeout(inside, deadline).unwrap();
                    inside = guard;
                    assert!(
                        !result.timed_out(),
                        "workers never overlapped: the pool is not parallel"
                    );
                }
            }
            Execution {
                outcome: OutcomeKind::Passed,
                injections: 0,
                injected_sites: vec![],
                crashes: vec![],
                virtual_time: 1,
            }
        }
    }

    #[test]
    fn workers_execute_units_concurrently() {
        let executor = RendezvousExecutor {
            expected: 4,
            inside: std::sync::Mutex::new(0),
            all_in: std::sync::Condvar::new(),
        };
        let campaign = Campaign::new(
            demo_space(4),
            &executor,
            CampaignConfig { jobs: 4, seed: 7 },
        );
        let report = campaign.run(&Exhaustive, &mut CampaignState::default());
        assert_eq!(report.executed_now, 4);
    }

    #[test]
    fn resumed_campaigns_skip_completed_units() {
        let executor = FakeExecutor {
            executions: AtomicUsize::new(0),
        };
        let campaign = Campaign::new(demo_space(4), &executor, CampaignConfig::default());
        let mut state = CampaignState::default();
        let first = campaign.run(&Exhaustive, &mut state);
        assert_eq!(first.executed_now, 8);

        // Round-trip the state through JSON, then run again: nothing left.
        let mut resumed = CampaignState::from_json(&state.to_json()).unwrap();
        let second = campaign.run(&Exhaustive, &mut resumed);
        assert_eq!(second.executed_now, 0, "all units already completed");
        assert_eq!(second.records, first.records);
        assert_eq!(executor.executions.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn resuming_against_a_different_fault_space_starts_fresh() {
        let executor = FakeExecutor {
            executions: AtomicUsize::new(0),
        };
        let campaign = Campaign::new(demo_space(3), &executor, CampaignConfig::default());
        let mut state = CampaignState::default();
        campaign.run(&Exhaustive, &mut state);

        // Same strategy and seed, but the space grew: the stale unit ids
        // must be discarded, not misapplied.
        let grown = Campaign::new(demo_space(4), &executor, CampaignConfig::default());
        let report = grown.run(&Exhaustive, &mut state);
        assert_eq!(report.executed_now, 8, "all units of the new plan re-ran");
        assert_eq!(report.records.len(), 8);
    }
}
