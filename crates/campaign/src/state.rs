//! Resumable campaign state, persisted as JSON.
//!
//! Long campaigns survive interruption by checkpointing every completed run
//! record. A resumed campaign skips completed units and re-triages the full
//! record set, so killing a sweep halfway loses only in-flight units. The
//! state is tagged `fingerprint@plan-hash#shard` — the strategy
//! *fingerprint* (name plus any schedule-affecting parameters, e.g. a
//! sample size and seed) combined with the engine's plan hash over full
//! fault-point identity (error cases and annotations included) and every
//! target's workload suite, and the run's
//! [`ShardSpec`](crate::shard::ShardSpec) — plus the campaign seed.
//! Adopting a state recorded under a different tag or seed discards it,
//! because unit ids are only meaningful within one plan and a record set
//! is one shard's slice of it: a checkpoint taken under one annotation
//! set, test suite, or shard must start fresh rather than attribute
//! records to the wrong units (or hand one shard's records to another).

use std::collections::BTreeSet;

use lfi_json::{JsonError, Value};

use crate::engine::{CrashInfo, InjectedSite, OutcomeKind, RunRecord};

/// The persistent state of one campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignState {
    strategy: String,
    seed: u64,
    records: Vec<RunRecord>,
    completed: BTreeSet<usize>,
    /// Whether the run that last wrote this state finished its whole
    /// schedule. Mid-run (per-batch) checkpoints persist `false`; the
    /// engine seals the state `true` only when the strategy had nothing
    /// left to schedule — so a merge step can tell a finished shard from
    /// an interrupted one.
    complete: bool,
}

impl CampaignState {
    /// Bind this state to a `(state tag, seed)` pair, where the tag is the
    /// engine's `fingerprint@plan-hash`. If the state was recorded under a
    /// different pair its records are discarded — their unit ids would not
    /// line up with the new plan.
    pub fn adopt(&mut self, tag: &str, seed: u64) {
        if self.strategy != tag || self.seed != seed {
            self.records.clear();
            self.completed.clear();
            self.strategy = tag.to_string();
            self.seed = seed;
        }
        // Whatever the state's history, the run now starting is not
        // finished: mid-run checkpoints must read as incomplete until the
        // engine seals the schedule again.
        self.complete = false;
    }

    /// Whether the run that last wrote this state finished its whole
    /// schedule (false for mid-run checkpoints of an interrupted run).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Seal the state: the schedule is drained. Called by the engine when
    /// the strategy has nothing left to dispatch.
    pub(crate) fn mark_complete(&mut self) {
        self.complete = true;
    }

    /// The `fingerprint@plan-hash#shard` tag this state is bound to (empty
    /// until first adopted).
    pub fn tag(&self) -> &str {
        &self.strategy
    }

    /// The campaign seed this state was recorded under (0 until first
    /// adopted).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether a unit has already been executed.
    pub fn completed(&self, unit: usize) -> bool {
        self.completed.contains(&unit)
    }

    /// Record one completed unit.
    pub fn push(&mut self, record: RunRecord) {
        if self.completed.insert(record.unit) {
            self.records.push(record);
            self.records.sort_by_key(|r| r.unit);
        }
    }

    /// All records, ordered by unit id.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        Value::Obj(vec![
            ("strategy".to_string(), Value::Str(self.strategy.clone())),
            ("seed".to_string(), Value::Int(self.seed as i64)),
            ("complete".to_string(), Value::Bool(self.complete)),
            (
                "records".to_string(),
                Value::Arr(self.records.iter().map(record_to_value).collect()),
            ),
        ])
        .to_pretty()
    }

    /// Parse a state back from its JSON form.
    pub fn from_json(text: &str) -> Result<CampaignState, JsonError> {
        let doc = lfi_json::parse(text)?;
        let strategy = doc
            .get("strategy")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("missing string field `strategy`"))?
            .to_string();
        let seed = doc
            .get("seed")
            .and_then(Value::as_int)
            .ok_or_else(|| invalid("missing integer field `seed`"))? as u64;
        let Some(Value::Arr(items)) = doc.get("records") else {
            return Err(invalid("missing array field `records`"));
        };
        let mut state = CampaignState {
            strategy,
            seed,
            // States written before completion tracking existed read as
            // incomplete — their tags predate sharding anyway.
            complete: doc
                .get("complete")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            ..CampaignState::default()
        };
        for item in items {
            state.push(record_from_value(item)?);
        }
        Ok(state)
    }
}

pub(crate) fn invalid(message: impl Into<String>) -> JsonError {
    JsonError {
        position: 0,
        message: message.into(),
    }
}

pub(crate) fn str_field(value: &Value, key: &str) -> Result<String, JsonError> {
    value
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| invalid(format!("missing string field `{key}`")))
}

pub(crate) fn int_field(value: &Value, key: &str) -> Result<i64, JsonError> {
    value
        .get(key)
        .and_then(Value::as_int)
        .ok_or_else(|| invalid(format!("missing integer field `{key}`")))
}

pub(crate) fn opt_str_field(value: &Value, key: &str) -> Option<String> {
    value.get(key).and_then(Value::as_str).map(str::to_string)
}

pub(crate) fn str_list(value: &Value, key: &str) -> Vec<String> {
    value
        .get(key)
        .and_then(Value::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

pub(crate) fn outcome_to_value(outcome: &OutcomeKind) -> Value {
    match outcome {
        OutcomeKind::Passed => Value::Str("passed".into()),
        OutcomeKind::CleanFailure(code) => Value::Obj(vec![
            ("kind".to_string(), Value::Str("clean_failure".into())),
            ("code".to_string(), Value::Int(*code)),
        ]),
        OutcomeKind::Crashed => Value::Str("crashed".into()),
        OutcomeKind::Hung => Value::Str("hung".into()),
    }
}

pub(crate) fn outcome_from_value(value: &Value) -> Result<OutcomeKind, JsonError> {
    match value {
        Value::Str(s) => match s.as_str() {
            "passed" => Ok(OutcomeKind::Passed),
            "crashed" => Ok(OutcomeKind::Crashed),
            "hung" => Ok(OutcomeKind::Hung),
            other => Err(invalid(format!("unknown outcome `{other}`"))),
        },
        obj @ Value::Obj(_) => Ok(OutcomeKind::CleanFailure(int_field(obj, "code")?)),
        _ => Err(invalid("malformed outcome")),
    }
}

pub(crate) fn record_to_value(record: &RunRecord) -> Value {
    Value::Obj(vec![
        ("unit".to_string(), Value::Int(record.unit as i64)),
        ("target".to_string(), Value::Str(record.target.clone())),
        ("function".to_string(), Value::Str(record.function.clone())),
        ("offset".to_string(), Value::Int(record.offset as i64)),
        (
            "args".to_string(),
            Value::Arr(record.args.iter().cloned().map(Value::Str).collect()),
        ),
        ("outcome".to_string(), outcome_to_value(&record.outcome)),
        (
            "injections".to_string(),
            Value::Int(record.injections as i64),
        ),
        (
            "injected_sites".to_string(),
            Value::Arr(
                record
                    .injected_sites
                    .iter()
                    .map(|site| {
                        Value::Obj(vec![
                            ("module".to_string(), Value::Str(site.module.clone())),
                            ("offset".to_string(), Value::Int(site.offset as i64)),
                            (
                                "caller".to_string(),
                                site.caller.clone().map_or(Value::Null, Value::Str),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "crashes".to_string(),
            Value::Arr(
                record
                    .crashes
                    .iter()
                    .map(|crash| {
                        Value::Obj(vec![
                            ("module".to_string(), Value::Str(crash.module.clone())),
                            ("offset".to_string(), Value::Int(crash.offset as i64)),
                            (
                                "description".to_string(),
                                Value::Str(crash.description.clone()),
                            ),
                            (
                                "in_function".to_string(),
                                crash.in_function.clone().map_or(Value::Null, Value::Str),
                            ),
                            (
                                "backtrace".to_string(),
                                Value::Arr(
                                    crash.backtrace.iter().cloned().map(Value::Str).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "virtual_time".to_string(),
            Value::Int(record.virtual_time as i64),
        ),
    ])
}

pub(crate) fn record_from_value(value: &Value) -> Result<RunRecord, JsonError> {
    let injected_sites = value
        .get("injected_sites")
        .and_then(Value::as_arr)
        .unwrap_or_default()
        .iter()
        .map(|site| {
            Ok(InjectedSite {
                module: str_field(site, "module")?,
                offset: int_field(site, "offset")? as u64,
                caller: opt_str_field(site, "caller"),
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    let crashes = value
        .get("crashes")
        .and_then(Value::as_arr)
        .unwrap_or_default()
        .iter()
        .map(|crash| {
            Ok(CrashInfo {
                module: str_field(crash, "module")?,
                offset: int_field(crash, "offset")? as u64,
                description: str_field(crash, "description")?,
                in_function: opt_str_field(crash, "in_function"),
                backtrace: str_list(crash, "backtrace"),
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    Ok(RunRecord {
        unit: int_field(value, "unit")? as usize,
        target: str_field(value, "target")?,
        function: str_field(value, "function")?,
        offset: int_field(value, "offset")? as u64,
        args: str_list(value, "args"),
        outcome: outcome_from_value(
            value
                .get("outcome")
                .ok_or_else(|| invalid("missing field `outcome`"))?,
        )?,
        injections: int_field(value, "injections")? as u64,
        injected_sites,
        crashes,
        virtual_time: int_field(value, "virtual_time")? as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(unit: usize) -> RunRecord {
        RunRecord {
            unit,
            target: "demo".into(),
            function: "read".into(),
            offset: 0x40,
            args: vec!["commit".into(), "x".into()],
            outcome: OutcomeKind::CleanFailure(2),
            injections: 3,
            injected_sites: vec![InjectedSite {
                module: "demo".into(),
                offset: 0x40,
                caller: Some("main".into()),
            }],
            crashes: vec![CrashInfo {
                module: "demo".into(),
                offset: 0x99,
                description: "segfault".into(),
                in_function: None,
                backtrace: vec!["victim".into(), "main".into()],
            }],
            virtual_time: 1234,
        }
    }

    #[test]
    fn state_roundtrips_through_json() {
        let mut state = CampaignState::default();
        state.adopt("guided", 7);
        state.push(sample_record(0));
        state.push(sample_record(2));
        let back = CampaignState::from_json(&state.to_json()).unwrap();
        assert_eq!(back, state);
        assert!(back.completed(0));
        assert!(back.completed(2));
        assert!(!back.completed(1));
    }

    #[test]
    fn adopting_a_different_plan_discards_stale_records() {
        let mut state = CampaignState::default();
        state.adopt("guided", 7);
        state.push(sample_record(0));
        state.adopt("guided", 7);
        assert_eq!(state.records().len(), 1, "same plan keeps records");
        state.adopt("exhaustive", 7);
        assert!(state.records().is_empty(), "new strategy resets state");
        state.push(sample_record(1));
        state.adopt("exhaustive", 8);
        assert!(state.records().is_empty(), "new seed resets state");
    }

    #[test]
    fn duplicate_unit_records_are_ignored() {
        let mut state = CampaignState::default();
        state.push(sample_record(5));
        state.push(sample_record(5));
        assert_eq!(state.records().len(), 1);
    }
}
