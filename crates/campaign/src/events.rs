//! Typed campaign progress events, streamed through an [`EventSink`].
//!
//! A [`CampaignDriver`](crate::builder::CampaignDriver) with a registered
//! sink emits [`CampaignEvent`]s *while the campaign runs* — this is what
//! progress bars, the bench harness, and cross-machine supervisors consume
//! instead of scraping the final [`CampaignReport`](crate::CampaignReport)
//! after the fact.
//!
//! ## Ordering guarantees
//!
//! * [`BatchPlanned`](CampaignEvent::BatchPlanned) precedes every event of
//!   its batch's units.
//! * Each unit's [`UnitStarted`](CampaignEvent::UnitStarted) precedes its
//!   [`UnitFinished`](CampaignEvent::UnitFinished); a
//!   [`CrashFound`](CampaignEvent::CrashFound) follows the `UnitFinished`
//!   that first exhibited the signature, and each distinct signature is
//!   announced at most once per run (signatures already present in a
//!   resumed checkpoint are not re-announced).
//! * [`CheckpointWritten`](CampaignEvent::CheckpointWritten) follows the
//!   batch whose records it persisted; one final write seals the finished
//!   (complete) state after the last batch.
//! * [`ShardFinished`](CampaignEvent::ShardFinished) is the last event of
//!   a run.
//!
//! Units of one batch drain on a parallel worker pool, so the per-unit
//! events of *different* units interleave arbitrarily. Sinks are invoked
//! from worker threads and must therefore be `Sync`; any
//! `Fn(&CampaignEvent) + Sync` closure is a sink, and [`EventLog`] is a
//! ready-made collecting sink.

use std::path::PathBuf;
use std::sync::Mutex;

use crate::engine::RunRecord;
use crate::shard::ShardSpec;
use crate::triage::CrashSignature;

/// One progress event of a running campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignEvent {
    /// The strategy scheduled a new batch (after dispatch/shard filtering).
    BatchPlanned {
        /// 1-based batch number within this run.
        batch: usize,
        /// Fault points in the batch.
        points: usize,
        /// Work units the batch expands into.
        units: usize,
        /// Units that will actually execute (not already completed by a
        /// resumed checkpoint).
        pending: usize,
    },
    /// A worker began executing a unit.
    UnitStarted {
        /// Canonical unit id.
        unit: usize,
        /// Target program.
        target: String,
        /// Injected library function.
        function: String,
        /// Fault-point call-site offset.
        offset: u64,
    },
    /// A unit finished; the record is exactly what the report will carry.
    UnitFinished(RunRecord),
    /// A crash signature was observed for the first time this run.
    CrashFound(CrashSignature),
    /// The driver persisted the campaign state to its checkpoint path.
    CheckpointWritten {
        /// Where the state was written.
        path: PathBuf,
        /// Completed units the checkpoint now covers.
        completed: usize,
    },
    /// The run is over; no further events follow.
    ShardFinished {
        /// Which slice finished ([`ShardSpec::FULL`] for unsharded runs).
        shard: ShardSpec,
        /// Units executed in this session (excludes resumed ones).
        executed: usize,
        /// Total records the shard now holds, resumed ones included.
        records: usize,
    },
}

/// A consumer of campaign progress events.
///
/// Sinks are called from the driver thread *and* from worker threads, so
/// implementations must be thread-safe. Sinks should return quickly — a
/// slow sink backpressures the worker pool.
pub trait EventSink: Sync {
    /// Receive one event.
    fn event(&self, event: &CampaignEvent);
}

/// Any `Sync` closure is a sink.
impl<F: Fn(&CampaignEvent) + Sync> EventSink for F {
    fn event(&self, event: &CampaignEvent) {
        self(event)
    }
}

/// A sink that records every event, in arrival order — for tests, tools
/// that post-process a run, and debugging.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<CampaignEvent>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// A snapshot of every event received so far.
    pub fn events(&self) -> Vec<CampaignEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events matching a predicate.
    pub fn count(&self, matches: impl Fn(&CampaignEvent) -> bool) -> usize {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| matches(e))
            .count()
    }
}

impl EventSink for EventLog {
    fn event(&self, event: &CampaignEvent) {
        self.events.lock().unwrap().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_and_logs_are_sinks() {
        let log = EventLog::new();
        let event = CampaignEvent::BatchPlanned {
            batch: 1,
            points: 2,
            units: 4,
            pending: 4,
        };
        log.event(&event);
        log.event(&CampaignEvent::ShardFinished {
            shard: ShardSpec::FULL,
            executed: 4,
            records: 4,
        });
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0], event);
        assert_eq!(
            log.count(|e| matches!(e, CampaignEvent::BatchPlanned { .. })),
            1
        );

        let seen = Mutex::new(0usize);
        let closure_sink = |_: &CampaignEvent| {
            *seen.lock().unwrap() += 1;
        };
        let sink: &dyn EventSink = &closure_sink;
        sink.event(&event);
        assert_eq!(*seen.lock().unwrap(), 1);
    }
}
