//! Typed campaign progress events, streamed through an [`EventSink`].
//!
//! A [`CampaignDriver`](crate::builder::CampaignDriver) with a registered
//! sink emits [`CampaignEvent`]s *while the campaign runs* — this is what
//! progress bars, the bench harness, and cross-machine supervisors consume
//! instead of scraping the final [`CampaignReport`](crate::CampaignReport)
//! after the fact. Every event also has a line-oriented JSON wire format
//! ([`CampaignEvent::to_json_line`] / [`CampaignEvent::from_json_line`],
//! total in both directions) and [`JsonlSink`] streams it to a file for
//! out-of-process consumers such as the `campaign_status` bin.
//!
//! ## Ordering guarantees
//!
//! * [`BatchPlanned`](CampaignEvent::BatchPlanned) precedes every event of
//!   its batch's units.
//! * Each unit's [`UnitStarted`](CampaignEvent::UnitStarted) precedes its
//!   [`UnitFinished`](CampaignEvent::UnitFinished); a
//!   [`CrashFound`](CampaignEvent::CrashFound) follows the `UnitFinished`
//!   that first exhibited the signature, and each distinct signature is
//!   announced at most once per run (signatures already present in a
//!   resumed checkpoint are not re-announced).
//! * [`CheckpointWritten`](CampaignEvent::CheckpointWritten) follows the
//!   batch whose records it persisted; one final write seals the finished
//!   (complete) state after the last batch.
//! * [`ShardFinished`](CampaignEvent::ShardFinished) is the last event of
//!   a run.
//! * [`Heartbeat`](CampaignEvent::Heartbeat) and
//!   [`Note`](CampaignEvent::Note) events are asynchronous progress
//!   telemetry: they may appear anywhere before `ShardFinished` and carry
//!   no per-unit ordering guarantees.
//!
//! Units of one batch drain on a parallel worker pool, so the per-unit
//! events of *different* units interleave arbitrarily. Sinks are invoked
//! from worker threads and must therefore be `Sync`; any
//! `Fn(&CampaignEvent) + Sync` closure is a sink, and [`EventLog`] is a
//! ready-made collecting sink.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use lfi_json::{JsonError, Value};
use lfi_telemetry::MetricsSnapshot;

use crate::engine::RunRecord;
use crate::shard::ShardSpec;
use crate::state::{int_field, invalid, opt_str_field, record_from_value, record_to_value};
use crate::triage::CrashSignature;

/// One progress event of a running campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignEvent {
    /// The strategy scheduled a new batch (after dispatch/shard filtering).
    BatchPlanned {
        /// 1-based batch number within this run.
        batch: usize,
        /// Fault points in the batch.
        points: usize,
        /// Work units the batch expands into.
        units: usize,
        /// Units that will actually execute (not already completed by a
        /// resumed checkpoint).
        pending: usize,
    },
    /// A worker began executing a unit.
    UnitStarted {
        /// Canonical unit id.
        unit: usize,
        /// Target program.
        target: String,
        /// Injected library function.
        function: String,
        /// Fault-point call-site offset.
        offset: u64,
    },
    /// A unit finished; the record is exactly what the report will carry.
    UnitFinished {
        /// The completed run record.
        record: RunRecord,
        /// Wall-clock time the unit took to execute, measured by the
        /// worker on a monotonic clock (host time, unlike the record's
        /// `virtual_time`).
        duration_micros: u64,
    },
    /// A crash signature was observed for the first time this run.
    CrashFound(CrashSignature),
    /// The driver persisted the campaign state to its checkpoint path.
    CheckpointWritten {
        /// Where the state was written.
        path: PathBuf,
        /// Completed units the checkpoint now covers.
        completed: usize,
        /// Wall-clock time since the previous checkpoint (run start for
        /// the first one): the duration of the batch this write sealed,
        /// measured on a monotonic clock.
        batch_duration_micros: u64,
    },
    /// Periodic progress telemetry, emitted at most once per configured
    /// heartbeat interval while units are draining.
    Heartbeat {
        /// Which slice is reporting ([`ShardSpec::FULL`] for unsharded
        /// runs).
        shard: ShardSpec,
        /// Units executed so far this session.
        units_done: usize,
        /// Units planned so far this session (grows batch by batch).
        units_planned: usize,
        /// Session throughput in units per 1000 seconds — i.e. units/sec
        /// scaled by 1000 so the integer wire format keeps three decimal
        /// places.
        milli_units_per_sec: u64,
        /// Live capture of the executor/driver metrics registry.
        metrics: MetricsSnapshot,
    },
    /// A discrete out-of-band observation from an instrumented layer
    /// below the driver (e.g. the snapshot-tree executor discarding a
    /// concurrently-materialized node).
    Note {
        /// Which subsystem raised the note, e.g. `"snapshot-tree"`.
        source: String,
        /// Human-readable description of what happened.
        message: String,
    },
    /// The run is over; no further events follow.
    ShardFinished {
        /// Which slice finished ([`ShardSpec::FULL`] for unsharded runs).
        shard: ShardSpec,
        /// Units executed in this session (excludes resumed ones).
        executed: usize,
        /// Total records the shard now holds, resumed ones included.
        records: usize,
    },
}

impl CampaignEvent {
    /// Encode as an `lfi_json` value (`{"event": "<kind>", ...}`).
    pub fn to_value(&self) -> Value {
        let tagged = |kind: &str, mut fields: Vec<(String, Value)>| {
            fields.insert(0, ("event".to_string(), Value::Str(kind.to_string())));
            Value::Obj(fields)
        };
        match self {
            CampaignEvent::BatchPlanned {
                batch,
                points,
                units,
                pending,
            } => tagged(
                "batch_planned",
                vec![
                    ("batch".to_string(), Value::Int(*batch as i64)),
                    ("points".to_string(), Value::Int(*points as i64)),
                    ("units".to_string(), Value::Int(*units as i64)),
                    ("pending".to_string(), Value::Int(*pending as i64)),
                ],
            ),
            CampaignEvent::UnitStarted {
                unit,
                target,
                function,
                offset,
            } => tagged(
                "unit_started",
                vec![
                    ("unit".to_string(), Value::Int(*unit as i64)),
                    ("target".to_string(), Value::Str(target.clone())),
                    ("function".to_string(), Value::Str(function.clone())),
                    ("offset".to_string(), Value::Int(*offset as i64)),
                ],
            ),
            CampaignEvent::UnitFinished {
                record,
                duration_micros,
            } => tagged(
                "unit_finished",
                vec![
                    ("record".to_string(), record_to_value(record)),
                    (
                        "duration_micros".to_string(),
                        Value::Int(*duration_micros as i64),
                    ),
                ],
            ),
            CampaignEvent::CrashFound(signature) => tagged(
                "crash_found",
                vec![
                    ("target".to_string(), Value::Str(signature.target.clone())),
                    (
                        "function".to_string(),
                        Value::Str(signature.function.clone()),
                    ),
                    ("module".to_string(), Value::Str(signature.module.clone())),
                    ("offset".to_string(), Value::Int(signature.offset as i64)),
                    (
                        "frame".to_string(),
                        signature.frame.clone().map_or(Value::Null, Value::Str),
                    ),
                ],
            ),
            CampaignEvent::CheckpointWritten {
                path,
                completed,
                batch_duration_micros,
            } => tagged(
                "checkpoint_written",
                vec![
                    (
                        "path".to_string(),
                        Value::Str(path.to_string_lossy().into_owned()),
                    ),
                    ("completed".to_string(), Value::Int(*completed as i64)),
                    (
                        "batch_duration_micros".to_string(),
                        Value::Int(*batch_duration_micros as i64),
                    ),
                ],
            ),
            CampaignEvent::Heartbeat {
                shard,
                units_done,
                units_planned,
                milli_units_per_sec,
                metrics,
            } => tagged(
                "heartbeat",
                vec![
                    ("shard".to_string(), Value::Str(shard.to_string())),
                    ("units_done".to_string(), Value::Int(*units_done as i64)),
                    (
                        "units_planned".to_string(),
                        Value::Int(*units_planned as i64),
                    ),
                    (
                        "milli_units_per_sec".to_string(),
                        Value::Int(*milli_units_per_sec as i64),
                    ),
                    ("metrics".to_string(), metrics.to_value()),
                ],
            ),
            CampaignEvent::Note { source, message } => tagged(
                "note",
                vec![
                    ("source".to_string(), Value::Str(source.clone())),
                    ("message".to_string(), Value::Str(message.clone())),
                ],
            ),
            CampaignEvent::ShardFinished {
                shard,
                executed,
                records,
            } => tagged(
                "shard_finished",
                vec![
                    ("shard".to_string(), Value::Str(shard.to_string())),
                    ("executed".to_string(), Value::Int(*executed as i64)),
                    ("records".to_string(), Value::Int(*records as i64)),
                ],
            ),
        }
    }

    /// Decode a value produced by [`to_value`](Self::to_value).
    pub fn from_value(value: &Value) -> Result<CampaignEvent, JsonError> {
        let kind = value
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("missing string field `event`"))?;
        match kind {
            "batch_planned" => Ok(CampaignEvent::BatchPlanned {
                batch: int_field(value, "batch")? as usize,
                points: int_field(value, "points")? as usize,
                units: int_field(value, "units")? as usize,
                pending: int_field(value, "pending")? as usize,
            }),
            "unit_started" => Ok(CampaignEvent::UnitStarted {
                unit: int_field(value, "unit")? as usize,
                target: crate::state::str_field(value, "target")?,
                function: crate::state::str_field(value, "function")?,
                offset: int_field(value, "offset")? as u64,
            }),
            "unit_finished" => Ok(CampaignEvent::UnitFinished {
                record: record_from_value(
                    value
                        .get("record")
                        .ok_or_else(|| invalid("missing field `record`"))?,
                )?,
                duration_micros: int_field(value, "duration_micros")? as u64,
            }),
            "crash_found" => Ok(CampaignEvent::CrashFound(CrashSignature {
                target: crate::state::str_field(value, "target")?,
                function: crate::state::str_field(value, "function")?,
                module: crate::state::str_field(value, "module")?,
                offset: int_field(value, "offset")? as u64,
                frame: opt_str_field(value, "frame"),
            })),
            "checkpoint_written" => Ok(CampaignEvent::CheckpointWritten {
                path: PathBuf::from(crate::state::str_field(value, "path")?),
                completed: int_field(value, "completed")? as usize,
                batch_duration_micros: int_field(value, "batch_duration_micros")? as u64,
            }),
            "heartbeat" => Ok(CampaignEvent::Heartbeat {
                shard: parse_shard(value)?,
                units_done: int_field(value, "units_done")? as usize,
                units_planned: int_field(value, "units_planned")? as usize,
                milli_units_per_sec: int_field(value, "milli_units_per_sec")? as u64,
                metrics: MetricsSnapshot::from_value(
                    value
                        .get("metrics")
                        .ok_or_else(|| invalid("missing field `metrics`"))?,
                )
                .map_err(invalid)?,
            }),
            "note" => Ok(CampaignEvent::Note {
                source: crate::state::str_field(value, "source")?,
                message: crate::state::str_field(value, "message")?,
            }),
            "shard_finished" => Ok(CampaignEvent::ShardFinished {
                shard: parse_shard(value)?,
                executed: int_field(value, "executed")? as usize,
                records: int_field(value, "records")? as usize,
            }),
            other => Err(invalid(format!("unknown event kind `{other}`"))),
        }
    }

    /// Encode as one line of compact JSON (no interior newlines) — the
    /// JSONL wire format written by [`JsonlSink`].
    pub fn to_json_line(&self) -> String {
        self.to_value().to_compact()
    }

    /// Decode one JSONL line produced by [`to_json_line`](Self::to_json_line).
    pub fn from_json_line(line: &str) -> Result<CampaignEvent, JsonError> {
        CampaignEvent::from_value(&lfi_json::parse(line)?)
    }
}

fn parse_shard(value: &Value) -> Result<ShardSpec, JsonError> {
    crate::state::str_field(value, "shard")?
        .parse::<ShardSpec>()
        .map_err(|err| invalid(err.to_string()))
}

/// A consumer of campaign progress events.
///
/// Sinks are called from the driver thread *and* from worker threads, so
/// implementations must be thread-safe. Sinks should return quickly — a
/// slow sink backpressures the worker pool.
pub trait EventSink: Sync {
    /// Receive one event.
    fn event(&self, event: &CampaignEvent);
}

/// Any `Sync` closure is a sink.
impl<F: Fn(&CampaignEvent) + Sync> EventSink for F {
    fn event(&self, event: &CampaignEvent) {
        self(event)
    }
}

/// A sink that records every event, in arrival order — for tests, tools
/// that post-process a run, and debugging.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<CampaignEvent>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// A snapshot of every event received so far.
    pub fn events(&self) -> Vec<CampaignEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events matching a predicate.
    pub fn count(&self, matches: impl Fn(&CampaignEvent) -> bool) -> usize {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| matches(e))
            .count()
    }
}

impl EventSink for EventLog {
    fn event(&self, event: &CampaignEvent) {
        self.events.lock().unwrap().push(event.clone());
    }
}

struct JsonlState {
    writer: BufWriter<File>,
    error: Option<io::Error>,
}

/// A sink that streams events as line-delimited compact JSON, flushed
/// after every event so out-of-process tails (the `campaign_status` bin,
/// a future supervisor) see progress live.
///
/// Events from concurrent workers serialize on an internal lock, so
/// lines are never interleaved. The first I/O failure stops further
/// writes; inspect it with [`JsonlSink::take_error`] after the run —
/// a sink callback has no way to propagate it mid-run.
pub struct JsonlSink {
    state: Mutex<JsonlState>,
}

impl JsonlSink {
    /// Create (truncating) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            state: Mutex::new(JsonlState {
                writer: BufWriter::new(file),
                error: None,
            }),
        })
    }

    /// The first write/flush error encountered, if any (clears it).
    pub fn take_error(&self) -> Option<io::Error> {
        self.state.lock().unwrap().error.take()
    }
}

impl EventSink for JsonlSink {
    fn event(&self, event: &CampaignEvent) {
        let mut state = self.state.lock().unwrap();
        if state.error.is_some() {
            return;
        }
        let mut line = event.to_json_line();
        line.push('\n');
        let result = state
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| state.writer.flush());
        if let Err(err) = result {
            state.error = Some(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CrashInfo, InjectedSite, OutcomeKind};

    #[test]
    fn closures_and_logs_are_sinks() {
        let log = EventLog::new();
        let event = CampaignEvent::BatchPlanned {
            batch: 1,
            points: 2,
            units: 4,
            pending: 4,
        };
        log.event(&event);
        log.event(&CampaignEvent::ShardFinished {
            shard: ShardSpec::FULL,
            executed: 4,
            records: 4,
        });
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0], event);
        assert_eq!(
            log.count(|e| matches!(e, CampaignEvent::BatchPlanned { .. })),
            1
        );

        let seen = Mutex::new(0usize);
        let closure_sink = |_: &CampaignEvent| {
            *seen.lock().unwrap() += 1;
        };
        let sink: &dyn EventSink = &closure_sink;
        sink.event(&event);
        assert_eq!(*seen.lock().unwrap(), 1);
    }

    fn sample_record() -> RunRecord {
        RunRecord {
            unit: 3,
            target: "git-lite".into(),
            function: "malloc".into(),
            offset: 0x40,
            args: vec!["commit".into()],
            outcome: OutcomeKind::Crashed,
            injections: 1,
            injected_sites: vec![InjectedSite {
                module: "git-lite".into(),
                offset: 0x40,
                caller: Some("main".into()),
            }],
            crashes: vec![CrashInfo {
                module: "git-lite".into(),
                offset: 0x99,
                description: "segfault".into(),
                in_function: None,
                backtrace: vec!["victim".into()],
            }],
            virtual_time: 1234,
        }
    }

    #[test]
    fn every_event_variant_round_trips_through_json_lines() {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("tree_fork_hits".into(), 17);
        let events = vec![
            CampaignEvent::BatchPlanned {
                batch: 1,
                points: 2,
                units: 4,
                pending: 3,
            },
            CampaignEvent::UnitStarted {
                unit: 9,
                target: "git-lite".into(),
                function: "write".into(),
                offset: 0x1234,
            },
            CampaignEvent::UnitFinished {
                record: sample_record(),
                duration_micros: 42_000,
            },
            CampaignEvent::CrashFound(CrashSignature {
                target: "git-lite".into(),
                function: "malloc".into(),
                module: "git-lite".into(),
                offset: 0x99,
                frame: Some("victim".into()),
            }),
            CampaignEvent::CheckpointWritten {
                path: PathBuf::from("/tmp/campaign.json"),
                completed: 12,
                batch_duration_micros: 1_000_000,
            },
            CampaignEvent::Heartbeat {
                shard: ShardSpec { index: 1, count: 2 },
                units_done: 40,
                units_planned: 100,
                milli_units_per_sec: 2_500,
                metrics,
            },
            CampaignEvent::Note {
                source: "snapshot-tree".into(),
                message: "discarded concurrent deepening".into(),
            },
            CampaignEvent::ShardFinished {
                shard: ShardSpec::FULL,
                executed: 100,
                records: 100,
            },
        ];
        for event in events {
            let line = event.to_json_line();
            assert!(!line.contains('\n'), "JSONL lines must be single-line");
            let back = CampaignEvent::from_json_line(&line)
                .unwrap_or_else(|err| panic!("decoding {line}: {err:?}"));
            assert_eq!(back, event);
        }
    }

    #[test]
    fn decoding_rejects_unknown_and_malformed_events() {
        assert!(CampaignEvent::from_json_line("{}").is_err());
        assert!(CampaignEvent::from_json_line(r#"{"event":"warp_drive"}"#).is_err());
        assert!(CampaignEvent::from_json_line(r#"{"event":"batch_planned"}"#).is_err());
        assert!(CampaignEvent::from_json_line("not json").is_err());
        // A malformed shard string fails cleanly rather than panicking.
        assert!(CampaignEvent::from_json_line(
            r#"{"event":"shard_finished","shard":"x","executed":1,"records":1}"#
        )
        .is_err());
    }

    #[test]
    fn jsonl_sink_writes_one_flushed_line_per_event() {
        let dir = std::env::temp_dir().join(format!("lfi-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let first = CampaignEvent::BatchPlanned {
            batch: 1,
            points: 1,
            units: 2,
            pending: 2,
        };
        sink.event(&first);
        // Flushed per event: visible before the sink is dropped.
        let tail = std::fs::read_to_string(&path).unwrap();
        assert_eq!(tail.lines().count(), 1);
        sink.event(&CampaignEvent::ShardFinished {
            shard: ShardSpec::FULL,
            executed: 2,
            records: 2,
        });
        assert!(sink.take_error().is_none());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(CampaignEvent::from_json_line(lines[0]).unwrap(), first);
        std::fs::remove_dir_all(&dir).ok();
    }
}
