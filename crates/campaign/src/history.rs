//! What a running campaign has seen so far — the feedback channel between
//! the engine and an adaptive [`Strategy`](crate::strategy::Strategy).
//!
//! The engine builds one [`CampaignHistory`] per [`Campaign::run`]
//! (crate::engine::Campaign::run), seeds it with any records resumed from a
//! checkpoint, and updates it after every drained batch. Strategies read it
//! in `next_batch` to decide what to schedule next: which points are still
//! undispatched, and how the units of already-explored points fared.
//!
//! Unit ids are **canonical**: unit `id` is the position of its
//! `(fault point, workload)` pair in the full expansion of the space in
//! enumeration order. The history owns that layout (`unit_base`), so it can
//! map any record — including one resumed from a previous session — back to
//! its fault-point index.

use crate::engine::RunRecord;
use crate::triage::CrashSignature;

/// The observable state of a campaign run: completed records, the canonical
/// unit layout, and which fault points have been dispatched so far.
#[derive(Debug, Clone)]
pub struct CampaignHistory {
    /// Canonical id of the first unit of each fault point, ascending.
    unit_base: Vec<usize>,
    /// Total canonical units (sum of workload-suite sizes over all points).
    total_units: usize,
    /// Every completed record, resumed ones included, in completion order.
    records: Vec<RunRecord>,
    /// Crash signatures first observed *outside* this run (a supervisor's
    /// broadcasts from sibling workers): scheduling hints with no local
    /// record behind them.
    signature_hints: Vec<CrashSignature>,
    /// Whether each fault point has been dispatched this run.
    dispatched: Vec<bool>,
    dispatched_points: usize,
    planned_units: usize,
    batches: usize,
}

impl CampaignHistory {
    pub(crate) fn new(unit_base: Vec<usize>, total_units: usize) -> CampaignHistory {
        let points = unit_base.len();
        CampaignHistory {
            unit_base,
            total_units,
            records: Vec::new(),
            signature_hints: Vec::new(),
            dispatched: vec![false; points],
            dispatched_points: 0,
            planned_units: 0,
            batches: 0,
        }
    }

    /// An empty history over a space of `points` fault points, each with a
    /// single workload (unit id == point index). Intended for exercising
    /// strategies directly in tests, without an engine.
    pub fn for_space_size(points: usize) -> CampaignHistory {
        CampaignHistory::new((0..points).collect(), points)
    }

    /// Every completed record so far, resumed ones included.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Crash signatures first seen elsewhere in a supervised campaign
    /// (broadcast by the supervisor) — scheduling signals adaptive
    /// strategies fold into their escalation sets alongside locally
    /// observed crashes. Empty for unsupervised runs.
    pub fn signature_hints(&self) -> &[CrashSignature] {
        &self.signature_hints
    }

    /// Record one broadcast signature hint. Hints never contribute
    /// records; they only steer scheduling.
    pub(crate) fn add_signature_hint(&mut self, signature: CrashSignature) {
        self.signature_hints.push(signature);
    }

    /// Number of non-empty batches dispatched so far this run.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Whether the fault point at `point` has already been dispatched this
    /// run (out-of-range indices count as dispatched, so strategies cannot
    /// schedule them).
    pub fn dispatched(&self, point: usize) -> bool {
        self.dispatched.get(point).copied().unwrap_or(true)
    }

    /// Number of distinct fault points dispatched this run.
    pub fn dispatched_points(&self) -> usize {
        self.dispatched_points
    }

    /// Number of work units covered by the dispatched points.
    pub fn planned_units(&self) -> usize {
        self.planned_units
    }

    /// Total canonical units of the space (every point × its workloads).
    pub fn total_units(&self) -> usize {
        self.total_units
    }

    /// Map a canonical unit id back to its fault-point index.
    pub fn point_of_unit(&self, unit: usize) -> Option<usize> {
        if unit >= self.total_units {
            return None;
        }
        // unit_base is ascending; the owning point is the last base <= unit.
        Some(self.unit_base.partition_point(|&base| base <= unit) - 1)
    }

    /// The completed records attributed to one fault point.
    pub fn records_for_point(&self, point: usize) -> impl Iterator<Item = &RunRecord> {
        self.records
            .iter()
            .filter(move |r| self.point_of_unit(r.unit) == Some(point))
    }

    /// Mark a fault point as off-limits for this run *without* counting it
    /// as planned work — how the engine confines a sharded run: points
    /// owned by other shards are excluded up front, so strategies treat
    /// them as already explored while the dispatch/planned counters keep
    /// reflecting only this shard's slice.
    pub(crate) fn exclude_point(&mut self, point: usize) {
        if let Some(slot) = self.dispatched.get_mut(point) {
            *slot = true;
        }
    }

    pub(crate) fn begin_batch(&mut self, points: &[usize], units: usize) {
        for &point in points {
            if !self.dispatched[point] {
                self.dispatched[point] = true;
                self.dispatched_points += 1;
            }
        }
        self.planned_units += units;
        self.batches += 1;
    }

    pub(crate) fn observe(&mut self, record: RunRecord) {
        self.records.push(record);
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::OutcomeKind;

    use super::*;

    fn record(unit: usize) -> RunRecord {
        RunRecord {
            unit,
            target: "demo".into(),
            function: "read".into(),
            offset: 4,
            args: vec![],
            outcome: OutcomeKind::Passed,
            injections: 1,
            injected_sites: vec![],
            crashes: vec![],
            virtual_time: 1,
        }
    }

    #[test]
    fn units_map_back_to_their_points() {
        // Three points with 2, 3, and 1 workloads: bases 0, 2, 5.
        let history = CampaignHistory::new(vec![0, 2, 5], 6);
        assert_eq!(history.point_of_unit(0), Some(0));
        assert_eq!(history.point_of_unit(1), Some(0));
        assert_eq!(history.point_of_unit(2), Some(1));
        assert_eq!(history.point_of_unit(4), Some(1));
        assert_eq!(history.point_of_unit(5), Some(2));
        assert_eq!(history.point_of_unit(6), None, "beyond the expansion");
    }

    #[test]
    fn batches_track_dispatch_and_unit_counts() {
        let mut history = CampaignHistory::new(vec![0, 2, 5], 6);
        assert!(!history.dispatched(1));
        assert!(history.dispatched(99), "out of range counts as dispatched");
        history.begin_batch(&[1], 3);
        history.begin_batch(&[0, 2], 3);
        assert_eq!(history.batches(), 2);
        assert_eq!(history.dispatched_points(), 3);
        assert_eq!(history.planned_units(), 6);
        assert!(history.dispatched(0) && history.dispatched(1) && history.dispatched(2));
    }

    #[test]
    fn records_filter_by_point() {
        let mut history = CampaignHistory::new(vec![0, 2, 5], 6);
        for unit in [0, 1, 3, 5] {
            history.observe(record(unit));
        }
        assert_eq!(history.records_for_point(0).count(), 2);
        assert_eq!(history.records_for_point(1).count(), 1);
        assert_eq!(history.records_for_point(2).count(), 1);
    }
}
