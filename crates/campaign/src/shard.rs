//! Deterministic fault-space sharding: split one campaign across
//! processes (or machines) and merge the partial results back together.
//!
//! A [`ShardSpec`] names one slice of a campaign: shard `index` of `count`.
//! The partition is **round-robin over fault points** — point `p` belongs
//! to shard `p % count` — so every work unit of a fault point (its
//! workload siblings) lands on the same shard, and the partition depends
//! only on canonical point indices, never on scheduling, worker count, or
//! backend. The union of the shards' unit sets is exactly the unsharded
//! unit set, with no overlap.
//!
//! Shard identity is folded into the checkpoint tag
//! (`fingerprint@plan-hash#index/count`), so a shard checkpoint can never
//! be resumed by the wrong shard or by the unsharded run — resuming under
//! a different shard spec starts fresh, exactly like any other plan
//! change.
//!
//! A finished shard is a [`ShardOutcome`]: its run records, triage slice,
//! and plan tag. [`CampaignReport::merge`] recombines a complete set of
//! outcomes into a report whose records and triage are byte-identical to
//! the equivalent unsharded run. Outcomes can also be reconstructed from
//! persisted [`CampaignState`] files ([`ShardOutcome::from_state`]), which
//! is how separate shard processes hand their results to a merge step.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::state::CampaignState;
use crate::triage::{triage, CampaignReport};

/// One slice of a sharded campaign: shard `index` of `count`.
///
/// The unsharded campaign is the full shard `0/1` ([`ShardSpec::FULL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardSpec {
    /// This shard's position, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the campaign is split into.
    pub count: usize,
}

impl ShardSpec {
    /// The whole campaign as a single shard (`0/1`).
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// A validated shard spec: `count` must be at least 1 and `index` must
    /// be below `count`.
    pub fn new(index: usize, count: usize) -> Result<ShardSpec, ShardSpecError> {
        let spec = ShardSpec { index, count };
        spec.validate()?;
        Ok(spec)
    }

    /// Check the `index < count`, `count >= 1` invariants.
    pub fn validate(&self) -> Result<(), ShardSpecError> {
        if self.count == 0 {
            return Err(ShardSpecError("shard count must be at least 1".to_string()));
        }
        if self.index >= self.count {
            return Err(ShardSpecError(format!(
                "shard index {} out of range for count {} (expected 0..{})",
                self.index, self.count, self.count
            )));
        }
        Ok(())
    }

    /// Whether this is the unsharded campaign (`count == 1`).
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// Whether this shard owns the fault point at canonical index `point`.
    /// Round-robin over points: every unit of a point follows the point.
    ///
    /// # Panics
    ///
    /// Panics (division by zero) on an unvalidated `count == 0` spec.
    /// Specs from [`ShardSpec::new`], `str::parse`, or
    /// [`CampaignBuilder::build`](crate::builder::CampaignBuilder::build)
    /// can never be in that state; hand-built struct literals should be
    /// [`validate`](ShardSpec::validate)d first.
    pub fn owns_point(&self, point: usize) -> bool {
        point % self.count == self.index
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::FULL
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Why a shard spec failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpecError(String);

impl fmt::Display for ShardSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for ShardSpecError {}

impl FromStr for ShardSpec {
    type Err = ShardSpecError;

    /// Parse the `index/count` form used by `--shard` flags and checkpoint
    /// tags, e.g. `0/2`.
    fn from_str(s: &str) -> Result<ShardSpec, ShardSpecError> {
        let invalid = || {
            ShardSpecError(format!(
                "invalid shard `{s}` (expected `index/count`, e.g. `0/2`)"
            ))
        };
        let (index, count) = s.split_once('/').ok_or_else(invalid)?;
        let index: usize = index.trim().parse().map_err(|_| invalid())?;
        let count: usize = count.trim().parse().map_err(|_| invalid())?;
        ShardSpec::new(index, count)
    }
}

/// The finished result of one shard: everything a merge step needs to
/// recombine the campaign, and everything a supervisor needs to account
/// for the slice.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Which slice this is.
    pub shard: ShardSpec,
    /// The full checkpoint tag the shard ran under
    /// (`fingerprint@plan-hash#index/count`). Two outcomes merge only when
    /// everything before the `#` agrees — same strategy fingerprint, same
    /// space, same workload suites.
    pub tag: String,
    /// The campaign seed the shard's unit seeds were derived from.
    pub seed: u64,
    /// The shard's own report: its records, its triage slice, and its
    /// scheduling counters.
    pub report: CampaignReport,
}

impl ShardOutcome {
    /// The plan identity shared by every shard of one campaign: the tag
    /// with the `#index/count` suffix stripped.
    pub fn plan_tag(&self) -> &str {
        self.tag
            .rsplit_once('#')
            .map_or(&*self.tag, |(base, _)| base)
    }

    /// Reconstruct a shard outcome from a persisted [`CampaignState`] — the
    /// cross-process handoff: each shard process checkpoints its state to a
    /// file, and the merge step parses the files back into outcomes.
    ///
    /// Only what the state persists can be recovered: the records, the
    /// triage derived from them, and the tag/seed identity (including the
    /// strategy fingerprint, recovered from the tag). Scheduling counters
    /// that are not checkpointed (`batches`, `peak_workers`,
    /// `executed_now`, `space_size`, `planned_points`) are zero, and
    /// `units_total` is the record count.
    ///
    /// A state whose run did not finish its schedule — a mid-run
    /// checkpoint of an interrupted shard — is rejected: merging it would
    /// present an incomplete hunt as the full result. Resume the shard to
    /// completion first.
    pub fn from_state(state: &CampaignState) -> Result<ShardOutcome, ShardMergeError> {
        let tag = state.tag().to_string();
        let Some((plan, suffix)) = tag.rsplit_once('#') else {
            return Err(ShardMergeError::UntaggedState(tag));
        };
        let strategy = plan.split_once('@').map_or(plan, |(fp, _)| fp).to_string();
        let shard: ShardSpec = suffix
            .parse()
            .map_err(|err: ShardSpecError| ShardMergeError::BadShardTag(tag.clone(), err))?;
        if !state.is_complete() {
            return Err(ShardMergeError::IncompleteShardState(shard));
        }
        let records = state.records().to_vec();
        Ok(ShardOutcome {
            shard,
            tag,
            seed: state.seed(),
            report: CampaignReport {
                strategy,
                space_size: 0,
                planned_points: 0,
                units_total: records.len(),
                batches: 0,
                peak_workers: 0,
                executed_now: 0,
                triage: triage(&records),
                records,
                metrics: None,
            },
        })
    }
}

/// Why a set of shard outcomes could not be merged into one report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMergeError {
    /// No outcomes were supplied.
    Empty,
    /// A persisted state carries no `#index/count` shard suffix (it was
    /// not produced by a sharded-aware campaign run).
    UntaggedState(String),
    /// A persisted state's shard suffix failed to parse.
    BadShardTag(String, ShardSpecError),
    /// An outcome carries a shard spec violating `index < count`
    /// (possible only for hand-built outcomes — validated specs cannot).
    InvalidShard(ShardSpec, ShardSpecError),
    /// A persisted state is a mid-run checkpoint of an interrupted shard,
    /// not a finished one — merging it would present an incomplete hunt
    /// as the full result.
    IncompleteShardState(ShardSpec),
    /// Two outcomes ran different plans (strategy fingerprint, space, or
    /// workload suites differ).
    MixedPlans(String, String),
    /// Two outcomes ran under different campaign seeds.
    MixedSeeds(u64, u64),
    /// Two outcomes disagree about the total shard count.
    MixedCounts(usize, usize),
    /// The same shard appears twice.
    DuplicateShard(ShardSpec),
    /// The outcomes do not cover every shard index of the count.
    IncompleteShards {
        /// Distinct shard indices present.
        have: usize,
        /// Shard count every index below which must be present.
        count: usize,
    },
    /// Two outcomes both recorded the same canonical unit — the partition
    /// was violated.
    DuplicateUnit(usize),
}

impl fmt::Display for ShardMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMergeError::Empty => write!(f, "no shard outcomes to merge"),
            ShardMergeError::UntaggedState(tag) => write!(
                f,
                "campaign state tag `{tag}` carries no shard suffix (`#index/count`)"
            ),
            ShardMergeError::BadShardTag(tag, err) => {
                write!(
                    f,
                    "campaign state tag `{tag}` has a malformed shard suffix: {err}"
                )
            }
            ShardMergeError::InvalidShard(shard, err) => {
                write!(f, "outcome carries invalid shard {shard}: {err}")
            }
            ShardMergeError::IncompleteShardState(shard) => write!(
                f,
                "shard {shard}'s state is a mid-run checkpoint (its run was interrupted); \
                 resume the shard to completion before merging"
            ),
            ShardMergeError::MixedPlans(a, b) => write!(
                f,
                "shards ran different plans: `{a}` vs `{b}` (strategy, space, or suites differ)"
            ),
            ShardMergeError::MixedSeeds(a, b) => {
                write!(f, "shards ran under different campaign seeds: {a} vs {b}")
            }
            ShardMergeError::MixedCounts(a, b) => {
                write!(f, "shards disagree about the shard count: {a} vs {b}")
            }
            ShardMergeError::DuplicateShard(shard) => {
                write!(f, "shard {shard} appears more than once")
            }
            ShardMergeError::IncompleteShards { have, count } => write!(
                f,
                "only {have} of {count} shards present; every index 0..{count} must be merged"
            ),
            ShardMergeError::DuplicateUnit(unit) => write!(
                f,
                "unit {unit} was recorded by more than one shard (partition violated)"
            ),
        }
    }
}

impl Error for ShardMergeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assigns_each_point_to_exactly_one_shard() {
        for count in 1..=8usize {
            let shards: Vec<ShardSpec> = (0..count)
                .map(|index| ShardSpec::new(index, count).unwrap())
                .collect();
            for point in 0..100 {
                let owners = shards.iter().filter(|s| s.owns_point(point)).count();
                assert_eq!(owners, 1, "point {point} under count {count}");
            }
        }
    }

    #[test]
    fn spec_parses_and_displays_the_cli_form() {
        let spec: ShardSpec = "1/4".parse().unwrap();
        assert_eq!(spec, ShardSpec { index: 1, count: 4 });
        assert_eq!(spec.to_string(), "1/4");
        assert!(!spec.is_full());
        assert!(ShardSpec::FULL.is_full());
        assert_eq!("0/1".parse::<ShardSpec>().unwrap(), ShardSpec::FULL);

        for bad in ["", "1", "a/b", "1/", "/2", "2/2", "0/0", "1/0"] {
            assert!(bad.parse::<ShardSpec>().is_err(), "`{bad}` must not parse");
        }
        // The error for an out-of-range index names the valid range.
        let err = "3/2".parse::<ShardSpec>().unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn mid_run_checkpoints_are_rejected_by_from_state() {
        let mut state = CampaignState::default();
        state.adopt("exhaustive@0000000000000000#0/2", 7);
        // No completion seal: this is what a per-batch checkpoint of an
        // interrupted run looks like after its JSON round-trip.
        let state = CampaignState::from_json(&state.to_json()).unwrap();
        assert!(!state.is_complete());
        assert_eq!(
            ShardOutcome::from_state(&state).unwrap_err(),
            ShardMergeError::IncompleteShardState(ShardSpec { index: 0, count: 2 })
        );
    }

    #[test]
    fn plan_tag_strips_the_shard_suffix() {
        let outcome = ShardOutcome {
            shard: ShardSpec { index: 1, count: 2 },
            tag: "guided@00000000deadbeef#1/2".to_string(),
            seed: 7,
            report: CampaignReport {
                strategy: "guided".to_string(),
                space_size: 0,
                planned_points: 0,
                units_total: 0,
                batches: 0,
                peak_workers: 0,
                executed_now: 0,
                triage: Default::default(),
                records: Vec::new(),
                metrics: None,
            },
        };
        assert_eq!(outcome.plan_tag(), "guided@00000000deadbeef");
    }
}
