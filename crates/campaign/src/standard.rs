//! A ready-made [`Executor`] for the evaluation targets.
//!
//! [`StandardExecutor`] knows how to run every `*-lite` target the way the
//! paper's experiments do: the single-process programs under their default
//! test suites (bind-lite behind its networked client workload), and
//! bft-lite as a full 4-replica cluster.
//!
//! The executor implements both halves of the campaign engine's session
//! model:
//!
//! * **Fresh** ([`Executor::execute`]): each call builds a fresh controller
//!   and VM, so the executor is safe to share across workers.
//! * **Snapshot** ([`Executor::prepare`] / [`Executor::execute_from`]): one
//!   session per `(target, workload)` pair. The session image interposes
//!   *every* profiled failing library function (so one image serves every
//!   unit, whatever it injects), is cached per target (loader work shared
//!   across the target's workloads), and the workload runs once up to its
//!   first injectable call, where a [`MachineSnapshot`] captures it. Each
//!   unit then forks the snapshot, reseeds the fork with its unit seed, and
//!   resumes under its own injection engine. bft-lite is a multi-process
//!   cluster and cannot snapshot; its `prepare` returns `None` and units
//!   fall back to fresh cluster runs.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use lfi_core::{InjectionEngine, InjectionLog, TestConfig, TestOutcome, TestReport};
use lfi_obj::Module;
use lfi_profiler::FaultProfile;
use lfi_targets::{
    bft_lite, bind_lite, db_lite, git_lite, httpd_lite, networked_controller, run_bft_cluster,
    standard_controller, BftClusterConfig, BindWorkload, FsSetupWorkload,
};
use lfi_vm::{Coverage, Fault, Image, MachineSnapshot, NetHandle, NoHooks, RunExit};

use crate::engine::{
    derive_seed, CrashInfo, Execution, Executor, InjectedSite, OutcomeKind, Session, WorkUnit,
};
use crate::space::FaultSpace;

/// Every stock evaluation target.
pub const STOCK_TARGETS: [&str; 5] = ["bind-lite", "git-lite", "db-lite", "bft-lite", "httpd-lite"];

fn stock_target(name: &str) -> Module {
    match name {
        "bind-lite" => bind_lite(),
        "git-lite" => git_lite(),
        "db-lite" => db_lite(),
        "bft-lite" => bft_lite(),
        "httpd-lite" => httpd_lite(),
        other => panic!("unknown target {other}"),
    }
}

/// The default per-target workloads (program arguments per run) — the
/// "default test suite" each system ships with in the reproduction.
pub fn default_test_suite(target: &str) -> Vec<Vec<String>> {
    match target {
        "git-lite" => vec![
            vec!["init".into()],
            vec!["add".into(), "/repo/README.md".into()],
            vec!["add".into(), "/repo/main.c".into()],
            vec!["commit".into(), "initial".into()],
            vec!["log".into()],
            vec!["diff".into(), "3".into(), "4".into()],
            vec!["check-head".into()],
        ],
        "db-lite" => vec![
            vec!["bootstrap".into()],
            vec!["oltp".into(), "30".into(), "1".into()],
            vec!["oltp".into(), "30".into(), "0".into()],
            vec!["merge-big".into(), "2".into()],
        ],
        "bind-lite" => vec![vec!["4".into()]],
        "httpd-lite" => vec![vec!["50".into(), "1".into()], vec!["50".into(), "2".into()]],
        // The cluster target runs once per fault point; arguments are
        // supplied by the cluster harness.
        "bft-lite" => vec![vec![]],
        other => panic!("no default test suite for {other}"),
    }
}

/// Run one workload of a single-process target under a scenario on a fresh
/// VM, wiring up the right controller and workload (bind-lite runs behind
/// its networked client workload, which also dictates the arguments).
/// Shared by the campaign executor and the bench experiment harnesses.
pub fn run_target(
    target: &str,
    exe: &Module,
    scenario: &lfi_core::Scenario,
    args: Vec<String>,
    record_coverage: bool,
    seed: u64,
) -> TestReport {
    if target == "bind-lite" {
        let net = NetHandle::default();
        let controller = networked_controller(net.clone());
        let mut workload = BindWorkload::typical(net);
        let config = TestConfig {
            args: vec![workload.request_count().to_string()],
            record_coverage,
            seed,
            ..TestConfig::default()
        };
        controller
            .run_test(exe, scenario, &mut workload, &config)
            .expect("bind-lite run")
    } else {
        let controller = standard_controller();
        let config = TestConfig {
            args,
            record_coverage,
            seed,
            ..TestConfig::default()
        };
        controller
            .run_test(exe, scenario, &mut FsSetupWorkload, &config)
            .expect("target run")
    }
}

/// A `(target, workload arguments)` session key.
type SessionKey = (String, Vec<String>);
/// One memo slot, built at most once; `None` records that the pair refused
/// to snapshot (e.g. its prefix consumed randomness).
type SessionSlot = Arc<OnceLock<Option<Arc<PreparedSession>>>>;

/// One prepared session: the target's VM captured at the workload's first
/// injectable library call, plus the instruction budget the forks have left.
struct PreparedSession {
    snapshot: MachineSnapshot,
    /// Coverage recorded by the shared prefix, stripped out of the snapshot
    /// so injection forks do not clone it; baseline-reachability forks
    /// merge it back with their continuation's coverage.
    prefix_coverage: Coverage,
    /// `TestConfig::max_instructions` minus the prefix's consumption, so a
    /// fork that runs away exhausts its budget exactly where a fresh run
    /// would.
    budget_left: u64,
}

/// Executes campaign work units against the stock `*-lite` targets.
pub struct StandardExecutor {
    targets: BTreeMap<String, Module>,
    /// Names of every profiled library function with at least one error
    /// case — the superset of functions any unit may inject. Session images
    /// interpose all of them so a single snapshot serves every unit of its
    /// `(target, workload)` pair; an engine with no association for an
    /// intercepted function simply forwards the call, which is free.
    /// Computed on first session use — fresh-backend executors never pay
    /// for the library profiling pass.
    injectable: OnceLock<Vec<String>>,
    /// Loaded session images per target: the loader's layout and
    /// instruction-predecoding work is shared by all of the target's
    /// workload sessions (and their forks).
    images: Mutex<BTreeMap<String, Arc<Image>>>,
    /// Prepared sessions per `(target, workload)`, built at most once each.
    prepared: Mutex<BTreeMap<SessionKey, SessionSlot>>,
    /// Client requests issued per bft-lite cluster run.
    pub bft_requests: usize,
}

impl Default for StandardExecutor {
    fn default() -> Self {
        StandardExecutor::all()
    }
}

impl StandardExecutor {
    /// An executor over the given subset of stock targets. Only the named
    /// targets are compiled and loadable — a hunt over four targets does not
    /// pay for the fifth. Panics on unknown target names.
    pub fn new(targets: &[&str]) -> StandardExecutor {
        StandardExecutor {
            targets: targets
                .iter()
                .map(|name| (name.to_string(), stock_target(name)))
                .collect(),
            injectable: OnceLock::new(),
            images: Mutex::new(BTreeMap::new()),
            prepared: Mutex::new(BTreeMap::new()),
            bft_requests: 4,
        }
    }

    /// The union of profiled failing library functions session images
    /// interpose (computed once, on first use).
    fn injectable(&self) -> &[String] {
        self.injectable.get_or_init(|| {
            standard_controller()
                .profile_libraries()
                .failing_functions()
        })
    }

    /// An executor over every stock target.
    pub fn all() -> StandardExecutor {
        StandardExecutor::new(&STOCK_TARGETS)
    }

    /// The module of one target.
    pub fn target(&self, name: &str) -> Option<&Module> {
        self.targets.get(name)
    }

    /// Enumerate the fault space of the given targets (every call site of
    /// every profiled failing function), annotated with the call-site
    /// analyzer's classification.
    pub fn fault_space(&self, targets: &[&str], profile: &FaultProfile) -> FaultSpace {
        let controller = standard_controller();
        let mut space = FaultSpace::new();
        for name in targets {
            let exe = self
                .target(name)
                .unwrap_or_else(|| panic!("unknown target {name}"));
            space.add_target(name, exe, profile);
            space.annotate_analysis(name, &controller.analyze(exe));
        }
        space
    }

    /// The loaded session image of a target (built on first use).
    fn session_image(&self, target: &str) -> Arc<Image> {
        let mut images = self.images.lock().unwrap();
        images
            .entry(target.to_string())
            .or_insert_with(|| {
                let exe = self
                    .target(target)
                    .unwrap_or_else(|| panic!("unknown target {target}"));
                standard_controller()
                    .build_image(exe, self.injectable())
                    .expect("stock target must load")
            })
            .clone()
    }

    /// Build the prefix snapshot for one `(target, workload)` pair: set up
    /// the workload, run to the first injectable call, snapshot. Coverage
    /// recording stays on during the prefix so baseline-reachability forks
    /// can keep accumulating; injection forks switch it off.
    ///
    /// Returns `None` when the prefix consumed randomness: forks reseed
    /// the RNG with their unit seed, which replays fresh-VM behavior only
    /// from an untouched stream, so such a pair must run fresh to keep the
    /// backends observably identical.
    fn build_session(&self, target: &str, args: &[String]) -> Option<PreparedSession> {
        let image = self.session_image(target);
        let (prep, budget) = if target == "bind-lite" {
            let net = NetHandle::default();
            let controller = networked_controller(net.clone());
            let mut workload = BindWorkload::typical(net);
            let config = TestConfig {
                args: vec![workload.request_count().to_string()],
                record_coverage: true,
                ..TestConfig::default()
            };
            (
                controller.prepare_session(image, self.injectable(), &mut workload, &config),
                config.max_instructions,
            )
        } else {
            let controller = standard_controller();
            let config = TestConfig {
                args: args.to_vec(),
                record_coverage: true,
                ..TestConfig::default()
            };
            (
                controller.prepare_session(image, self.injectable(), &mut FsSetupWorkload, &config),
                config.max_instructions,
            )
        };
        let mut machine = prep.machine;
        if !machine.rng_is_pristine() {
            return None;
        }
        Some(PreparedSession {
            budget_left: budget.saturating_sub(prep.instructions_used),
            prefix_coverage: machine.take_coverage(),
            snapshot: machine.snapshot(),
        })
    }

    /// The memoized session of a `(target, workload)` pair, or `None` when
    /// the pair cannot snapshot (the multi-process bft-lite cluster, or a
    /// prefix that consumed randomness). The refusal is memoized too.
    fn prepared_session(&self, target: &str, args: &[String]) -> Option<Arc<PreparedSession>> {
        if target == "bft-lite" || !self.targets.contains_key(target) {
            return None;
        }
        let slot = {
            let mut prepared = self.prepared.lock().unwrap();
            prepared
                .entry((target.to_string(), args.to_vec()))
                .or_default()
                .clone()
        };
        slot.get_or_init(|| self.build_session(target, args).map(Arc::new))
            .clone()
    }

    /// Number of `(target, workload)` sessions prepared so far.
    pub fn sessions_prepared(&self) -> usize {
        self.prepared
            .lock()
            .unwrap()
            .values()
            .filter(|slot| matches!(slot.get(), Some(Some(_))))
            .count()
    }

    /// Run each single-process target's default suite once with no
    /// injections, recording coverage, and annotate the space with which
    /// call sites the baseline reaches — the signal `InjectionGuided`
    /// prunes on. (Cluster targets are left unannotated.)
    ///
    /// The baseline reuses the prepared session snapshots: each workload's
    /// shared prefix (which already recorded coverage) is forked and run to
    /// completion with no hooks, instead of re-running the whole workload
    /// from scratch — and the sessions prepared here are the same ones a
    /// subsequent snapshot-backend campaign forks its units from.
    ///
    /// `seed` should be the campaign's base seed: each workload's fork is
    /// reseeded with a [`derive_seed`]-mixed per-workload seed and the
    /// coverage is merged, so the baseline samples the same mixed-seed
    /// family campaign units run under instead of a fixed out-of-band seed.
    /// This is a heuristic, not a guarantee: units of a point run under
    /// per-unit derived seeds, and profiling each of those would cost one
    /// baseline run per unit, so a workload whose control flow is extremely
    /// seed-sensitive can still be annotated unreached on a site some unit
    /// seed would reach.
    pub fn annotate_baseline_reachability(&self, space: &mut FaultSpace, seed: u64) {
        for target in space.targets() {
            if target == "bft-lite" {
                continue; // cluster target: left unannotated
            }
            let Some(exe) = self.target(&target) else {
                continue;
            };
            let mut baseline = Coverage::new();
            for (workload, args) in default_test_suite(&target).into_iter().enumerate() {
                let workload_seed = derive_seed(seed, workload as u64);
                match self.prepared_session(&target, &args) {
                    Some(prepared) => {
                        let mut machine = prepared.snapshot.fork();
                        machine.reseed(workload_seed);
                        machine.run(&mut NoHooks, prepared.budget_left);
                        baseline.merge(&prepared.prefix_coverage);
                        baseline.merge(&machine.coverage);
                    }
                    // A pair that refuses to snapshot still contributes its
                    // baseline coverage the pre-session way: one full
                    // no-fault run.
                    None => {
                        let report = run_target(
                            &target,
                            exe,
                            &lfi_core::Scenario::new(),
                            args,
                            true,
                            workload_seed,
                        );
                        baseline.merge(&report.coverage);
                    }
                }
            }
            space.annotate_reached(&target, &baseline);
        }
    }

    fn resolve_caller(&self, module: &str, offset: u64) -> Option<String> {
        self.targets
            .get(module)
            .and_then(|m| m.containing_function(offset))
            .map(|e| e.name.clone())
    }

    fn crash_info(&self, fault: &Fault) -> CrashInfo {
        CrashInfo {
            module: fault.module.clone(),
            offset: fault.offset,
            description: fault.to_string(),
            in_function: self.resolve_caller(&fault.module, fault.offset),
            backtrace: fault
                .backtrace
                .iter()
                .filter_map(|frame| frame.function.clone())
                .collect(),
        }
    }

    /// The call sites where `function` was actually failed, per the
    /// injection log — the same accounting for fresh and forked runs.
    fn injected_sites(&self, log: &InjectionLog, function: &str) -> Vec<InjectedSite> {
        log.records
            .iter()
            .filter(|r| r.function == function)
            .map(|r| InjectedSite {
                module: r.call_site.0.clone(),
                offset: r.call_site.1,
                caller: self.resolve_caller(&r.call_site.0, r.call_site.1),
            })
            .collect()
    }

    fn execute_single(&self, exe: &Module, unit: &WorkUnit) -> Execution {
        let report = run_target(
            &unit.point.target,
            exe,
            &unit.scenario,
            unit.args.clone(),
            false,
            unit.seed,
        );
        let outcome = match report.outcome {
            TestOutcome::Passed => OutcomeKind::Passed,
            TestOutcome::CleanFailure(code) => OutcomeKind::CleanFailure(code),
            TestOutcome::Crashed(_) => OutcomeKind::Crashed,
            TestOutcome::Hung => OutcomeKind::Hung,
        };
        Execution {
            outcome,
            injections: report.injections.injection_count() as u64,
            injected_sites: self.injected_sites(&report.injections, &unit.point.function),
            crashes: report
                .fault
                .as_ref()
                .map(|f| vec![self.crash_info(f)])
                .unwrap_or_default(),
            virtual_time: report.virtual_time,
        }
    }

    fn execute_cluster(&self, unit: &WorkUnit) -> Execution {
        let result = run_bft_cluster(&BftClusterConfig {
            requests: self.bft_requests,
            scenario: unit.scenario.clone(),
            ..BftClusterConfig::default()
        });
        let crashes: Vec<CrashInfo> = result
            .crashes
            .iter()
            .map(|(_node, fault)| self.crash_info(fault))
            .collect();
        // No crash but lost requests means the cluster stalled — a
        // liveness/availability failure, not a pass.
        let outcome = if !crashes.is_empty() {
            OutcomeKind::Crashed
        } else if result.completed < self.bft_requests as i64 {
            OutcomeKind::Hung
        } else {
            OutcomeKind::Passed
        };
        Execution {
            outcome,
            injections: result.injections,
            // The cluster harness does not expose per-node injection logs;
            // the fault point itself is the injected site.
            injected_sites: vec![InjectedSite {
                module: unit.point.target.clone(),
                offset: unit.point.offset,
                caller: unit.point.caller.clone(),
            }],
            crashes,
            virtual_time: result.virtual_time,
        }
    }
}

impl Executor for StandardExecutor {
    fn workloads(&self, target: &str) -> Vec<Vec<String>> {
        default_test_suite(target)
    }

    fn prepare(&self, target: &str, args: &[String]) -> Option<Session> {
        self.prepared_session(target, args).map(Session::new)
    }

    fn execute_from(&self, session: &Session, unit: &WorkUnit) -> Execution {
        let prepared = session
            .downcast_ref::<Arc<PreparedSession>>()
            .expect("session prepared by StandardExecutor");
        let mut machine = prepared.snapshot.fork();
        machine.reseed(unit.seed);
        machine.set_record_coverage(false);
        // Mirror the fresh path's engine setup exactly: the stock registry
        // and the trigger-evaluation cost both come from the same defaults
        // `run_target`'s controller uses, so the two backends cannot drift
        // apart if either default changes.
        let mut engine =
            InjectionEngine::new(unit.scenario.clone()).expect("unit scenario must compile");
        engine.trigger_eval_cost = TestConfig::default().trigger_eval_cost;
        let exit = machine.run(&mut engine, prepared.budget_left);
        let (outcome, crashes) = match &exit {
            RunExit::Exited(0) => (OutcomeKind::Passed, Vec::new()),
            RunExit::Exited(code) => (OutcomeKind::CleanFailure(*code), Vec::new()),
            RunExit::Fault(fault) => (OutcomeKind::Crashed, vec![self.crash_info(fault)]),
            RunExit::Blocked | RunExit::Budget | RunExit::Paused => (OutcomeKind::Hung, Vec::new()),
        };
        Execution {
            outcome,
            injections: engine.log.injection_count() as u64,
            injected_sites: self.injected_sites(&engine.log, &unit.point.function),
            crashes,
            virtual_time: machine.clock(),
        }
    }

    fn execute(&self, unit: &WorkUnit) -> Execution {
        if unit.point.target == "bft-lite" {
            return self.execute_cluster(unit);
        }
        let exe = self
            .target(&unit.point.target)
            .unwrap_or_else(|| panic!("unknown target {}", unit.point.target));
        self.execute_single(exe, unit)
    }
}

#[cfg(test)]
mod tests {
    use lfi_targets::all_targets;

    use super::*;

    #[test]
    fn suites_cover_every_runnable_target() {
        for (name, _) in all_targets() {
            assert!(
                !default_test_suite(name).is_empty(),
                "{name} needs a default suite"
            );
        }
    }

    #[test]
    fn subset_executors_only_load_requested_targets() {
        let executor = StandardExecutor::new(&["git-lite"]);
        assert!(executor.target("git-lite").is_some());
        assert!(executor.target("httpd-lite").is_none());
        assert!(
            executor.injectable.get().is_none(),
            "the failing-function union is not computed until a session is prepared"
        );
        assert!(
            !executor.injectable().is_empty(),
            "session images need the profiled failing-function union"
        );
    }

    #[test]
    fn sessions_are_memoized_per_target_and_workload() {
        let executor = StandardExecutor::new(&["git-lite", "bft-lite"]);
        assert!(
            executor.prepare("bft-lite", &[]).is_none(),
            "cluster targets cannot snapshot"
        );
        let args = vec!["init".to_string()];
        let first = executor.prepared_session("git-lite", &args).unwrap();
        let second = executor.prepared_session("git-lite", &args).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same pair, same session");
        assert_eq!(executor.sessions_prepared(), 1);
        // A different workload of the same target is its own session, but
        // shares the loaded image.
        executor
            .prepared_session("git-lite", &["log".to_string()])
            .unwrap();
        assert_eq!(executor.sessions_prepared(), 2);
        assert_eq!(executor.images.lock().unwrap().len(), 1);
    }
}
