//! A ready-made [`Executor`] for the evaluation targets.
//!
//! [`StandardExecutor`] knows how to run every `*-lite` target the way the
//! paper's experiments do: the single-process programs under their default
//! test suites (bind-lite behind its networked client workload), and
//! bft-lite as a full 4-replica cluster.
//!
//! The executor implements both halves of the campaign engine's session
//! model:
//!
//! * **Fresh** ([`Executor::execute`]): each call builds a fresh controller
//!   and VM, so the executor is safe to share across workers.
//! * **Snapshot** ([`Executor::prepare`] / [`Executor::execute_from`]): one
//!   session per `(target, workload)` pair. The session image interposes
//!   *every* profiled failing library function (so one image serves every
//!   unit, whatever it injects), is cached per target (loader work shared
//!   across the target's workloads), and the workload runs once up to its
//!   first injectable call, where a [`MachineSnapshot`] captures the tree's
//!   root. The session then grows a *snapshot tree* keyed by
//!   injectable-call index: a unit injecting a function first called at
//!   call `k` forks the deepest resident snapshot certified to precede
//!   call `k` — paying the prefix from the root once per function instead
//!   of once per unit — reseeds the fork with its unit seed, and resumes
//!   under its own injection engine. Deepening only extends the tree while
//!   the run stays deterministic (pristine RNG, normal exits); anything
//!   else caps the tree and units fall back to shallower nodes. Resident
//!   snapshots are bounded by a byte budget with least-recently-used
//!   eviction. bft-lite is a multi-process cluster and cannot snapshot;
//!   its `prepare` returns `None` and units fall back to fresh cluster
//!   runs, as do workloads whose prefix consumes randomness, crashes,
//!   blocks, or exhausts the instruction budget before the first
//!   injectable call.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use lfi_core::{InjectionEngine, InjectionLog, TestConfig, TestOutcome, TestReport};
use lfi_obj::Module;
use lfi_profiler::FaultProfile;
use lfi_targets::{
    bft_lite, bind_lite, db_lite, git_lite, httpd_lite, networked_controller, run_bft_cluster,
    standard_controller, BftClusterConfig, BindWorkload, FsSetupWorkload,
};
use lfi_telemetry::{Counter, Gauge, Histogram, Telemetry};
use lfi_vm::{Coverage, Fault, Image, Machine, MachineSnapshot, NetHandle, NoHooks, RunExit};

use crate::engine::{
    derive_seed, CrashInfo, Execution, Executor, InjectedSite, OutcomeKind, PrefetchKey, Session,
    WorkUnit, DEFAULT_SNAPSHOT_BUDGET,
};
use crate::space::FaultSpace;

/// Bound on how long a fork waits for a concurrent claimed deepening pass
/// to materialize its want before giving up and forking the deepest
/// resident ancestor instead (correct either way — waiting only buys a
/// deeper fork point).
const DEEPEN_WAIT_BOUND: Duration = Duration::from_millis(250);

/// Every stock evaluation target.
pub const STOCK_TARGETS: [&str; 5] = ["bind-lite", "git-lite", "db-lite", "bft-lite", "httpd-lite"];

fn stock_target(name: &str) -> Module {
    match name {
        "bind-lite" => bind_lite(),
        "git-lite" => git_lite(),
        "db-lite" => db_lite(),
        "bft-lite" => bft_lite(),
        "httpd-lite" => httpd_lite(),
        other => panic!("unknown target {other}"),
    }
}

/// The default per-target workloads (program arguments per run) — the
/// "default test suite" each system ships with in the reproduction.
pub fn default_test_suite(target: &str) -> Vec<Vec<String>> {
    match target {
        "git-lite" => vec![
            vec!["init".into()],
            vec!["add".into(), "/repo/README.md".into()],
            vec!["add".into(), "/repo/main.c".into()],
            vec!["commit".into(), "initial".into()],
            vec!["log".into()],
            vec!["diff".into(), "3".into(), "4".into()],
            vec!["check-head".into()],
        ],
        "db-lite" => vec![
            vec!["bootstrap".into()],
            vec!["oltp".into(), "30".into(), "1".into()],
            vec!["oltp".into(), "30".into(), "0".into()],
            vec!["merge-big".into(), "2".into()],
        ],
        "bind-lite" => vec![vec!["4".into()]],
        "httpd-lite" => vec![vec!["50".into(), "1".into()], vec!["50".into(), "2".into()]],
        // The cluster target runs once per fault point; arguments are
        // supplied by the cluster harness.
        "bft-lite" => vec![vec![]],
        other => panic!("no default test suite for {other}"),
    }
}

/// Run one workload of a single-process target under a scenario on a fresh
/// VM, wiring up the right controller and workload (bind-lite runs behind
/// its networked client workload, which also dictates the arguments).
/// Shared by the campaign executor and the bench experiment harnesses.
pub fn run_target(
    target: &str,
    exe: &Module,
    scenario: &lfi_core::Scenario,
    args: Vec<String>,
    record_coverage: bool,
    seed: u64,
) -> TestReport {
    run_target_with_budget(
        target,
        exe,
        scenario,
        args,
        record_coverage,
        seed,
        TestConfig::default().max_instructions,
    )
}

/// [`run_target`] with an explicit per-run instruction budget, so campaigns
/// with a configured [`StandardExecutor::set_max_instructions`] budget keep
/// fresh and snapshot execution on identical budget accounting.
pub fn run_target_with_budget(
    target: &str,
    exe: &Module,
    scenario: &lfi_core::Scenario,
    args: Vec<String>,
    record_coverage: bool,
    seed: u64,
    max_instructions: u64,
) -> TestReport {
    if target == "bind-lite" {
        let net = NetHandle::default();
        let controller = networked_controller(net.clone());
        let mut workload = BindWorkload::typical(net);
        let config = TestConfig {
            args: vec![workload.request_count().to_string()],
            record_coverage,
            seed,
            max_instructions,
            ..TestConfig::default()
        };
        controller
            .run_test(exe, scenario, &mut workload, &config)
            .expect("bind-lite run")
    } else {
        let controller = standard_controller();
        let config = TestConfig {
            args,
            record_coverage,
            seed,
            max_instructions,
            ..TestConfig::default()
        };
        controller
            .run_test(exe, scenario, &mut FsSetupWorkload, &config)
            .expect("target run")
    }
}

/// A `(target, workload arguments)` session key.
type SessionKey = (String, Vec<String>);
/// One memo slot, built at most once; `None` records that the pair refused
/// to snapshot (e.g. its prefix consumed randomness, crashed, blocked, or
/// exhausted the instruction budget before the first injectable call).
type SessionSlot = Arc<OnceLock<Option<Arc<PreparedSession>>>>;

/// Shared accounting for the resident-snapshot byte budget: one cap and
/// usage counter per executor, updated by every session tree as nodes are
/// inserted and evicted. A tree that pushes `used` over `cap` evicts its
/// own least-recently-used nodes; other trees trim themselves on their next
/// insertion, so the cap is enforced cooperatively across sessions.
struct SnapshotBudget {
    cap: AtomicU64,
    used: AtomicU64,
}

impl SnapshotBudget {
    fn new(cap: u64) -> SnapshotBudget {
        SnapshotBudget {
            cap: AtomicU64::new(cap),
            used: AtomicU64::new(0),
        }
    }
}

/// One resident node of a session's snapshot tree.
struct SnapshotNode {
    /// 1-based injectable-call depth: the snapshot is paused just before
    /// the `depth`-th injectable call of the workload (the root is depth 1,
    /// today's flat-session pause point).
    depth: usize,
    /// Depth of the node this one was deepened from, for walking the
    /// incremental-coverage chain (the root is its own parent).
    parent_depth: usize,
    snapshot: MachineSnapshot,
    /// Coverage recorded between the parent node and this one — each node
    /// stores only its increment; merging the increments down the path
    /// reconstructs the full prefix coverage (the root's share lives in
    /// [`PreparedSession::prefix_coverage`]).
    post_coverage: Coverage,
    /// [`MachineSnapshot::resident_bytes`] at creation, charged against the
    /// executor's snapshot budget.
    bytes: u64,
    /// LRU stamp: the tree's tick at the last fork taken from this node.
    last_use: u64,
}

/// The per-`(target, workload)` snapshot tree: resident prefix snapshots
/// keyed by injectable-call index, plus the certified call trace they are
/// indexed by.
struct SnapshotTree {
    /// `trace[i]` is the function of injectable call `i + 1`. Only extended
    /// while the RNG stayed pristine, so every entry is certified
    /// deterministic (seed-independent) and `at_index` replays along it are
    /// guaranteed to reproduce it.
    trace: Vec<String>,
    /// Memoized first-call depths over `trace`: function → 1-based index of
    /// its first certified call. Maintained by [`SnapshotTree::record_calls`]
    /// so [`SnapshotTree::depth_of`] never rescans the trace on a fork.
    first_depth: BTreeMap<String, usize>,
    /// Resident nodes in ascending depth order; `nodes[0]` is the root and
    /// is never evicted.
    nodes: Vec<SnapshotNode>,
    /// The trace covers the whole workload: no injectable calls exist
    /// beyond it (the prefix, or a deepening run, ran to a clean exit).
    complete: bool,
    /// Deepening is disabled: a deepening run consumed randomness or ended
    /// abnormally, so the trace cannot be extended. Resident nodes (all
    /// certified before the cap) stay valid, and exact depths within the
    /// certified trace can still be materialized.
    capped: bool,
    /// A claimed deepening pass ([`StandardExecutor::deepen_shared`]) is
    /// walking this tree. Exactly one pass runs at a time; workers that
    /// need deepening while a claim is held register their want below and
    /// wait on [`PreparedSession::deepened`] instead of duplicating the
    /// walk.
    deepening: bool,
    /// Exact depths workers/prefetchers want materialized. Consumed by the
    /// claimed pass; reconciled against tree state by
    /// [`SnapshotTree::normalize_wants`].
    wanted_depths: BTreeSet<usize>,
    /// Functions whose first-call depth is still unknown (discovery wants);
    /// once the trace places one, it becomes an exact-depth want.
    wanted_functions: BTreeSet<String>,
    /// Monotonic fork counter driving the LRU stamps.
    ticks: u64,
}

impl SnapshotTree {
    /// The 1-based depth of the workload's first call to `function`, when
    /// it lies within the certified trace (memoized — O(log n) map lookup).
    fn depth_of(&self, function: &str) -> Option<usize> {
        self.first_depth.get(function).copied()
    }

    /// Whether a node at exactly `depth` is resident.
    fn resident(&self, depth: usize) -> bool {
        self.nodes.iter().any(|n| n.depth == depth)
    }

    /// Reconcile the registered wants with the tree's current state:
    /// discovery wants the certified trace now places become exact-depth
    /// wants (clamped to `max_depth`), discovery wants on a tree whose
    /// trace can no longer extend are dropped, and depth wants already
    /// resident — or outside the certified/capped reach — are dropped.
    fn normalize_wants(&mut self, max_depth: usize) {
        let placed: Vec<(String, usize)> = self
            .wanted_functions
            .iter()
            .filter_map(|f| self.first_depth.get(f).map(|&d| (f.clone(), d)))
            .collect();
        for (function, depth) in placed {
            self.wanted_functions.remove(&function);
            self.wanted_depths.insert(depth.min(max_depth));
        }
        if self.complete || self.capped {
            self.wanted_functions.clear();
        }
        let resident: Vec<usize> = self.nodes.iter().map(|n| n.depth).collect();
        let trace_len = self.trace.len();
        self.wanted_depths
            .retain(|&d| d <= max_depth && d <= trace_len && !resident.contains(&d));
    }

    /// Index of the deepest resident node at depth <= `depth` (the root,
    /// at depth 1, always qualifies).
    fn deepest_at_most(&self, depth: usize) -> usize {
        self.nodes
            .iter()
            .rposition(|n| n.depth <= depth)
            .unwrap_or(0)
    }

    /// Record `calls` as injectable calls `base..base + calls.len()`
    /// (1-based), verifying overlap with the already-certified trace — a
    /// mismatch would mean a deepening run diverged from the certified
    /// path, which the pristine-RNG discipline is supposed to preclude.
    fn record_calls(&mut self, base: usize, calls: &[String]) {
        for (i, call) in calls.iter().enumerate() {
            let index = base + i; // 1-based call index
            match self.trace.get(index - 1) {
                Some(known) => debug_assert_eq!(
                    known, call,
                    "deepening run diverged from the certified call trace"
                ),
                None => {
                    debug_assert_eq!(self.trace.len(), index - 1);
                    self.first_depth.entry(call.clone()).or_insert(index);
                    self.trace.push(call.clone());
                }
            }
        }
    }
}

/// One prepared session: the workload's snapshot tree, its prefix
/// coverage, and the budget accounting forks are charged under.
struct PreparedSession {
    /// Coverage recorded by the shared prefix up to the root pause point,
    /// stripped out of the snapshots so injection forks do not clone it;
    /// baseline-reachability forks merge it back with their continuation's
    /// coverage.
    prefix_coverage: Coverage,
    /// The per-run instruction budget this session was prepared under
    /// (forks run with this minus their fork point's consumption, so
    /// budget exhaustion behaves exactly like a fresh run).
    max_instructions: u64,
    /// Shared resident-byte accounting with the owning executor.
    budget: Arc<SnapshotBudget>,
    tree: Mutex<SnapshotTree>,
    /// Signaled by the claimed deepening pass after every node it
    /// materializes (and when the claim is released), waking workers
    /// blocked in [`StandardExecutor::fork_for`] on a registered want.
    deepened: Condvar,
}

impl PreparedSession {
    /// Fork the root node (the flat-session pause point) — the entry point
    /// baseline-reachability profiling resumes from.
    fn root_fork(&self) -> (Machine, u64) {
        let mut tree = self.tree.lock().unwrap();
        fork_node(&mut tree, 0, self.max_instructions)
    }
}

/// Fork the node at `index`, bumping its LRU stamp; returns the machine and
/// the instruction budget it has left.
fn fork_node(tree: &mut SnapshotTree, index: usize, max_instructions: u64) -> (Machine, u64) {
    tree.ticks += 1;
    let ticks = tree.ticks;
    let node = &mut tree.nodes[index];
    node.last_use = ticks;
    let budget_left = max_instructions.saturating_sub(node.snapshot.stats().instructions);
    (node.snapshot.fork(), budget_left)
}

/// Pre-resolved telemetry handles for the executor's hot paths, so forks
/// and deepening runs never take the registry's name-lookup mutex.
struct ExecMetrics {
    /// Wall time of the whole static-analysis phase of `fault_space`
    /// (classification, propagation, and pruning, per call).
    analysis_micros: Histogram,
    /// Fault points examined by the static-prune pass.
    analysis_sites_total: Counter,
    /// Fault points demoted because propagation proved the error handled.
    analysis_sites_pruned: Counter,
    /// Fault points whose analysis came from a truncated CFG walk.
    analysis_sites_low_confidence: Counter,
    session_prepare_micros: Histogram,
    tree_fork_micros: Histogram,
    tree_deepen_micros: Histogram,
    /// Wall time of batch prefetch passes ([`Executor::prefetch_batch`]).
    tree_prefetch_micros: Histogram,
    /// Forks served by a node the forking unit did not have to deepen for:
    /// already resident, or materialized by a concurrent pass / batch
    /// prefetch while the unit waited.
    tree_fork_hits: Counter,
    /// Forks served by a node the forking unit's own deepening pass had to
    /// materialize.
    tree_fork_misses: Counter,
    tree_nodes_materialized: Counter,
    tree_nodes_evicted: Counter,
    /// Safety net: a claimed deepening pass found its wanted depth already
    /// resident. The claims protocol makes passes mutually exclusive, so
    /// this should always read 0 — a nonzero value means duplicated
    /// deepening work (the pre-claims race) has regressed, and CI asserts
    /// on it.
    tree_deepen_discarded: Counter,
    /// Forks that blocked on a concurrent claimed deepening pass instead
    /// of duplicating its walk.
    tree_deepen_waited: Counter,
    /// Claimed deepening passes run (each may materialize many nodes).
    tree_deepen_claimed: Counter,
    /// Claimed passes initiated by a batch prefetch hint.
    tree_prefetch_runs: Counter,
    /// Nodes materialized by prefetch-initiated passes.
    tree_prefetch_nodes: Counter,
    /// High-water mark of resident snapshot bytes across all sessions.
    snapshot_resident_bytes_hw: Gauge,
    /// Per-depth fork counters (`tree_fork_depth_<d>`), resolved lazily —
    /// depths observed depend on the workloads.
    fork_depths: Mutex<BTreeMap<usize, Counter>>,
}

impl ExecMetrics {
    fn resolve(telemetry: &Telemetry) -> ExecMetrics {
        ExecMetrics {
            analysis_micros: telemetry.histogram("analysis_micros"),
            analysis_sites_total: telemetry.counter("analysis_sites_total"),
            analysis_sites_pruned: telemetry.counter("analysis_sites_pruned"),
            analysis_sites_low_confidence: telemetry.counter("analysis_sites_low_confidence"),
            session_prepare_micros: telemetry.histogram("session_prepare_micros"),
            tree_fork_micros: telemetry.histogram("tree_fork_micros"),
            tree_deepen_micros: telemetry.histogram("tree_deepen_micros"),
            tree_prefetch_micros: telemetry.histogram("tree_prefetch_micros"),
            tree_fork_hits: telemetry.counter("tree_fork_hits"),
            tree_fork_misses: telemetry.counter("tree_fork_misses"),
            tree_nodes_materialized: telemetry.counter("tree_nodes_materialized"),
            tree_nodes_evicted: telemetry.counter("tree_nodes_evicted"),
            tree_deepen_discarded: telemetry.counter("tree_deepen_discarded"),
            tree_deepen_waited: telemetry.counter("tree_deepen_waited"),
            tree_deepen_claimed: telemetry.counter("tree_deepen_claimed"),
            tree_prefetch_runs: telemetry.counter("tree_prefetch_runs"),
            tree_prefetch_nodes: telemetry.counter("tree_prefetch_nodes"),
            snapshot_resident_bytes_hw: telemetry.gauge("snapshot_resident_bytes_hw"),
            fork_depths: Mutex::new(BTreeMap::new()),
        }
    }

    /// Count one fork taken from a node at `depth`.
    fn fork_at_depth(&self, telemetry: &Telemetry, depth: usize) {
        if !telemetry.enabled() {
            return;
        }
        self.fork_depths
            .lock()
            .unwrap()
            .entry(depth)
            .or_insert_with(|| telemetry.counter(&format!("tree_fork_depth_{depth}")))
            .inc();
    }
}

/// Executes campaign work units against the stock `*-lite` targets.
pub struct StandardExecutor {
    targets: BTreeMap<String, Module>,
    /// Names of every profiled library function with at least one error
    /// case — the superset of functions any unit may inject. Session images
    /// interpose all of them so a single snapshot serves every unit of its
    /// `(target, workload)` pair; an engine with no association for an
    /// intercepted function simply forwards the call, which is free.
    /// Computed on first session use — fresh-backend executors never pay
    /// for the library profiling pass.
    injectable: OnceLock<Vec<String>>,
    /// Loaded session images per target: the loader's layout and
    /// instruction-predecoding work is shared by all of the target's
    /// workload sessions (and their forks).
    images: Mutex<BTreeMap<String, Arc<Image>>>,
    /// Prepared sessions per `(target, workload)`, built at most once each.
    prepared: Mutex<BTreeMap<SessionKey, SessionSlot>>,
    /// Per-run instruction budget, applied identically to fresh runs and
    /// session prefixes/forks so the backends exhaust budgets at the same
    /// boundary.
    max_instructions: u64,
    /// Deepest injectable-call index sessions may keep snapshots at; 1
    /// degenerates to the flat single-snapshot-per-session model.
    max_session_depth: usize,
    /// Resident-snapshot byte accounting shared by every session tree.
    snapshot_budget: Arc<SnapshotBudget>,
    /// Client requests issued per bft-lite cluster run.
    pub bft_requests: usize,
    /// Registry campaign telemetry is recorded into. A fresh enabled
    /// registry by default; install [`Telemetry::disabled`] via
    /// [`StandardExecutor::set_telemetry`] to reduce instrumentation to a
    /// few branch checks per fork.
    telemetry: Telemetry,
    /// Pre-resolved handles into `telemetry` for the hot paths.
    metrics: ExecMetrics,
}

impl Default for StandardExecutor {
    fn default() -> Self {
        StandardExecutor::all()
    }
}

impl StandardExecutor {
    /// An executor over the given subset of stock targets. Only the named
    /// targets are compiled and loadable — a hunt over four targets does not
    /// pay for the fifth. Panics on unknown target names.
    pub fn new(targets: &[&str]) -> StandardExecutor {
        let telemetry = Telemetry::new();
        StandardExecutor {
            targets: targets
                .iter()
                .map(|name| (name.to_string(), stock_target(name)))
                .collect(),
            injectable: OnceLock::new(),
            images: Mutex::new(BTreeMap::new()),
            prepared: Mutex::new(BTreeMap::new()),
            max_instructions: TestConfig::default().max_instructions,
            max_session_depth: usize::MAX,
            snapshot_budget: Arc::new(SnapshotBudget::new(DEFAULT_SNAPSHOT_BUDGET)),
            bft_requests: 4,
            metrics: ExecMetrics::resolve(&telemetry),
            telemetry,
        }
    }

    /// Install the telemetry registry campaign metrics are recorded into.
    /// Pass [`Telemetry::disabled`] to turn collection off (the
    /// constructor installs an enabled registry). Call before units
    /// execute so the whole campaign is accounted in one registry.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.metrics = ExecMetrics::resolve(&telemetry);
        self.telemetry = telemetry;
    }

    /// Override the per-run instruction budget. Applies to fresh runs and
    /// sessions alike; call before any unit executes so every run of the
    /// campaign is accounted under the same budget.
    pub fn set_max_instructions(&mut self, max_instructions: u64) {
        self.max_instructions = max_instructions;
    }

    /// Cap the injectable-call depth sessions keep snapshots at. `1`
    /// restores the flat model: one snapshot per session at the first
    /// injectable call, no deepening.
    pub fn set_max_session_depth(&mut self, depth: usize) {
        self.max_session_depth = depth.max(1);
    }

    /// The union of profiled failing library functions session images
    /// interpose (computed once, on first use).
    fn injectable(&self) -> &[String] {
        self.injectable.get_or_init(|| {
            standard_controller()
                .profile_libraries()
                .failing_functions()
        })
    }

    /// An executor over every stock target.
    pub fn all() -> StandardExecutor {
        StandardExecutor::new(&STOCK_TARGETS)
    }

    /// The module of one target.
    pub fn target(&self, name: &str) -> Option<&Module> {
        self.targets.get(name)
    }

    /// Enumerate the fault space of the given targets (every call site of
    /// every profiled failing function), annotated with the call-site
    /// analyzer's classification and the interprocedural propagation
    /// verdicts, then run the static-prune pass: points whose error return
    /// is provably handled are demoted (explored last, fast-pruned by the
    /// adaptive scheduler once runtime evidence corroborates the proof).
    /// The phase's duration and prune counts land in the executor's
    /// telemetry (`analysis_micros`, `analysis_sites_*`).
    pub fn fault_space(&self, targets: &[&str], profile: &FaultProfile) -> FaultSpace {
        let _span = self.metrics.analysis_micros.start();
        let controller = standard_controller();
        let mut space = FaultSpace::new();
        for name in targets {
            let exe = self
                .target(name)
                .unwrap_or_else(|| panic!("unknown target {name}"));
            space.add_target(name, exe, profile);
            let reports = controller.analyze(exe);
            space.annotate_analysis(name, &reports);
            space.annotate_propagation(name, &controller.analyze_propagation(exe, &reports));
        }
        let stats = space.static_prune();
        self.metrics.analysis_sites_total.add(stats.total as u64);
        self.metrics.analysis_sites_pruned.add(stats.demoted as u64);
        self.metrics
            .analysis_sites_low_confidence
            .add(stats.low_confidence as u64);
        space
    }

    /// The loaded session image of a target (built on first use).
    fn session_image(&self, target: &str) -> Arc<Image> {
        let mut images = self.images.lock().unwrap();
        images
            .entry(target.to_string())
            .or_insert_with(|| {
                let exe = self
                    .target(target)
                    .unwrap_or_else(|| panic!("unknown target {target}"));
                standard_controller()
                    .build_image(exe, self.injectable())
                    .expect("stock target must load")
            })
            .clone()
    }

    /// Build the session tree root for one `(target, workload)` pair: set
    /// up the workload, run to the first injectable call, snapshot.
    /// Coverage recording stays on during the prefix so
    /// baseline-reachability forks and deepening runs keep accumulating;
    /// injection forks switch it off.
    ///
    /// Returns `None` — refusing to snapshot, so the pair's units run
    /// fresh — when resuming the prefix could not reproduce fresh-VM
    /// behavior:
    ///
    /// * the prefix ended abnormally ([`RunExit::Fault`], [`RunExit::Blocked`]
    ///   or [`RunExit::Budget`]) instead of pausing at an injectable call or
    ///   exiting cleanly — a fork of such a state would resume mid-crash;
    /// * the prefix already consumed the whole instruction budget, so a
    ///   fork would have zero budget where a fresh run still reports the
    ///   prefix's own termination;
    /// * the prefix consumed randomness: forks reseed the RNG with their
    ///   unit seed, which replays fresh-VM behavior only from an untouched
    ///   stream.
    fn build_session(&self, target: &str, args: &[String]) -> Option<PreparedSession> {
        let _span = self.metrics.session_prepare_micros.start();
        let image = self.session_image(target);
        let max_instructions = self.max_instructions;
        let prep = if target == "bind-lite" {
            let net = NetHandle::default();
            let controller = networked_controller(net.clone());
            let mut workload = BindWorkload::typical(net);
            let config = TestConfig {
                args: vec![workload.request_count().to_string()],
                record_coverage: true,
                max_instructions,
                ..TestConfig::default()
            };
            controller.prepare_session(image, self.injectable(), &mut workload, &config)
        } else {
            let controller = standard_controller();
            let config = TestConfig {
                args: args.to_vec(),
                record_coverage: true,
                max_instructions,
                ..TestConfig::default()
            };
            controller.prepare_session(image, self.injectable(), &mut FsSetupWorkload, &config)
        };
        prep.fork_budget(max_instructions)?;
        let mut machine = prep.machine;
        if !machine.rng_is_pristine() {
            return None;
        }
        let prefix_coverage = machine.take_coverage();
        // `fork_budget` left only two prefix exits standing: paused at the
        // first injectable call (the normal case), or a clean exit meaning
        // the workload has no injectable calls at all — its trace is empty
        // and complete, and forks of the finished machine replay the exit.
        let mut trace = Vec::new();
        let mut first_depth = BTreeMap::new();
        let complete = match prep.prefix_exit {
            RunExit::Paused => {
                let paused = prep.paused_at.clone().expect("paused prefix names a call");
                first_depth.insert(paused.clone(), 1);
                trace.push(paused);
                false
            }
            _ => true,
        };
        let snapshot = machine.snapshot();
        let bytes = snapshot.resident_bytes();
        self.snapshot_budget
            .used
            .fetch_add(bytes, Ordering::Relaxed);
        self.metrics.tree_nodes_materialized.inc();
        self.metrics
            .snapshot_resident_bytes_hw
            .set_max(self.snapshot_budget.used.load(Ordering::Relaxed));
        let root = SnapshotNode {
            depth: 1,
            parent_depth: 1,
            snapshot,
            post_coverage: Coverage::new(),
            bytes,
            last_use: 0,
        };
        Some(PreparedSession {
            prefix_coverage,
            max_instructions,
            budget: self.snapshot_budget.clone(),
            tree: Mutex::new(SnapshotTree {
                trace,
                first_depth,
                nodes: vec![root],
                complete,
                capped: false,
                deepening: false,
                wanted_depths: BTreeSet::new(),
                wanted_functions: BTreeSet::new(),
                ticks: 0,
            }),
            deepened: Condvar::new(),
        })
    }

    /// Fork the right tree node for a unit injecting `function`: the
    /// deepest resident snapshot certified to precede the workload's first
    /// interception of `function` (before that call every unit of the
    /// session behaves identically, whatever it injects — the engine
    /// charges trigger evaluations only against its own scenario's
    /// function).
    ///
    /// When no resident node sits at the target depth yet, the unit
    /// registers a *want* on the tree — an exact depth when the certified
    /// trace places the function, a discovery want when it does not — and
    /// then either:
    ///
    /// * **claims** the tree's single deepening pass
    ///   ([`StandardExecutor::deepen_shared`]) when none is running, or
    /// * **waits** (bounded by [`DEEPEN_WAIT_BOUND`]) for the in-flight
    ///   pass to materialize the want, instead of duplicating the same
    ///   certified walk — the pre-claims protocol re-ran the path and
    ///   discarded the loser's snapshot.
    ///
    /// A wait that times out falls back to the deepest resident ancestor:
    /// correct (the ancestor precedes the target call), just a shallower
    /// fork. Hit/miss accounting is by provenance: a fork is a miss only
    /// when this unit's own pass materialized the node it forks; nodes
    /// already resident — including ones another worker's pass or a batch
    /// prefetch produced while this unit waited — are hits.
    fn fork_for(&self, prepared: &PreparedSession, function: &str) -> (Machine, u64) {
        let _span = self.metrics.tree_fork_micros.start();
        let mut tree = prepared.tree.lock().unwrap();
        if self.max_session_depth <= 1 {
            self.metrics.tree_fork_hits.inc();
            self.metrics.fork_at_depth(&self.telemetry, 1);
            return fork_node(&mut tree, 0, prepared.max_instructions);
        }
        let mut waited = false;
        let mut give_up = false;
        let mut own_runs = 0usize;
        let mut own_inserted: Vec<usize> = Vec::new();
        loop {
            let discovery = tree.depth_of(function).is_none() && !tree.complete && !tree.capped;
            let target = tree
                .depth_of(function)
                .unwrap_or(usize::MAX)
                .min(self.max_session_depth);
            let index = tree.deepest_at_most(target);
            let needs_node =
                !discovery && tree.nodes[index].depth < target && target <= tree.trace.len();
            // `own_runs` bounds pathological trees whose wants keep failing
            // (a cap inside the certified region): after two of our own
            // passes we serve whatever is resident.
            if (!discovery && !needs_node) || give_up || own_runs >= 2 {
                let depth = tree.nodes[index].depth;
                if own_inserted.contains(&depth) {
                    self.metrics.tree_fork_misses.inc();
                } else {
                    self.metrics.tree_fork_hits.inc();
                }
                self.metrics.fork_at_depth(&self.telemetry, depth);
                return fork_node(&mut tree, index, prepared.max_instructions);
            }
            // Register the want so whichever pass runs — ours or the
            // in-flight claimant's — materializes it.
            if discovery {
                tree.wanted_functions.insert(function.to_string());
            } else {
                tree.wanted_depths.insert(target);
            }
            if tree.deepening {
                if !waited {
                    self.metrics.tree_deepen_waited.inc();
                    waited = true;
                }
                let (guard, timeout) = prepared
                    .deepened
                    .wait_timeout(tree, DEEPEN_WAIT_BOUND)
                    .unwrap();
                tree = guard;
                give_up = timeout.timed_out() && tree.deepening;
            } else {
                own_runs += 1;
                let (guard, inserted) = self.deepen_shared(prepared, tree, false);
                tree = guard;
                own_inserted.extend(inserted);
            }
        }
    }

    /// The tree's single claimed deepening pass: while wants are registered
    /// — exact depths to materialize, functions to discover — step the
    /// workload one injectable call at a time along the certified path
    /// (unseeded: deepening stays on the root seed's path, which is what
    /// the certified trace describes), snapshotting **every** wanted depth
    /// it passes. One walk therefore materializes all intermediate nodes a
    /// batch needs, instead of one endpoint per run; wants registered by
    /// other workers *while the pass runs* are absorbed into the same walk.
    ///
    /// Each step's endpoint decides the tree's fate exactly as before:
    /// paused + pristine RNG certifies the next call into the trace;
    /// exited + pristine marks the trace complete; anything else
    /// (randomness consumed, crash, block, budget) caps the tree — resident
    /// nodes stay valid, and remaining wants within the already-certified
    /// trace are still served by re-forking the deepest resident ancestor.
    ///
    /// The tree mutex is released around every step (the forked machine is
    /// self-contained), so waiters and new want registrations interleave
    /// with the walk; the claim flag keeps passes mutually exclusive, which
    /// is what guarantees `tree_deepen_discarded` stays 0. Returns the
    /// re-acquired guard and the depths this pass materialized.
    fn deepen_shared<'a>(
        &self,
        prepared: &'a PreparedSession,
        mut tree: MutexGuard<'a, SnapshotTree>,
        prefetch: bool,
    ) -> (MutexGuard<'a, SnapshotTree>, Vec<usize>) {
        let _span = self.metrics.tree_deepen_micros.start();
        debug_assert!(!tree.deepening, "claims are mutually exclusive");
        tree.deepening = true;
        self.metrics.tree_deepen_claimed.inc();
        if prefetch {
            self.metrics.tree_prefetch_runs.inc();
        }
        let mut inserted = Vec::new();
        // The walk: a machine paused before injectable call `at`, plus the
        // depth of the resident node its accumulated coverage extends
        // (`cov_parent` — coverage is drained at every materialized node,
        // so each node stores only its increment).
        let mut stepper: Option<(Machine, usize, usize)> = None;
        loop {
            tree.normalize_wants(self.max_session_depth);
            let depth_goal = tree.wanted_depths.iter().next().copied();
            let discovering = !tree.wanted_functions.is_empty();
            if depth_goal.is_none() && !discovering {
                break;
            }
            let bound = depth_goal.unwrap_or(usize::MAX);
            // (Re-)position the walk: fork the deepest resident ancestor
            // when no machine is in flight, when a new shallower want
            // arrived behind the machine, or when a resident node now sits
            // deeper than the machine (forking it skips re-stepping).
            let index = tree.deepest_at_most(bound);
            let node_depth = tree.nodes[index].depth;
            let refork = match &stepper {
                Some((_, at, _)) => *at > bound || node_depth > *at,
                None => true,
            };
            if refork {
                let (machine, _) = fork_node(&mut tree, index, prepared.max_instructions);
                stepper = Some((machine, node_depth, node_depth));
            }
            let (mut machine, at, cov_parent) = stepper.take().expect("walk was positioned");
            if depth_goal == Some(at) {
                // Paused exactly at a wanted depth: record it.
                tree.wanted_depths.remove(&at);
                if tree.resident(at) {
                    // Unreachable under the claim (normalize_wants drops
                    // resident wants and only this pass inserts); kept as
                    // a counted safety net so a regression is visible.
                    self.metrics.tree_deepen_discarded.inc();
                    self.telemetry.note(
                        "snapshot-tree",
                        format!("claimed deepening pass found depth {at} already resident"),
                    );
                    stepper = Some((machine, at, cov_parent));
                } else {
                    let post_coverage = machine.take_coverage();
                    let snapshot = machine.snapshot();
                    let bytes = snapshot.resident_bytes();
                    let last_use = tree.ticks;
                    self.insert_node(
                        prepared,
                        &mut tree,
                        SnapshotNode {
                            depth: at,
                            parent_depth: cov_parent,
                            snapshot,
                            post_coverage,
                            bytes,
                            last_use,
                        },
                    );
                    self.metrics.tree_nodes_materialized.inc();
                    if prefetch {
                        self.metrics.tree_prefetch_nodes.inc();
                    }
                    inserted.push(at);
                    // Keep walking only while the coverage lineage stays
                    // resident: a starved budget can evict the node on
                    // insertion, and chaining the next increment to the
                    // hole would lose the evicted interval's coverage.
                    stepper = tree.resident(at).then_some((machine, at, at));
                }
                prepared.deepened.notify_all();
                continue;
            }
            // Advance one injectable call. The fork is self-contained —
            // evictions or extensions of the tree while the step runs
            // cannot invalidate it — so the lock is dropped meanwhile.
            drop(tree);
            let prep = standard_controller().step_session(
                machine,
                self.injectable().iter().cloned(),
                prepared.max_instructions,
            );
            let machine = prep.machine;
            tree = prepared.tree.lock().unwrap();
            if !machine.rng_is_pristine() {
                tree.capped = true;
                if let Some(goal) = depth_goal {
                    // Consume the want we were chasing so the pass (and
                    // its waiters) cannot spin on an unmaterializable
                    // depth; the unit forks the deepest resident ancestor.
                    tree.wanted_depths.remove(&goal);
                }
                continue;
            }
            match prep.prefix_exit {
                RunExit::Paused => {
                    tree.record_calls(at, &prep.forwarded);
                    let paused = at + prep.forwarded.len();
                    tree.record_calls(
                        paused,
                        std::slice::from_ref(
                            prep.paused_at.as_ref().expect("paused step names a call"),
                        ),
                    );
                    stepper = Some((machine, paused, cov_parent));
                }
                RunExit::Exited(_) => {
                    tree.record_calls(at, &prep.forwarded);
                    tree.complete = true;
                }
                RunExit::Fault(_) | RunExit::Blocked | RunExit::Budget => {
                    tree.capped = true;
                    if let Some(goal) = depth_goal {
                        tree.wanted_depths.remove(&goal);
                    }
                }
            }
        }
        tree.deepening = false;
        prepared.deepened.notify_all();
        (tree, inserted)
    }

    /// Warm one session's snapshot tree for a planned batch: register every
    /// batch function's needed depth (or a discovery want when the trace
    /// does not place it yet) and run one claimed deepening pass that
    /// materializes all of them in a single walk. When another worker
    /// already holds the claim, its in-flight pass absorbs the registered
    /// wants and nothing more is needed here.
    fn prefetch_session(&self, target: &str, args: &[String], functions: &BTreeSet<String>) {
        let Some(prepared) = self.prepared_session(target, args) else {
            return;
        };
        let mut tree = prepared.tree.lock().unwrap();
        for function in functions {
            match tree.depth_of(function) {
                Some(depth) => {
                    let depth = depth.min(self.max_session_depth);
                    if !tree.resident(depth) {
                        tree.wanted_depths.insert(depth);
                    }
                }
                None => {
                    if !tree.complete && !tree.capped {
                        tree.wanted_functions.insert(function.clone());
                    }
                }
            }
        }
        if tree.deepening || (tree.wanted_depths.is_empty() && tree.wanted_functions.is_empty()) {
            return;
        }
        let (tree, _) = self.deepen_shared(&prepared, tree, true);
        drop(tree);
    }

    /// Insert a freshly certified node (kept in ascending depth order) and
    /// charge its bytes, then evict this tree's least-recently-used
    /// non-root nodes while the executor-wide budget is exceeded. Eviction
    /// is local to the inserting tree — other trees trim themselves on
    /// their next insertion — which approximates a global LRU without
    /// cross-session locking.
    fn insert_node(&self, prepared: &PreparedSession, tree: &mut SnapshotTree, node: SnapshotNode) {
        let budget = &prepared.budget;
        budget.used.fetch_add(node.bytes, Ordering::Relaxed);
        self.metrics
            .snapshot_resident_bytes_hw
            .set_max(budget.used.load(Ordering::Relaxed));
        let pos = tree
            .nodes
            .iter()
            .position(|n| n.depth > node.depth)
            .unwrap_or(tree.nodes.len());
        tree.nodes.insert(pos, node);
        while budget.used.load(Ordering::Relaxed) > budget.cap.load(Ordering::Relaxed)
            && tree.nodes.len() > 1
        {
            let victim = tree.nodes[1..]
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| (n.last_use, n.depth))
                .map(|(i, _)| i + 1)
                .expect("non-root nodes exist");
            let evicted = tree.nodes.remove(victim);
            budget.used.fetch_sub(evicted.bytes, Ordering::Relaxed);
            self.metrics.tree_nodes_evicted.inc();
            // Re-parent the victim's children, folding its coverage
            // increment into theirs so every surviving node's ancestor
            // chain still reconstructs the full prefix coverage.
            for node in &mut tree.nodes[1..] {
                if node.parent_depth == evicted.depth {
                    node.parent_depth = evicted.parent_depth;
                    node.post_coverage.merge(&evicted.post_coverage);
                }
            }
        }
    }

    /// The memoized session of a `(target, workload)` pair, or `None` when
    /// the pair cannot snapshot (the multi-process bft-lite cluster, or a
    /// prefix that consumed randomness). The refusal is memoized too.
    fn prepared_session(&self, target: &str, args: &[String]) -> Option<Arc<PreparedSession>> {
        if target == "bft-lite" || !self.targets.contains_key(target) {
            return None;
        }
        let slot = {
            let mut prepared = self.prepared.lock().unwrap();
            prepared
                .entry((target.to_string(), args.to_vec()))
                .or_default()
                .clone()
        };
        slot.get_or_init(|| self.build_session(target, args).map(Arc::new))
            .clone()
    }

    /// Number of `(target, workload)` sessions prepared so far.
    pub fn sessions_prepared(&self) -> usize {
        self.prepared
            .lock()
            .unwrap()
            .values()
            .filter(|slot| matches!(slot.get(), Some(Some(_))))
            .count()
    }

    /// Iterate over every prepared session.
    fn for_each_session(&self, mut f: impl FnMut(&PreparedSession)) {
        let slots: Vec<SessionSlot> = self.prepared.lock().unwrap().values().cloned().collect();
        for slot in slots {
            if let Some(Some(prepared)) = slot.get() {
                f(prepared);
            }
        }
    }

    /// Total resident snapshot nodes across every prepared session (each
    /// session contributes at least its root).
    pub fn snapshot_nodes(&self) -> usize {
        let mut total = 0;
        self.for_each_session(|p| total += p.tree.lock().unwrap().nodes.len());
        total
    }

    /// The resident node depths of every prepared session, in ascending
    /// depth order per session — for tests asserting tree shape (e.g. that
    /// concurrent deepening never materializes duplicate depths).
    pub fn session_node_depths(&self) -> Vec<Vec<usize>> {
        let mut all = Vec::new();
        self.for_each_session(|p| {
            let tree = p.tree.lock().unwrap();
            all.push(tree.nodes.iter().map(|n| n.depth).collect());
        });
        all
    }

    /// Deepest injectable-call index any resident snapshot sits at.
    pub fn max_session_node_depth(&self) -> usize {
        let mut max = 0;
        self.for_each_session(|p| {
            let tree = p.tree.lock().unwrap();
            max = max.max(tree.nodes.last().map(|n| n.depth).unwrap_or(0));
        });
        max
    }

    /// The full prefix coverage at the node a unit injecting `function`
    /// would fork in this session: the root prefix's coverage merged with
    /// each tree node's increment down the fork point's ancestor chain.
    /// `None` when the pair has no prepared session.
    pub fn session_path_coverage(
        &self,
        target: &str,
        args: &[String],
        function: &str,
    ) -> Option<Coverage> {
        let prepared = self.prepared_session(target, args)?;
        let tree = prepared.tree.lock().unwrap();
        let target_depth = tree
            .depth_of(function)
            .unwrap_or(usize::MAX)
            .min(self.max_session_depth);
        let mut coverage = prepared.prefix_coverage.clone();
        let mut index = tree.deepest_at_most(target_depth);
        loop {
            let node = &tree.nodes[index];
            coverage.merge(&node.post_coverage);
            if index == 0 {
                break;
            }
            index = tree
                .nodes
                .iter()
                .position(|n| n.depth == node.parent_depth)
                .expect("ancestor chain is resident");
        }
        Some(coverage)
    }

    /// Run each single-process target's default suite once with no
    /// injections, recording coverage, and annotate the space with which
    /// call sites the baseline reaches — the signal `InjectionGuided`
    /// prunes on. (Cluster targets are left unannotated.)
    ///
    /// The baseline reuses the prepared session snapshots: each workload's
    /// shared prefix (which already recorded coverage) is forked and run to
    /// completion with no hooks, instead of re-running the whole workload
    /// from scratch — and the sessions prepared here are the same ones a
    /// subsequent snapshot-backend campaign forks its units from.
    ///
    /// `seed` should be the campaign's base seed: each workload's fork is
    /// reseeded with a [`derive_seed`]-mixed per-workload seed and the
    /// coverage is merged, so the baseline samples the same mixed-seed
    /// family campaign units run under instead of a fixed out-of-band seed.
    /// This is a heuristic, not a guarantee: units of a point run under
    /// per-unit derived seeds, and profiling each of those would cost one
    /// baseline run per unit, so a workload whose control flow is extremely
    /// seed-sensitive can still be annotated unreached on a site some unit
    /// seed would reach.
    pub fn annotate_baseline_reachability(&self, space: &mut FaultSpace, seed: u64) {
        for target in space.targets() {
            if target == "bft-lite" {
                continue; // cluster target: left unannotated
            }
            let Some(exe) = self.target(&target) else {
                continue;
            };
            let mut baseline = Coverage::new();
            for (workload, args) in default_test_suite(&target).into_iter().enumerate() {
                let workload_seed = derive_seed(seed, workload as u64);
                match self.prepared_session(&target, &args) {
                    Some(prepared) => {
                        let (mut machine, budget_left) = prepared.root_fork();
                        machine.reseed(workload_seed);
                        machine.run(&mut NoHooks, budget_left);
                        baseline.merge(&prepared.prefix_coverage);
                        baseline.merge(&machine.coverage);
                    }
                    // A pair that refuses to snapshot still contributes its
                    // baseline coverage the pre-session way: one full
                    // no-fault run.
                    None => {
                        let report = run_target_with_budget(
                            &target,
                            exe,
                            &lfi_core::Scenario::new(),
                            args,
                            true,
                            workload_seed,
                            self.max_instructions,
                        );
                        baseline.merge(&report.coverage);
                    }
                }
            }
            space.annotate_reached(&target, &baseline);
        }
    }

    fn resolve_caller(&self, module: &str, offset: u64) -> Option<String> {
        self.targets
            .get(module)
            .and_then(|m| m.containing_function(offset))
            .map(|e| e.name.clone())
    }

    fn crash_info(&self, fault: &Fault) -> CrashInfo {
        CrashInfo {
            module: fault.module.clone(),
            offset: fault.offset,
            description: fault.to_string(),
            in_function: self.resolve_caller(&fault.module, fault.offset),
            backtrace: fault
                .backtrace
                .iter()
                .filter_map(|frame| frame.function.clone())
                .collect(),
        }
    }

    /// The call sites where `function` was actually failed, per the
    /// injection log — the same accounting for fresh and forked runs.
    fn injected_sites(&self, log: &InjectionLog, function: &str) -> Vec<InjectedSite> {
        log.records
            .iter()
            .filter(|r| r.function == function)
            .map(|r| InjectedSite {
                module: r.call_site.0.clone(),
                offset: r.call_site.1,
                caller: self.resolve_caller(&r.call_site.0, r.call_site.1),
            })
            .collect()
    }

    fn execute_single(&self, exe: &Module, unit: &WorkUnit) -> Execution {
        let report = run_target_with_budget(
            &unit.point.target,
            exe,
            &unit.scenario,
            unit.args.clone(),
            false,
            unit.seed,
            self.max_instructions,
        );
        let outcome = match report.outcome {
            TestOutcome::Passed => OutcomeKind::Passed,
            TestOutcome::CleanFailure(code) => OutcomeKind::CleanFailure(code),
            TestOutcome::Crashed(_) => OutcomeKind::Crashed,
            TestOutcome::Hung => OutcomeKind::Hung,
        };
        Execution {
            outcome,
            injections: report.injections.injection_count() as u64,
            injected_sites: self.injected_sites(&report.injections, &unit.point.function),
            crashes: report
                .fault
                .as_ref()
                .map(|f| vec![self.crash_info(f)])
                .unwrap_or_default(),
            virtual_time: report.virtual_time,
        }
    }

    fn execute_cluster(&self, unit: &WorkUnit) -> Execution {
        let result = run_bft_cluster(&BftClusterConfig {
            requests: self.bft_requests,
            scenario: unit.scenario.clone(),
            ..BftClusterConfig::default()
        });
        let crashes: Vec<CrashInfo> = result
            .crashes
            .iter()
            .map(|(_node, fault)| self.crash_info(fault))
            .collect();
        // No crash but lost requests means the cluster stalled — a
        // liveness/availability failure, not a pass.
        let outcome = if !crashes.is_empty() {
            OutcomeKind::Crashed
        } else if result.completed < self.bft_requests as i64 {
            OutcomeKind::Hung
        } else {
            OutcomeKind::Passed
        };
        Execution {
            outcome,
            injections: result.injections,
            // The cluster harness does not expose per-node injection logs;
            // the fault point itself is the injected site.
            injected_sites: vec![InjectedSite {
                module: unit.point.target.clone(),
                offset: unit.point.offset,
                caller: unit.point.caller.clone(),
            }],
            crashes,
            virtual_time: result.virtual_time,
        }
    }
}

impl Executor for StandardExecutor {
    fn workloads(&self, target: &str) -> Vec<Vec<String>> {
        default_test_suite(target)
    }

    fn prepare(&self, target: &str, args: &[String]) -> Option<Session> {
        self.prepared_session(target, args).map(Session::new)
    }

    fn prefetch_batch(&self, units: &[PrefetchKey], jobs: usize) {
        if self.max_session_depth <= 1 {
            return; // flat sessions have nothing beyond the root to warm
        }
        let _span = self.metrics.tree_prefetch_micros.start();
        let mut groups: BTreeMap<SessionKey, BTreeSet<String>> = BTreeMap::new();
        for key in units {
            // Pairs that cannot snapshot (the cluster target, unknown
            // targets) have no session to warm; unsnapshottable prefixes
            // are filtered by `prefetch_session`'s memoized refusal.
            if key.target == "bft-lite" || !self.targets.contains_key(&key.target) {
                continue;
            }
            groups
                .entry((key.target.clone(), key.args.clone()))
                .or_default()
                .insert(key.function.clone());
        }
        if groups.is_empty() {
            return;
        }
        let groups: Vec<(SessionKey, BTreeSet<String>)> = groups.into_iter().collect();
        let workers = jobs.max(1).min(groups.len());
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let next = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(((target, args), functions)) = groups.get(next) else {
                        break;
                    };
                    self.prefetch_session(target, args, functions);
                });
            }
        });
    }

    fn first_call_depth(&self, target: &str, args: &[String], function: &str) -> Option<usize> {
        // Peek the memoized session without building one: ordering is a
        // hint, and a session worth preparing is prepared by the prefetch
        // (or the first unit) anyway.
        let slot = self
            .prepared
            .lock()
            .unwrap()
            .get(&(target.to_string(), args.to_vec()))
            .cloned()?;
        let prepared = slot.get()?.as_ref()?;
        let depth = prepared.tree.lock().unwrap().depth_of(function)?;
        Some(depth.min(self.max_session_depth))
    }

    fn set_snapshot_budget(&self, bytes: u64) {
        self.snapshot_budget.cap.store(bytes, Ordering::Relaxed);
    }

    fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    fn snapshot_bytes(&self) -> u64 {
        self.snapshot_budget.used.load(Ordering::Relaxed)
    }

    fn execute_from(&self, session: &Session, unit: &WorkUnit) -> Execution {
        let prepared = session
            .downcast_ref::<Arc<PreparedSession>>()
            .expect("session prepared by StandardExecutor");
        // Fork the deepest snapshot certified to precede the workload's
        // first interception of the unit's function. The certified path is
        // RNG-free, so reseeding the fork here leaves the unit's stream in
        // exactly the state a fresh run's would be at the same point.
        let (mut machine, budget_left) = self.fork_for(prepared, &unit.point.function);
        machine.reseed(unit.seed);
        machine.set_record_coverage(false);
        // Mirror the fresh path's engine setup exactly: the stock registry
        // and the trigger-evaluation cost both come from the same defaults
        // `run_target`'s controller uses, so the two backends cannot drift
        // apart if either default changes.
        let mut engine =
            InjectionEngine::new(unit.scenario.clone()).expect("unit scenario must compile");
        engine.trigger_eval_cost = TestConfig::default().trigger_eval_cost;
        let exit = machine.run(&mut engine, budget_left);
        let (outcome, crashes) = match &exit {
            RunExit::Exited(0) => (OutcomeKind::Passed, Vec::new()),
            RunExit::Exited(code) => (OutcomeKind::CleanFailure(*code), Vec::new()),
            RunExit::Fault(fault) => (OutcomeKind::Crashed, vec![self.crash_info(fault)]),
            RunExit::Blocked | RunExit::Budget | RunExit::Paused => (OutcomeKind::Hung, Vec::new()),
        };
        Execution {
            outcome,
            injections: engine.log.injection_count() as u64,
            injected_sites: self.injected_sites(&engine.log, &unit.point.function),
            crashes,
            virtual_time: machine.clock(),
        }
    }

    fn execute(&self, unit: &WorkUnit) -> Execution {
        if unit.point.target == "bft-lite" {
            return self.execute_cluster(unit);
        }
        let exe = self
            .target(&unit.point.target)
            .unwrap_or_else(|| panic!("unknown target {}", unit.point.target));
        self.execute_single(exe, unit)
    }
}

#[cfg(test)]
mod tests {
    use lfi_targets::all_targets;

    use super::*;

    #[test]
    fn suites_cover_every_runnable_target() {
        for (name, _) in all_targets() {
            assert!(
                !default_test_suite(name).is_empty(),
                "{name} needs a default suite"
            );
        }
    }

    #[test]
    fn subset_executors_only_load_requested_targets() {
        let executor = StandardExecutor::new(&["git-lite"]);
        assert!(executor.target("git-lite").is_some());
        assert!(executor.target("httpd-lite").is_none());
        assert!(
            executor.injectable.get().is_none(),
            "the failing-function union is not computed until a session is prepared"
        );
        assert!(
            !executor.injectable().is_empty(),
            "session images need the profiled failing-function union"
        );
    }

    #[test]
    fn sessions_are_memoized_per_target_and_workload() {
        let executor = StandardExecutor::new(&["git-lite", "bft-lite"]);
        assert!(
            executor.prepare("bft-lite", &[]).is_none(),
            "cluster targets cannot snapshot"
        );
        let args = vec!["init".to_string()];
        let first = executor.prepared_session("git-lite", &args).unwrap();
        let second = executor.prepared_session("git-lite", &args).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same pair, same session");
        assert_eq!(executor.sessions_prepared(), 1);
        // A different workload of the same target is its own session, but
        // shares the loaded image.
        executor
            .prepared_session("git-lite", &["log".to_string()])
            .unwrap();
        assert_eq!(executor.sessions_prepared(), 2);
        assert_eq!(executor.images.lock().unwrap().len(), 1);
    }
}
