//! A ready-made [`Executor`] for the evaluation targets.
//!
//! [`StandardExecutor`] knows how to run every `*-lite` target the way the
//! paper's experiments do: the single-process programs under their default
//! test suites (bind-lite behind its networked client workload), and
//! bft-lite as a full 4-replica cluster. Each `execute` call builds a fresh
//! controller and VM, so the executor is safe to share across workers.

use std::collections::BTreeMap;

use lfi_core::{TestConfig, TestOutcome, TestReport};
use lfi_obj::Module;
use lfi_profiler::FaultProfile;
use lfi_targets::{
    all_targets, networked_controller, run_bft_cluster, standard_controller, BftClusterConfig,
    BindWorkload, FsSetupWorkload,
};
use lfi_vm::{Coverage, Fault, NetHandle};

use crate::engine::{
    derive_seed, CrashInfo, Execution, Executor, InjectedSite, OutcomeKind, WorkUnit,
};
use crate::space::FaultSpace;

/// The default per-target workloads (program arguments per run) — the
/// "default test suite" each system ships with in the reproduction.
pub fn default_test_suite(target: &str) -> Vec<Vec<String>> {
    match target {
        "git-lite" => vec![
            vec!["init".into()],
            vec!["add".into(), "/repo/README.md".into()],
            vec!["add".into(), "/repo/main.c".into()],
            vec!["commit".into(), "initial".into()],
            vec!["log".into()],
            vec!["diff".into(), "3".into(), "4".into()],
            vec!["check-head".into()],
        ],
        "db-lite" => vec![
            vec!["bootstrap".into()],
            vec!["oltp".into(), "30".into(), "1".into()],
            vec!["oltp".into(), "30".into(), "0".into()],
            vec!["merge-big".into(), "2".into()],
        ],
        "bind-lite" => vec![vec!["4".into()]],
        "httpd-lite" => vec![vec!["50".into(), "1".into()], vec!["50".into(), "2".into()]],
        // The cluster target runs once per fault point; arguments are
        // supplied by the cluster harness.
        "bft-lite" => vec![vec![]],
        other => panic!("no default test suite for {other}"),
    }
}

/// Run one workload of a single-process target under a scenario on a fresh
/// VM, wiring up the right controller and workload (bind-lite runs behind
/// its networked client workload, which also dictates the arguments).
/// Shared by the campaign executor and the bench experiment harnesses.
pub fn run_target(
    target: &str,
    exe: &Module,
    scenario: &lfi_core::Scenario,
    args: Vec<String>,
    record_coverage: bool,
    seed: u64,
) -> TestReport {
    if target == "bind-lite" {
        let net = NetHandle::default();
        let controller = networked_controller(net.clone());
        let mut workload = BindWorkload::typical(net);
        let config = TestConfig {
            args: vec![workload.request_count().to_string()],
            record_coverage,
            seed,
            ..TestConfig::default()
        };
        controller
            .run_test(exe, scenario, &mut workload, &config)
            .expect("bind-lite run")
    } else {
        let controller = standard_controller();
        let config = TestConfig {
            args,
            record_coverage,
            seed,
            ..TestConfig::default()
        };
        controller
            .run_test(exe, scenario, &mut FsSetupWorkload, &config)
            .expect("target run")
    }
}

/// Executes campaign work units against the stock `*-lite` targets.
pub struct StandardExecutor {
    targets: BTreeMap<String, Module>,
    /// Client requests issued per bft-lite cluster run.
    pub bft_requests: usize,
}

impl Default for StandardExecutor {
    fn default() -> Self {
        StandardExecutor::new()
    }
}

impl StandardExecutor {
    /// An executor over every stock target.
    pub fn new() -> StandardExecutor {
        StandardExecutor {
            targets: all_targets()
                .into_iter()
                .map(|(name, module)| (name.to_string(), module))
                .collect(),
            bft_requests: 4,
        }
    }

    /// The module of one target.
    pub fn target(&self, name: &str) -> Option<&Module> {
        self.targets.get(name)
    }

    /// Enumerate the fault space of the given targets (every call site of
    /// every profiled failing function), annotated with the call-site
    /// analyzer's classification.
    pub fn fault_space(&self, targets: &[&str], profile: &FaultProfile) -> FaultSpace {
        let controller = standard_controller();
        let mut space = FaultSpace::new();
        for name in targets {
            let exe = self
                .target(name)
                .unwrap_or_else(|| panic!("unknown target {name}"));
            space.add_target(name, exe, profile);
            space.annotate_analysis(name, &controller.analyze(exe));
        }
        space
    }

    /// Run each single-process target's default suite once with no
    /// injections, recording coverage, and annotate the space with which
    /// call sites the baseline reaches — the signal `InjectionGuided`
    /// prunes on. (Cluster targets are left unannotated.)
    ///
    /// `seed` should be the campaign's base seed: each workload is profiled
    /// under a [`derive_seed`]-mixed per-workload seed and the coverage is
    /// merged, so the baseline samples the same mixed-seed family campaign
    /// units run under instead of a fixed out-of-band seed. This is a
    /// heuristic, not a guarantee: units of a point run under per-unit
    /// derived seeds, and profiling each of those would cost one baseline
    /// run per unit, so a workload whose control flow is extremely
    /// seed-sensitive can still be annotated unreached on a site some unit
    /// seed would reach.
    pub fn annotate_baseline_reachability(&self, space: &mut FaultSpace, seed: u64) {
        for target in space.targets() {
            if target == "bft-lite" {
                continue;
            }
            let Some(exe) = self.target(&target) else {
                continue;
            };
            let mut baseline = Coverage::new();
            let no_faults = lfi_core::Scenario::new();
            for (workload, args) in default_test_suite(&target).into_iter().enumerate() {
                let report = run_target(
                    &target,
                    exe,
                    &no_faults,
                    args,
                    true,
                    derive_seed(seed, workload as u64),
                );
                baseline.merge(&report.coverage);
            }
            space.annotate_reached(&target, &baseline);
        }
    }

    fn resolve_caller(&self, module: &str, offset: u64) -> Option<String> {
        self.targets
            .get(module)
            .and_then(|m| m.containing_function(offset))
            .map(|e| e.name.clone())
    }

    fn crash_info(&self, fault: &Fault) -> CrashInfo {
        CrashInfo {
            module: fault.module.clone(),
            offset: fault.offset,
            description: fault.to_string(),
            in_function: self.resolve_caller(&fault.module, fault.offset),
            backtrace: fault
                .backtrace
                .iter()
                .filter_map(|frame| frame.function.clone())
                .collect(),
        }
    }

    fn execute_single(&self, exe: &Module, unit: &WorkUnit) -> Execution {
        let report = run_target(
            &unit.point.target,
            exe,
            &unit.scenario,
            unit.args.clone(),
            false,
            unit.seed,
        );
        let outcome = match report.outcome {
            TestOutcome::Passed => OutcomeKind::Passed,
            TestOutcome::CleanFailure(code) => OutcomeKind::CleanFailure(code),
            TestOutcome::Crashed(_) => OutcomeKind::Crashed,
            TestOutcome::Hung => OutcomeKind::Hung,
        };
        let injected_sites = report
            .injections
            .records
            .iter()
            .filter(|r| r.function == unit.point.function)
            .map(|r| InjectedSite {
                module: r.call_site.0.clone(),
                offset: r.call_site.1,
                caller: self.resolve_caller(&r.call_site.0, r.call_site.1),
            })
            .collect();
        Execution {
            outcome,
            injections: report.injections.injection_count() as u64,
            injected_sites,
            crashes: report
                .fault
                .as_ref()
                .map(|f| vec![self.crash_info(f)])
                .unwrap_or_default(),
            virtual_time: report.virtual_time,
        }
    }

    fn execute_cluster(&self, unit: &WorkUnit) -> Execution {
        let result = run_bft_cluster(&BftClusterConfig {
            requests: self.bft_requests,
            scenario: unit.scenario.clone(),
            ..BftClusterConfig::default()
        });
        let crashes: Vec<CrashInfo> = result
            .crashes
            .iter()
            .map(|(_node, fault)| self.crash_info(fault))
            .collect();
        // No crash but lost requests means the cluster stalled — a
        // liveness/availability failure, not a pass.
        let outcome = if !crashes.is_empty() {
            OutcomeKind::Crashed
        } else if result.completed < self.bft_requests as i64 {
            OutcomeKind::Hung
        } else {
            OutcomeKind::Passed
        };
        Execution {
            outcome,
            injections: result.injections,
            // The cluster harness does not expose per-node injection logs;
            // the fault point itself is the injected site.
            injected_sites: vec![InjectedSite {
                module: unit.point.target.clone(),
                offset: unit.point.offset,
                caller: unit.point.caller.clone(),
            }],
            crashes,
            virtual_time: result.virtual_time,
        }
    }
}

impl Executor for StandardExecutor {
    fn workloads(&self, target: &str) -> Vec<Vec<String>> {
        default_test_suite(target)
    }

    fn execute(&self, unit: &WorkUnit) -> Execution {
        if unit.point.target == "bft-lite" {
            return self.execute_cluster(unit);
        }
        let exe = self
            .target(&unit.point.target)
            .unwrap_or_else(|| panic!("unknown target {}", unit.point.target));
        self.execute_single(exe, unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_cover_every_runnable_target() {
        for (name, _) in all_targets() {
            assert!(
                !default_test_suite(name).is_empty(),
                "{name} needs a default suite"
            );
        }
    }
}
