//! Fault-injection campaigns: parallel exploration of a target's fault
//! space with pluggable, feedback-driven search strategies.
//!
//! The paper's workflow — profile the library, analyze call sites, generate
//! scenarios, run, triage — is a *loop over a fault space*: hundreds of
//! `(call site, library function, error case)` points per target. This
//! crate turns that loop into a subsystem:
//!
//! * [`space`] — enumerate the fault space from a [`FaultProfile`] and the
//!   target binary, and annotate it with analyzer classifications and
//!   baseline reachability;
//! * [`strategy`] — schedule what to explore, batch by batch:
//!   [`Exhaustive`], seed-deterministic [`RandomSample`], and
//!   [`InjectionGuided`] (prune unreached call sites, explore
//!   analyzer-flagged unchecked sites first — the paper's accuracy insight
//!   as a search policy);
//! * [`adaptive`] — [`CoverageAdaptive`], the guided ordering made
//!   reactive: between batches it escalates fault points near observed
//!   crash signatures and deprioritizes points whose caller neighborhood
//!   keeps passing;
//! * [`history`] — the [`CampaignHistory`] feedback channel strategies read
//!   between batches;
//! * [`engine`] — expand each batch into work units with **canonical ids**
//!   (stable positions in the space × workload expansion) and drain them on
//!   a parallel worker pool, under one of two [`ExecBackend`]s: a fresh VM
//!   per unit, or **snapshot-fork** — the workload prefix up to the first
//!   injectable library call runs once per `(target, workload)` pair and
//!   every unit forks from the captured VM snapshot, with identical
//!   results either way;
//! * [`triage`] — deduplicate failures into crash signatures, so the report
//!   lists bugs, not runs;
//! * [`state`] — persist completed units as JSON and resume interrupted
//!   campaigns; state is tagged `fingerprint@plan-hash#shard`, so
//!   re-annotating, re-profiling, editing a workload suite, or changing
//!   the shard spec invalidates a checkpoint instead of misapplying it;
//! * [`builder`] — the fluent [`CampaignBuilder`] → [`CampaignDriver`]
//!   orchestration API: strategy, backend, jobs, seed, shard, event sink,
//!   and per-batch checkpointing in one chain;
//! * [`shard`] — [`ShardSpec`] splits one campaign across processes or
//!   machines (round-robin over fault points; shard identity is part of
//!   the checkpoint tag), and [`CampaignReport::merge`] recombines the
//!   per-shard [`ShardOutcome`]s into a report record- and
//!   triage-identical to the unsharded run;
//! * [`control`] — the supervisor control plane: unit-range [`Lease`]s
//!   (a contiguous fault-point slice, finer than a shard, with
//!   range-keyed checkpoint tags so a reassigned lease resumes the dead
//!   worker's progress), typed [`ControlMessage`]s with the same total
//!   JSONL wire codec as events, and
//!   [`CampaignReport::merge_leases`] recombining lease outcomes that
//!   tile the space;
//! * [`events`] — typed [`CampaignEvent`]s streamed through an
//!   [`EventSink`] while the campaign runs, for progress bars, bench
//!   harnesses, and cross-machine supervisors; every event has a total
//!   JSON wire format, and [`JsonlSink`] streams it line-by-line to disk
//!   for out-of-process tails (the `campaign_status` bin);
//! * [`standard`] — a ready-made [`Executor`] for the stock `*-lite`
//!   evaluation targets.
//!
//! ```
//! use lfi_campaign::{Campaign, CoverageAdaptive, StandardExecutor};
//! use lfi_targets::standard_controller;
//!
//! let executor = StandardExecutor::new(&["git-lite"]);
//! let profile = standard_controller().profile_libraries();
//! let mut space = executor.fault_space(&["git-lite"], &profile);
//! space.retain(|p| p.function == "opendir");
//! executor.annotate_baseline_reachability(&mut space, 7);
//!
//! let driver = Campaign::builder(space, &executor)
//!     .strategy(CoverageAdaptive::default())
//!     .jobs(2)
//!     .build();
//! let outcome = driver.run_to_completion();
//! assert!(outcome.report.triage.distinct_crashes() > 0); // the git-readdir-null bug
//! ```

pub mod adaptive;
pub mod builder;
pub mod control;
pub mod engine;
pub mod events;
pub mod history;
pub mod shard;
pub mod space;
pub mod standard;
pub mod state;
pub mod strategy;
pub mod triage;

pub use adaptive::CoverageAdaptive;
pub use builder::{CampaignBuilder, CampaignDriver};
pub use control::{ControlMessage, Lease, LeaseError, LeaseMergeError, LeaseOutcome};
pub use engine::{
    derive_seed, Campaign, CampaignConfig, CrashInfo, ExecBackend, Execution, Executor,
    InjectedSite, OutcomeKind, ParseBackendError, PrefetchKey, RunRecord, Session, WorkUnit,
    DEFAULT_HEARTBEAT_INTERVAL, DEFAULT_SNAPSHOT_BUDGET,
};
pub use events::{CampaignEvent, EventLog, EventSink, JsonlSink};
pub use history::CampaignHistory;
pub use shard::{ShardMergeError, ShardOutcome, ShardSpec, ShardSpecError};
pub use space::{FaultPoint, FaultSpace, PruneStats};
pub use standard::{
    default_test_suite, run_target, run_target_with_budget, StandardExecutor, STOCK_TARGETS,
};
pub use state::CampaignState;
pub use strategy::{DepthOracle, Exhaustive, InjectionGuided, RandomSample, Strategy};
pub use triage::{triage, CampaignReport, CrashSignature, SignatureBucket, Triage};

// Re-exported so downstream code can name profile types without an extra
// dependency edge.
pub use lfi_profiler::FaultProfile;
pub use lfi_telemetry::{MetricsSnapshot, Telemetry};
