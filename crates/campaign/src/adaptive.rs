//! Coverage-feedback scheduling: the guided ordering, made adaptive.
//!
//! [`CoverageAdaptive`] starts from the same ordering as
//! [`InjectionGuided`](crate::strategy::InjectionGuided) — unreached points
//! pruned, unchecked call sites first — but emits it in batches and
//! re-scores the remainder between batches from the campaign's
//! [`CampaignHistory`]:
//!
//! * **escalate** — a fault point is moved to the front of the queue when
//!   its neighborhood is near an observed crash signature: a crash happened
//!   in its caller function, its caller appears on a crash backtrace of the
//!   same target, or another error case of the same `(target, function)`
//!   already crashed;
//! * **deprioritize** — a point is moved to the back when its neighborhood
//!   (the fault points sharing its caller function) has accumulated
//!   `pass_threshold` passing runs without a single crash or hang;
//! * **prune** — optionally, a deprioritized point whose call site the
//!   analyzer classified as fully *checked* is dropped outright: the
//!   surrounding recovery code has demonstrably absorbed injections, so the
//!   budget is better spent elsewhere. Points demoted by the static-prune
//!   pass ([`FaultSpace::static_prune`]) carry a stronger guarantee — the
//!   interprocedural analysis proved the error handled — so they are
//!   dropped as soon as a *single* passing run corroborates the verdict in
//!   their neighborhood, instead of waiting for the full pass threshold.
//!
//! Scheduling is deterministic: scores are pure functions of the completed
//! record set, and every batch fully drains before the next is requested,
//! so the schedule does not depend on worker count or interleaving.

use std::collections::{BTreeMap, BTreeSet};

use lfi_analyzer::CallSiteClass;

use crate::engine::{OutcomeKind, WorkUnit};
use crate::history::CampaignHistory;
use crate::space::FaultSpace;
use crate::strategy::{guided_order, DepthOracle, Strategy};

/// An adaptive, feedback-driven scheduler over the guided ordering.
#[derive(Debug, Clone, Copy)]
pub struct CoverageAdaptive {
    /// Fault points emitted per batch (clamped to at least 1).
    pub batch: usize,
    /// Passing runs a caller neighborhood must accumulate (with no crash or
    /// hang) before its remaining points are deprioritized.
    pub pass_threshold: usize,
    /// Whether deprioritized points at *checked* call sites are dropped
    /// entirely instead of explored last.
    pub prune_saturated: bool,
}

impl Default for CoverageAdaptive {
    fn default() -> Self {
        CoverageAdaptive {
            batch: 32,
            pass_threshold: 3,
            prune_saturated: false,
        }
    }
}

/// How urgently a point should be explored (lower schedules earlier).
#[derive(PartialEq, Eq)]
enum Urgency {
    Escalated,
    Normal,
    Deprioritized,
}

/// A caller neighborhood: the fault points of one target sharing a caller
/// function (points with no resolved caller each form their own singleton
/// neighborhood, keyed by `None`).
type Neighborhood = (String, Option<String>);

#[derive(Default)]
struct NeighborhoodStats {
    passes: usize,
    failures: usize, // crashes and hangs
}

/// Everything the scheduler extracts from the record set in one pass.
#[derive(Default)]
struct HistoryDigest {
    stats: BTreeMap<Neighborhood, NeighborhoodStats>,
    /// `(target, function)` pairs whose injection already crashed.
    hot_functions: BTreeSet<(String, String)>,
    /// `(target, caller)` pairs implicated by a crash signature.
    hot_callers: BTreeSet<(String, String)>,
}

impl CoverageAdaptive {
    fn neighborhood(space: &FaultSpace, point: usize) -> Neighborhood {
        let p = &space.points[point];
        (p.target.clone(), p.caller.clone())
    }

    /// Fold the completed records into per-neighborhood outcome counts and
    /// the set of crash signals: callers implicated by a crash (faulting
    /// function or backtrace frame) and `(target, function)` pairs whose
    /// injection already produced a crash.
    fn digest_history(space: &FaultSpace, history: &CampaignHistory) -> HistoryDigest {
        let mut digest = HistoryDigest::default();
        for record in history.records() {
            if let Some(point) = history.point_of_unit(record.unit) {
                if point < space.len() {
                    let entry = digest
                        .stats
                        .entry(Self::neighborhood(space, point))
                        .or_default();
                    match record.outcome {
                        OutcomeKind::Passed | OutcomeKind::CleanFailure(_) => entry.passes += 1,
                        OutcomeKind::Crashed | OutcomeKind::Hung => entry.failures += 1,
                    }
                }
            }
            if record.outcome == OutcomeKind::Crashed {
                digest
                    .hot_functions
                    .insert((record.target.clone(), record.function.clone()));
                for crash in &record.crashes {
                    for frame in crash.in_function.iter().chain(crash.backtrace.iter()) {
                        digest
                            .hot_callers
                            .insert((record.target.clone(), frame.clone()));
                    }
                }
            }
        }
        // Broadcast signatures from sibling workers carry the same two
        // escalation signals as a local crash record — the injected
        // function and the implicated frame — so a supervised campaign's
        // adaptive shards learn globally, not per-slice.
        for hint in history.signature_hints() {
            digest
                .hot_functions
                .insert((hint.target.clone(), hint.function.clone()));
            if let Some(frame) = &hint.frame {
                digest
                    .hot_callers
                    .insert((hint.target.clone(), frame.clone()));
            }
        }
        digest
    }

    fn urgency(&self, space: &FaultSpace, point: usize, digest: &HistoryDigest) -> Urgency {
        let p = &space.points[point];
        let neighborhood = Self::neighborhood(space, point);
        let local = digest.stats.get(&neighborhood);
        let near_crash = local.is_some_and(|s| s.failures > 0)
            || digest
                .hot_functions
                .contains(&(p.target.clone(), p.function.clone()))
            || p.caller
                .as_ref()
                .is_some_and(|c| digest.hot_callers.contains(&(p.target.clone(), c.clone())));
        if near_crash {
            return Urgency::Escalated;
        }
        let quiet =
            local.is_some_and(|s| s.failures == 0 && s.passes >= self.pass_threshold.max(1));
        if quiet {
            Urgency::Deprioritized
        } else {
            Urgency::Normal
        }
    }
}

impl Strategy for CoverageAdaptive {
    fn name(&self) -> &str {
        "adaptive"
    }

    fn fingerprint(&self) -> String {
        format!(
            "adaptive(batch={},threshold={},prune={})",
            self.batch, self.pass_threshold, self.prune_saturated
        )
    }

    fn next_batch(&self, space: &FaultSpace, history: &CampaignHistory) -> Vec<usize> {
        let remaining: Vec<usize> = guided_order(space)
            .into_iter()
            .filter(|&i| !history.dispatched(i))
            .collect();
        if remaining.is_empty() {
            return Vec::new();
        }
        let digest = Self::digest_history(space, history);
        // Score every remaining point, preserving the guided order within
        // each urgency class (the sort key's second component is the
        // position in `remaining`, which is already guided-ordered).
        let mut scored: Vec<(u8, usize, usize)> = Vec::with_capacity(remaining.len());
        for (pos, &point) in remaining.iter().enumerate() {
            let urgency = self.urgency(space, point, &digest);
            if self.prune_saturated {
                let p = &space.points[point];
                if urgency == Urgency::Deprioritized && p.class == Some(CallSiteClass::Checked) {
                    continue;
                }
                // Statically demoted points need only one corroborating
                // pass in their neighborhood (and no failures) to be
                // skipped: the propagation proof carries most of the weight.
                let corroborated = digest
                    .stats
                    .get(&Self::neighborhood(space, point))
                    .is_some_and(|s| s.failures == 0 && s.passes >= 1);
                if p.demoted && corroborated {
                    continue;
                }
            }
            let class = match urgency {
                Urgency::Escalated => 0,
                Urgency::Normal => 1,
                Urgency::Deprioritized => 2,
            };
            scored.push((class, pos, point));
        }
        scored.sort_unstable();
        scored
            .into_iter()
            .take(self.batch.max(1))
            .map(|(_, _, point)| point)
            .collect()
    }

    /// Reuse-aware batch ordering: group units by `(target, workload)` so
    /// each session's forks run adjacently, ascend by first-call depth
    /// within the session so the LRU sees shallow ancestors before the
    /// walk moves deeper (shared ancestors stay hot instead of thrashing
    /// between sessions), and keep units of one function together at their
    /// shared fork point. Canonical unit id breaks the remaining ties, so
    /// the permutation is deterministic; records are sorted by unit id
    /// after the drain, so the reorder is invisible in results.
    fn order_units(&self, units: &mut [&WorkUnit], depths: &dyn DepthOracle) {
        units.sort_by_cached_key(|u| {
            (
                u.point.target.clone(),
                u.args.clone(),
                depths
                    .first_call_depth(&u.point.target, &u.args, &u.point.function)
                    .unwrap_or(usize::MAX),
                u.point.function.clone(),
                u.id,
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{CrashInfo, RunRecord};
    use crate::space::FaultPoint;

    use super::*;

    fn point(caller: &str, offset: u64) -> FaultPoint {
        point_in("read", caller, offset)
    }

    fn point_in(function: &str, caller: &str, offset: u64) -> FaultPoint {
        FaultPoint {
            target: "demo".into(),
            function: function.into(),
            offset,
            caller: Some(caller.into()),
            retval: -1,
            reached: Some(true),
            ..FaultPoint::default()
        }
    }

    fn space_of(points: Vec<FaultPoint>) -> FaultSpace {
        FaultSpace { points }
    }

    fn record(unit: usize, outcome: OutcomeKind, crash_in: Option<&str>) -> RunRecord {
        record_of("read", unit, outcome, crash_in)
    }

    fn record_of(
        function: &str,
        unit: usize,
        outcome: OutcomeKind,
        crash_in: Option<&str>,
    ) -> RunRecord {
        RunRecord {
            unit,
            target: "demo".into(),
            function: function.into(),
            offset: unit as u64 * 4,
            args: vec![],
            outcome,
            injections: 1,
            injected_sites: vec![],
            crashes: crash_in
                .map(|f| {
                    vec![CrashInfo {
                        module: "demo".into(),
                        offset: 0x999,
                        description: "segfault".into(),
                        in_function: Some(f.into()),
                        backtrace: vec![f.into()],
                    }]
                })
                .unwrap_or_default(),
            virtual_time: 1,
        }
    }

    #[test]
    fn first_batch_is_the_guided_prefix() {
        let space = space_of((0..10).map(|i| point("load", i * 4)).collect());
        let history = CampaignHistory::for_space_size(space.len());
        let strategy = CoverageAdaptive {
            batch: 4,
            ..CoverageAdaptive::default()
        };
        assert_eq!(strategy.next_batch(&space, &history), vec![0, 1, 2, 3]);
    }

    #[test]
    fn batches_cover_everything_and_never_repeat() {
        let space = space_of((0..10).map(|i| point("load", i * 4)).collect());
        let mut history = CampaignHistory::for_space_size(space.len());
        let strategy = CoverageAdaptive {
            batch: 3,
            ..CoverageAdaptive::default()
        };
        let mut seen = Vec::new();
        loop {
            let batch = strategy.next_batch(&space, &history);
            if batch.is_empty() {
                break;
            }
            history.begin_batch(&batch, batch.len());
            seen.extend(batch);
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "no point dispatched twice");
        assert_eq!(sorted, (0..10).collect::<Vec<_>>(), "all points covered");
    }

    #[test]
    fn crash_neighborhoods_escalate() {
        // Points 0-2 inject `read` from caller `quiet`, 3-5 inject `write`
        // from caller `hot`, 6-8 inject `read` from caller `cold`.
        let mut points = Vec::new();
        for i in 0..3 {
            points.push(point_in("read", "quiet", i * 4));
        }
        for i in 3..6 {
            points.push(point_in("write", "hot", i * 4));
        }
        for i in 6..9 {
            points.push(point_in("read", "cold", i * 4));
        }
        let space = space_of(points);
        let mut history = CampaignHistory::for_space_size(space.len());
        // First batch explored point 6 (passed) and 3 (a `write` injection
        // that crashed inside `hot`).
        history.begin_batch(&[3, 6], 2);
        history.observe(record_of("read", 6, OutcomeKind::Passed, None));
        history.observe(record_of("write", 3, OutcomeKind::Crashed, Some("hot")));

        let strategy = CoverageAdaptive {
            batch: 10,
            pass_threshold: 3,
            prune_saturated: false,
        };
        let batch = strategy.next_batch(&space, &history);
        // The rest of the crashing neighborhood (4, 5) jumps the queue —
        // both via the caller signal and the hot `(demo, write)` function;
        // everyone else keeps the guided order (one pass in `cold` is below
        // the deprioritization threshold).
        assert_eq!(batch, vec![4, 5, 0, 1, 2, 7, 8]);
    }

    #[test]
    fn deprioritized_points_sink_but_are_still_explored() {
        // One caller with enough passes to be quiet, one untouched.
        let mut points = Vec::new();
        for i in 0..3 {
            points.push(point("quiet", i * 4));
        }
        for i in 3..5 {
            points.push(point("fresh", i * 4));
        }
        let space = space_of(points);
        let mut history = CampaignHistory::for_space_size(space.len());
        history.begin_batch(&[0, 1], 2);
        // Three passing runs in `quiet` (threshold) — point 2 still pending.
        history.observe(record(0, OutcomeKind::Passed, None));
        history.observe(record(0, OutcomeKind::Passed, None));
        history.observe(record(1, OutcomeKind::Passed, None));

        let strategy = CoverageAdaptive {
            batch: 10,
            pass_threshold: 3,
            prune_saturated: false,
        };
        let batch = strategy.next_batch(&space, &history);
        assert_eq!(
            batch,
            vec![3, 4, 2],
            "quiet neighborhood sinks to the back but is not dropped"
        );
    }

    #[test]
    fn prune_saturated_drops_checked_points_in_quiet_neighborhoods() {
        let mut points = Vec::new();
        for i in 0..2 {
            points.push(point("quiet", i * 4));
        }
        let mut checked = point("quiet", 8);
        checked.class = Some(CallSiteClass::Checked);
        points.push(checked);
        let mut unchecked = point("quiet", 12);
        unchecked.class = Some(CallSiteClass::Unchecked);
        points.push(unchecked);
        let space = space_of(points);
        let mut history = CampaignHistory::for_space_size(space.len());
        history.begin_batch(&[0, 1], 2);
        for unit in 0..2 {
            history.observe(record(unit, OutcomeKind::Passed, None));
            history.observe(record(unit, OutcomeKind::Passed, None));
        }

        let strategy = CoverageAdaptive {
            batch: 10,
            pass_threshold: 3,
            prune_saturated: true,
        };
        let batch = strategy.next_batch(&space, &history);
        // The checked point (index 2) is dropped; the unchecked one is
        // still explored (deprioritization never silences unchecked sites).
        assert_eq!(batch, vec![3]);
    }

    #[test]
    fn demoted_points_prune_after_a_single_corroborating_pass() {
        use lfi_analyzer::PropagationVerdict;

        // A demoted point and a merely checked point in the same caller.
        let mut demoted = point("quiet", 0);
        demoted.class = Some(CallSiteClass::Checked);
        demoted.verdict = Some(PropagationVerdict::HandledLocally);
        demoted.demoted = true;
        let mut checked = point("quiet", 4);
        checked.class = Some(CallSiteClass::Checked);
        let fresh = point("fresh", 8);
        let space = space_of(vec![demoted, checked, fresh]);

        let strategy = CoverageAdaptive {
            batch: 10,
            pass_threshold: 3,
            prune_saturated: true,
        };

        // One passing run in `quiet` — far below the deprioritization
        // threshold, but enough to corroborate the static proof.
        let mut history = CampaignHistory::for_space_size(space.len());
        history.begin_batch(&[1], 1);
        history.observe(record(1, OutcomeKind::Passed, None));
        let batch = strategy.next_batch(&space, &history);
        // Point 1 was already dispatched; the demoted point 0 is skipped on
        // the strength of one corroborating pass, leaving only `fresh`.
        assert_eq!(batch, vec![2]);

        // A failure in the neighborhood blocks the fast prune.
        let mut crashed = CampaignHistory::for_space_size(space.len());
        crashed.begin_batch(&[1], 1);
        crashed.observe(record(1, OutcomeKind::Crashed, Some("quiet")));
        let batch = strategy.next_batch(&space, &crashed);
        assert!(
            batch.contains(&0),
            "a crash in the neighborhood keeps the demoted point scheduled"
        );

        // With no corroborating runs at all, the demoted point stays queued
        // (last, per its rank) — static pruning alone never drops a unit.
        let empty = CampaignHistory::for_space_size(space.len());
        let batch = strategy.next_batch(&space, &empty);
        assert_eq!(batch.last(), Some(&0));
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn order_units_groups_by_session_and_ascends_by_depth() {
        use lfi_core::Scenario;

        /// A fixed function → depth table; one function is unknown.
        struct TableOracle;

        impl DepthOracle for TableOracle {
            fn first_call_depth(
                &self,
                _target: &str,
                _args: &[String],
                function: &str,
            ) -> Option<usize> {
                match function {
                    "read" => Some(1),
                    "write" => Some(5),
                    "close" => Some(3),
                    _ => None, // "ioctl": depth unknown
                }
            }
        }

        let unit = |id: usize, function: &str, args: &[&str]| WorkUnit {
            id,
            point: FaultPoint {
                target: "demo".into(),
                function: function.into(),
                offset: id as u64 * 4,
                retval: -1,
                ..FaultPoint::default()
            },
            scenario: Scenario::new(),
            args: args.iter().map(|a| a.to_string()).collect(),
            seed: 0,
        };
        let units = [
            unit(0, "write", &["b"]),
            unit(1, "ioctl", &["a"]),
            unit(2, "close", &["a"]),
            unit(3, "write", &["a"]),
            unit(4, "read", &["a"]),
            unit(5, "write", &["a"]),
            unit(6, "read", &["b"]),
        ];
        let mut batch: Vec<&WorkUnit> = units.iter().collect();
        let before: BTreeSet<usize> = batch.iter().map(|u| u.id).collect();
        CoverageAdaptive::default().order_units(&mut batch, &TableOracle);
        let order: Vec<usize> = batch.iter().map(|u| u.id).collect();
        // Workload "a" first (lexicographic args), ascending by depth
        // (read=1, close=3, write×2=5, ioctl=unknown → last), then
        // workload "b" (read=1, write=5). Same-function units (3, 5) stay
        // adjacent, tie-broken by id.
        assert_eq!(order, vec![4, 2, 3, 5, 1, 6, 0]);
        let after: BTreeSet<usize> = batch.iter().map(|u| u.id).collect();
        assert_eq!(before, after, "ordering is a pure permutation");
    }

    #[test]
    fn fingerprint_folds_scheduling_parameters() {
        let a = CoverageAdaptive::default().fingerprint();
        let b = CoverageAdaptive {
            batch: 8,
            ..CoverageAdaptive::default()
        }
        .fingerprint();
        let c = CoverageAdaptive {
            pass_threshold: 9,
            ..CoverageAdaptive::default()
        }
        .fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
