//! The supervisor control plane: unit-range leases and the typed
//! [`ControlMessage`]s a campaign supervisor sends its workers.
//!
//! A [`Lease`] is the supervisor's scheduling quantum: one contiguous
//! range of canonical fault-point indices, much finer than a
//! [`ShardSpec`](crate::shard::ShardSpec)'s static round-robin slice.
//! Because canonical unit ids are positions in the point × workload
//! expansion (and `unit_base` is ascending), a contiguous point range is
//! also a contiguous unit range — so a lease names the same work on
//! every worker, and a lease reassigned after a worker death resumes
//! from the dead worker's checkpoint with at most its in-flight batch
//! re-executed.
//!
//! Lease identity is the **range**, not the lease id: the checkpoint tag
//! is `fingerprint@plan-hash%start..end` (the `%` marker keeps lease
//! tags disjoint from `#`-suffixed shard tags, so neither kind of
//! checkpoint can be resumed as the other). A reassigned lease gets a
//! fresh id but the same range, adopts the previous worker's checkpoint
//! file, and skips its completed units.
//!
//! A finished lease persists a sealed [`CampaignState`];
//! [`LeaseOutcome::from_state`] recovers the mergeable outcome and
//! [`CampaignReport::merge_leases`] recombines a set of outcomes that
//! tile the whole space into a report record- and triage-identical to
//! the unsharded run (for schedules whose covered unit set does not
//! depend on observed history — the same caveat as shard merging).
//!
//! [`ControlMessage`] is the downstream half of the supervisor wire
//! protocol (the upstream half is the [`CampaignEvent`](crate::events::
//! CampaignEvent) stream plus the worker protocol): it has the same
//! total line-oriented JSON codec as events, discriminated by a
//! `"control"` key so the two kinds can share a pipe without ambiguity.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use lfi_json::{JsonError, Value};

use crate::engine::RunRecord;
use crate::state::{int_field, invalid, opt_str_field, str_field, CampaignState};
use crate::triage::{triage, CampaignReport, CrashSignature, Triage};

/// One contiguous slice of the fault space, leased to a worker.
///
/// `start..end` are canonical fault-point indices (half-open). The `id`
/// distinguishes grants — a range reassigned after a worker death gets a
/// new id — but checkpoint identity is keyed by the range alone, so the
/// new grant resumes the old grant's persisted progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lease {
    /// Grant id, unique per supervisor run.
    pub id: u64,
    /// First fault-point index of the range.
    pub start: usize,
    /// One past the last fault-point index of the range.
    pub end: usize,
}

impl Lease {
    /// Whether this lease owns the fault point at canonical index
    /// `point`.
    pub fn owns_point(&self, point: usize) -> bool {
        (self.start..self.end).contains(&point)
    }

    /// Number of fault points in the range.
    pub fn points(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Check the `start < end` invariant.
    pub fn validate(&self) -> Result<(), LeaseError> {
        if self.start >= self.end {
            return Err(LeaseError(format!(
                "empty lease range {}..{} (start must be below end)",
                self.start, self.end
            )));
        }
        Ok(())
    }
}

impl fmt::Display for Lease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lease {} [{}..{})", self.id, self.start, self.end)
    }
}

/// Why a lease failed to validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseError(String);

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for LeaseError {}

/// A message from the supervisor to one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// Run this slice of the space (queued behind any lease the worker is
    /// already running).
    Lease(Lease),
    /// Return the named grant if it has not started yet; a lease already
    /// in flight finishes normally. The worker acknowledges with its
    /// `LeaseRevoked` / `LeaseStarted` protocol reply either way.
    Revoke {
        /// Grant id from the original [`ControlMessage::Lease`].
        lease: u64,
    },
    /// A crash signature first seen elsewhere in the campaign: fold it
    /// into local scheduling (adaptive strategies escalate its caller
    /// neighborhood) without re-announcing it.
    SignatureBroadcast(CrashSignature),
    /// Finish the current lease (if any) and exit cleanly.
    Shutdown,
}

impl ControlMessage {
    /// Encode as an `lfi_json` value (`{"control": "<kind>", ...}`).
    pub fn to_value(&self) -> Value {
        let tagged = |kind: &str, mut fields: Vec<(String, Value)>| {
            fields.insert(0, ("control".to_string(), Value::Str(kind.to_string())));
            Value::Obj(fields)
        };
        match self {
            ControlMessage::Lease(lease) => tagged(
                "lease",
                vec![
                    ("id".to_string(), Value::Int(lease.id as i64)),
                    ("start".to_string(), Value::Int(lease.start as i64)),
                    ("end".to_string(), Value::Int(lease.end as i64)),
                ],
            ),
            ControlMessage::Revoke { lease } => tagged(
                "revoke",
                vec![("lease".to_string(), Value::Int(*lease as i64))],
            ),
            ControlMessage::SignatureBroadcast(signature) => tagged(
                "signature_broadcast",
                vec![
                    ("target".to_string(), Value::Str(signature.target.clone())),
                    (
                        "function".to_string(),
                        Value::Str(signature.function.clone()),
                    ),
                    ("module".to_string(), Value::Str(signature.module.clone())),
                    ("offset".to_string(), Value::Int(signature.offset as i64)),
                    (
                        "frame".to_string(),
                        signature.frame.clone().map_or(Value::Null, Value::Str),
                    ),
                ],
            ),
            ControlMessage::Shutdown => tagged("shutdown", Vec::new()),
        }
    }

    /// Decode a value produced by [`to_value`](Self::to_value).
    pub fn from_value(value: &Value) -> Result<ControlMessage, JsonError> {
        let kind = value
            .get("control")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("missing string field `control`"))?;
        match kind {
            "lease" => Ok(ControlMessage::Lease(Lease {
                id: int_field(value, "id")? as u64,
                start: int_field(value, "start")? as usize,
                end: int_field(value, "end")? as usize,
            })),
            "revoke" => Ok(ControlMessage::Revoke {
                lease: int_field(value, "lease")? as u64,
            }),
            "signature_broadcast" => Ok(ControlMessage::SignatureBroadcast(CrashSignature {
                target: str_field(value, "target")?,
                function: str_field(value, "function")?,
                module: str_field(value, "module")?,
                offset: int_field(value, "offset")? as u64,
                frame: opt_str_field(value, "frame"),
            })),
            "shutdown" => Ok(ControlMessage::Shutdown),
            other => Err(invalid(format!("unknown control kind `{other}`"))),
        }
    }

    /// Encode as one line of compact JSON (no interior newlines) — the
    /// JSONL wire format the supervisor writes to worker stdin.
    pub fn to_json_line(&self) -> String {
        self.to_value().to_compact()
    }

    /// Decode one JSONL line produced by
    /// [`to_json_line`](Self::to_json_line).
    pub fn from_json_line(line: &str) -> Result<ControlMessage, JsonError> {
        ControlMessage::from_value(&lfi_json::parse(line)?)
    }
}

/// The finished result of one lease: everything a merge step needs to
/// recombine the campaign from lease-grained slices.
#[derive(Debug, Clone)]
pub struct LeaseOutcome {
    /// First fault-point index of the range.
    pub start: usize,
    /// One past the last fault-point index of the range.
    pub end: usize,
    /// The full checkpoint tag the lease ran under
    /// (`fingerprint@plan-hash%start..end`).
    pub tag: String,
    /// The campaign seed the lease's unit seeds were derived from.
    pub seed: u64,
    /// The lease's own report: its records and its triage slice.
    pub report: CampaignReport,
}

impl LeaseOutcome {
    /// The plan identity shared by every lease of one campaign: the tag
    /// with the `%start..end` suffix stripped.
    pub fn plan_tag(&self) -> &str {
        self.tag
            .rsplit_once('%')
            .map_or(&*self.tag, |(base, _)| base)
    }

    /// Reconstruct a lease outcome from a persisted [`CampaignState`] —
    /// the cross-process handoff: each worker checkpoints every lease to
    /// its own file, and the supervisor's merge step parses the files
    /// back into outcomes. Mid-run checkpoints of interrupted leases are
    /// rejected, exactly like interrupted shards.
    pub fn from_state(state: &CampaignState) -> Result<LeaseOutcome, LeaseMergeError> {
        let tag = state.tag().to_string();
        let Some((plan, suffix)) = tag.rsplit_once('%') else {
            return Err(LeaseMergeError::UntaggedState(tag));
        };
        let strategy = plan.split_once('@').map_or(plan, |(fp, _)| fp).to_string();
        let bad = || LeaseMergeError::BadLeaseTag(tag.clone());
        let (start, end) = suffix.split_once("..").ok_or_else(bad)?;
        let start: usize = start.parse().map_err(|_| bad())?;
        let end: usize = end.parse().map_err(|_| bad())?;
        if start >= end {
            return Err(bad());
        }
        if !state.is_complete() {
            return Err(LeaseMergeError::IncompleteLeaseState { start, end });
        }
        let records = state.records().to_vec();
        Ok(LeaseOutcome {
            start,
            end,
            tag,
            seed: state.seed(),
            report: CampaignReport {
                strategy,
                space_size: 0,
                planned_points: 0,
                units_total: records.len(),
                batches: 0,
                peak_workers: 0,
                executed_now: 0,
                triage: triage(&records),
                records,
                metrics: None,
            },
        })
    }
}

/// Why a set of lease outcomes could not be merged into one report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseMergeError {
    /// No outcomes were supplied.
    Empty,
    /// A persisted state carries no `%start..end` lease suffix.
    UntaggedState(String),
    /// A persisted state's lease suffix failed to parse (or names an
    /// empty range).
    BadLeaseTag(String),
    /// A persisted state is a mid-run checkpoint of an interrupted
    /// lease, not a finished one.
    IncompleteLeaseState {
        /// First fault-point index of the interrupted range.
        start: usize,
        /// One past the last fault-point index of the interrupted range.
        end: usize,
    },
    /// Two outcomes ran different plans (strategy fingerprint, space, or
    /// workload suites differ).
    MixedPlans(String, String),
    /// Two outcomes ran under different campaign seeds.
    MixedSeeds(u64, u64),
    /// Two ranges overlap: the second starts before the first ends.
    Overlap {
        /// End of the earlier range.
        end: usize,
        /// Start of the later, overlapping range.
        start: usize,
    },
    /// The sorted ranges leave fault points uncovered.
    Gap {
        /// First uncovered point.
        from: usize,
        /// One past the last uncovered point.
        to: usize,
    },
    /// Two outcomes both recorded the same canonical unit — the
    /// partition was violated.
    DuplicateUnit(usize),
}

impl fmt::Display for LeaseMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaseMergeError::Empty => write!(f, "no lease outcomes to merge"),
            LeaseMergeError::UntaggedState(tag) => write!(
                f,
                "campaign state tag `{tag}` carries no lease suffix (`%start..end`)"
            ),
            LeaseMergeError::BadLeaseTag(tag) => {
                write!(f, "campaign state tag `{tag}` has a malformed lease suffix")
            }
            LeaseMergeError::IncompleteLeaseState { start, end } => write!(
                f,
                "lease {start}..{end}'s state is a mid-run checkpoint (its run was \
                 interrupted); re-run the lease to completion before merging"
            ),
            LeaseMergeError::MixedPlans(a, b) => write!(
                f,
                "leases ran different plans: `{a}` vs `{b}` (strategy, space, or suites differ)"
            ),
            LeaseMergeError::MixedSeeds(a, b) => {
                write!(f, "leases ran under different campaign seeds: {a} vs {b}")
            }
            LeaseMergeError::Overlap { end, start } => write!(
                f,
                "lease ranges overlap: one ends at {end} but another starts at {start}"
            ),
            LeaseMergeError::Gap { from, to } => {
                write!(f, "lease ranges leave fault points {from}..{to} uncovered")
            }
            LeaseMergeError::DuplicateUnit(unit) => write!(
                f,
                "unit {unit} was recorded by more than one lease (partition violated)"
            ),
        }
    }
}

impl Error for LeaseMergeError {}

impl CampaignReport {
    /// Recombine lease outcomes that tile the whole space into one
    /// report — the lease-grained sibling of [`CampaignReport::merge`].
    ///
    /// The outcomes must share one plan tag and campaign seed, and their
    /// sorted ranges must cover `0..total_points` exactly: no gaps, no
    /// overlaps. For schedules whose covered unit set does not depend on
    /// observed history, the merged records and triage are
    /// byte-identical to the equivalent unsharded run's.
    pub fn merge_leases(
        outcomes: Vec<LeaseOutcome>,
        total_points: usize,
    ) -> Result<CampaignReport, LeaseMergeError> {
        let Some(first) = outcomes.first() else {
            return Err(LeaseMergeError::Empty);
        };
        let plan = first.plan_tag().to_string();
        let seed = first.seed;
        for outcome in &outcomes {
            if outcome.plan_tag() != plan {
                return Err(LeaseMergeError::MixedPlans(
                    plan,
                    outcome.plan_tag().to_string(),
                ));
            }
            if outcome.seed != seed {
                return Err(LeaseMergeError::MixedSeeds(seed, outcome.seed));
            }
        }
        let mut ranges: Vec<(usize, usize)> = outcomes.iter().map(|o| (o.start, o.end)).collect();
        ranges.sort_unstable();
        let mut covered = 0usize;
        for (start, end) in ranges {
            match start.cmp(&covered) {
                std::cmp::Ordering::Less => {
                    return Err(LeaseMergeError::Overlap {
                        end: covered,
                        start,
                    })
                }
                std::cmp::Ordering::Greater => {
                    return Err(LeaseMergeError::Gap {
                        from: covered,
                        to: start,
                    })
                }
                std::cmp::Ordering::Equal => covered = end,
            }
        }
        if covered < total_points {
            return Err(LeaseMergeError::Gap {
                from: covered,
                to: total_points,
            });
        }

        let mut merged: BTreeMap<usize, RunRecord> = BTreeMap::new();
        let mut report = CampaignReport {
            strategy: first.report.strategy.clone(),
            space_size: 0,
            planned_points: 0,
            units_total: 0,
            batches: 0,
            peak_workers: 0,
            executed_now: 0,
            triage: Triage::default(),
            records: Vec::new(),
            metrics: None,
        };
        for outcome in outcomes {
            report.space_size = report.space_size.max(outcome.report.space_size);
            report.planned_points += outcome.report.planned_points;
            report.units_total += outcome.report.units_total;
            report.batches += outcome.report.batches;
            report.peak_workers = report.peak_workers.max(outcome.report.peak_workers);
            report.executed_now += outcome.report.executed_now;
            if let Some(lease_metrics) = &outcome.report.metrics {
                report
                    .metrics
                    .get_or_insert_with(Default::default)
                    .merge(lease_metrics);
            }
            for record in outcome.report.records {
                let unit = record.unit;
                if merged.insert(unit, record).is_some() {
                    return Err(LeaseMergeError::DuplicateUnit(unit));
                }
            }
        }
        report.records = merged.into_values().collect();
        report.triage = triage(&report.records);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_ranges_are_half_open() {
        let lease = Lease {
            id: 3,
            start: 4,
            end: 7,
        };
        assert!(lease.validate().is_ok());
        assert_eq!(lease.points(), 3);
        assert!(!lease.owns_point(3));
        assert!(lease.owns_point(4) && lease.owns_point(6));
        assert!(!lease.owns_point(7));
        assert_eq!(lease.to_string(), "lease 3 [4..7)");
        assert!(Lease {
            id: 0,
            start: 5,
            end: 5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn control_messages_round_trip_through_json_lines() {
        let messages = vec![
            ControlMessage::Lease(Lease {
                id: 9,
                start: 40,
                end: 48,
            }),
            ControlMessage::Revoke { lease: 9 },
            ControlMessage::SignatureBroadcast(CrashSignature {
                target: "git-lite".into(),
                function: "opendir".into(),
                module: "git-lite".into(),
                offset: 0x99,
                frame: Some("scan_tree".into()),
            }),
            ControlMessage::SignatureBroadcast(CrashSignature {
                target: "db-lite".into(),
                function: "close".into(),
                module: "db-lite".into(),
                offset: 0x40,
                frame: None,
            }),
            ControlMessage::Shutdown,
        ];
        for message in messages {
            let line = message.to_json_line();
            assert!(!line.contains('\n'), "JSONL lines must be single-line");
            let back = ControlMessage::from_json_line(&line)
                .unwrap_or_else(|err| panic!("decoding {line}: {err:?}"));
            assert_eq!(back, message);
        }
    }

    #[test]
    fn decoding_rejects_unknown_and_malformed_control_messages() {
        assert!(ControlMessage::from_json_line("{}").is_err());
        assert!(ControlMessage::from_json_line(r#"{"control":"warp"}"#).is_err());
        assert!(ControlMessage::from_json_line(r#"{"control":"lease"}"#).is_err());
        assert!(ControlMessage::from_json_line("not json").is_err());
        // An event line is not a control line: the discriminating key
        // keeps the two wire formats disjoint on a shared pipe.
        assert!(ControlMessage::from_json_line(r#"{"event":"shutdown"}"#).is_err());
    }

    fn outcome(start: usize, end: usize) -> LeaseOutcome {
        LeaseOutcome {
            start,
            end,
            tag: format!("exhaustive@00000000deadbeef%{start}..{end}"),
            seed: 7,
            report: CampaignReport {
                strategy: "exhaustive".to_string(),
                space_size: 0,
                planned_points: end - start,
                units_total: 0,
                batches: 1,
                peak_workers: 1,
                executed_now: 0,
                triage: Triage::default(),
                records: Vec::new(),
                metrics: None,
            },
        }
    }

    #[test]
    fn merge_requires_a_gapless_tiling() {
        assert_eq!(
            CampaignReport::merge_leases(Vec::new(), 4).unwrap_err(),
            LeaseMergeError::Empty
        );
        // 0..2, 2..5, 5..9 tiles 0..9 exactly.
        let report =
            CampaignReport::merge_leases(vec![outcome(2, 5), outcome(0, 2), outcome(5, 9)], 9)
                .unwrap();
        assert_eq!(report.planned_points, 9);
        assert_eq!(report.batches, 3);

        assert_eq!(
            CampaignReport::merge_leases(vec![outcome(0, 2), outcome(3, 9)], 9).unwrap_err(),
            LeaseMergeError::Gap { from: 2, to: 3 }
        );
        assert_eq!(
            CampaignReport::merge_leases(vec![outcome(0, 4), outcome(3, 9)], 9).unwrap_err(),
            LeaseMergeError::Overlap { end: 4, start: 3 }
        );
        assert_eq!(
            CampaignReport::merge_leases(vec![outcome(0, 9)], 12).unwrap_err(),
            LeaseMergeError::Gap { from: 9, to: 12 }
        );
    }

    #[test]
    fn merge_rejects_mixed_plans_and_seeds() {
        let mut foreign = outcome(2, 4);
        foreign.tag = "guided@00000000deadbeef%2..4".to_string();
        assert!(matches!(
            CampaignReport::merge_leases(vec![outcome(0, 2), foreign], 4).unwrap_err(),
            LeaseMergeError::MixedPlans(..)
        ));
        let mut reseeded = outcome(2, 4);
        reseeded.seed = 8;
        assert_eq!(
            CampaignReport::merge_leases(vec![outcome(0, 2), reseeded], 4).unwrap_err(),
            LeaseMergeError::MixedSeeds(7, 8)
        );
    }

    #[test]
    fn lease_states_round_trip_and_reject_interruptions() {
        let mut state = CampaignState::default();
        state.adopt("exhaustive@0000000000000000%3..6", 7);
        let interrupted = CampaignState::from_json(&state.to_json()).unwrap();
        assert_eq!(
            LeaseOutcome::from_state(&interrupted).unwrap_err(),
            LeaseMergeError::IncompleteLeaseState { start: 3, end: 6 }
        );

        let mut sharded = CampaignState::default();
        sharded.adopt("exhaustive@0000000000000000#0/2", 7);
        assert!(matches!(
            LeaseOutcome::from_state(&sharded).unwrap_err(),
            LeaseMergeError::UntaggedState(_)
        ));

        let mut bad = CampaignState::default();
        bad.adopt("exhaustive@0000000000000000%6..3", 7);
        assert!(matches!(
            LeaseOutcome::from_state(&bad).unwrap_err(),
            LeaseMergeError::BadLeaseTag(_)
        ));
    }
}
