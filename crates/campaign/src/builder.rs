//! Fluent campaign construction and orchestration: [`CampaignBuilder`] →
//! [`CampaignDriver`].
//!
//! The builder replaces ad-hoc `CampaignConfig` construction with one
//! chain that names every orchestration choice:
//!
//! ```no_run
//! use lfi_campaign::{Campaign, CoverageAdaptive, ExecBackend, ShardSpec, StandardExecutor};
//!
//! let executor = StandardExecutor::new(&["git-lite"]);
//! let profile = lfi_targets::standard_controller().profile_libraries();
//! let space = executor.fault_space(&["git-lite"], &profile);
//!
//! let driver = Campaign::builder(space, &executor)
//!     .strategy(CoverageAdaptive::default())
//!     .backend(ExecBackend::Snapshot)
//!     .jobs(4)
//!     .seed(7)
//!     .shard(ShardSpec { index: 0, count: 2 })
//!     .build();
//! let outcome = driver.run_to_completion();
//! println!("{}", outcome.report);
//! ```
//!
//! The driver is the unit a multi-process (or multi-machine) supervisor
//! orchestrates: each process builds the same plan with its own
//! [`ShardSpec`] slice, streams progress through an
//! [`EventSink`](crate::events::EventSink), checkpoints after every batch,
//! and hands back a mergeable [`ShardOutcome`] —
//! [`CampaignReport::merge`](crate::CampaignReport::merge) recombines a
//! complete shard set into a report record- and triage-identical to the
//! unsharded run.

use std::path::PathBuf;

use crate::control::Lease;
use crate::engine::{Campaign, CampaignConfig, ExecBackend, Executor};
use crate::events::EventSink;
use crate::shard::{ShardOutcome, ShardSpec};
use crate::space::FaultSpace;
use crate::state::CampaignState;
use crate::strategy::{Exhaustive, Strategy};
use crate::triage::CrashSignature;

/// Fluent configuration of a campaign run; built by
/// [`Campaign::builder`] and finished by [`CampaignBuilder::build`].
///
/// Defaults: [`Exhaustive`] strategy, [`ExecBackend::Fresh`], 1 job, seed
/// 7, the full (unsharded) shard, no event sink, no checkpoint path.
pub struct CampaignBuilder<'a> {
    space: FaultSpace,
    executor: &'a dyn Executor,
    config: CampaignConfig,
    strategy: Box<dyn Strategy + 'a>,
    shard: ShardSpec,
    lease: Option<Lease>,
    known_signatures: Vec<CrashSignature>,
    sink: Option<&'a dyn EventSink>,
    checkpoint: Option<PathBuf>,
}

impl<'a> CampaignBuilder<'a> {
    pub(crate) fn new(space: FaultSpace, executor: &'a dyn Executor) -> CampaignBuilder<'a> {
        CampaignBuilder {
            space,
            executor,
            config: CampaignConfig::default(),
            strategy: Box::new(Exhaustive),
            shard: ShardSpec::FULL,
            lease: None,
            known_signatures: Vec::new(),
            sink: None,
            checkpoint: None,
        }
    }

    /// The search strategy driving the schedule (default: [`Exhaustive`]).
    pub fn strategy(self, strategy: impl Strategy + 'a) -> Self {
        self.boxed_strategy(Box::new(strategy))
    }

    /// Like [`CampaignBuilder::strategy`], for strategies already boxed
    /// (e.g. chosen from a command-line flag).
    pub fn boxed_strategy(mut self, strategy: Box<dyn Strategy + 'a>) -> Self {
        self.strategy = strategy;
        self
    }

    /// The execution backend (default: [`ExecBackend::Fresh`]). Under
    /// [`ExecBackend::Snapshot`] the engine also hands the executor each
    /// batch's `(target, workload, function)` keys before draining it
    /// ([`Executor::prefetch_batch`]) and lets the strategy reorder the
    /// batch for snapshot reuse ([`crate::strategy::Strategy::order_units`])
    /// — both pure performance hints; records are byte-identical across
    /// backends either way.
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Worker threads draining each batch (default: 1). Workers share
    /// per-session snapshot state: under the snapshot backend, concurrent
    /// deepening is claimed by one worker per session and siblings wait on
    /// (or fork past) the in-flight walk instead of duplicating it.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = jobs;
        self
    }

    /// The campaign base seed unit seeds are derived from (default: 7).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Byte cap on resident snapshot state under the snapshot backend
    /// (default: [`crate::engine::DEFAULT_SNAPSHOT_BUDGET`]). A pure
    /// performance knob: past the cap, sessions evict least-recently-used
    /// snapshots and re-derive them on demand; results never change.
    pub fn snapshot_budget(mut self, bytes: u64) -> Self {
        self.config.snapshot_budget = bytes;
        self
    }

    /// Minimum interval between [`CampaignEvent::Heartbeat`](crate::events::
    /// CampaignEvent::Heartbeat) events while units drain (default:
    /// [`crate::engine::DEFAULT_HEARTBEAT_INTERVAL`]); `None` disables
    /// heartbeats entirely. Heartbeats only flow when an event sink is
    /// registered.
    pub fn heartbeat(mut self, interval: Option<std::time::Duration>) -> Self {
        self.config.heartbeat_interval = interval;
        self
    }

    /// Run only one round-robin slice of the fault space (default:
    /// [`ShardSpec::FULL`], the whole space). Sibling processes run the
    /// other slices of the same `count`; their outcomes merge with
    /// [`crate::CampaignReport::merge`].
    pub fn shard(mut self, shard: ShardSpec) -> Self {
        self.shard = shard;
        self
    }

    /// Run only one leased contiguous fault-point range (default: none —
    /// the whole shard). This is the supervisor's scheduling quantum,
    /// much finer than a shard: the checkpoint tag becomes
    /// `fingerprint@plan-hash%start..end`, keyed by the *range*, so a
    /// lease reassigned to another worker resumes the previous worker's
    /// checkpoint. Composes with [`CampaignBuilder::shard`] (supervised
    /// workers normally keep the full shard and confine by lease alone).
    pub fn lease(mut self, lease: Lease) -> Self {
        self.lease = Some(lease);
        self
    }

    /// Seed the run with crash signatures first observed elsewhere in a
    /// supervised campaign (default: none). Adaptive strategies escalate
    /// the signatures' caller neighborhoods exactly as if the crash had
    /// been observed locally, and the signatures are not re-announced as
    /// [`CampaignEvent::CrashFound`](crate::events::CampaignEvent::
    /// CrashFound) events. Results never change for schedules whose
    /// covered unit set does not depend on observed history.
    pub fn known_signatures(
        mut self,
        signatures: impl IntoIterator<Item = CrashSignature>,
    ) -> Self {
        self.known_signatures.extend(signatures);
        self
    }

    /// Stream [`CampaignEvent`](crate::events::CampaignEvent)s into `sink`
    /// while the campaign runs (default: no events).
    pub fn events(mut self, sink: &'a dyn EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Persist the campaign state to `path` after every batch, and let
    /// [`CampaignDriver::run_to_completion`] resume from the file when it
    /// already exists (default: no checkpointing). An interrupted sharded
    /// run thus loses at most one batch.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Finish the chain: fix the canonical unit layout and return the
    /// driver.
    ///
    /// # Panics
    ///
    /// Panics when the shard spec is invalid (`count == 0` or
    /// `index >= count`) — specs from user input should be validated
    /// first via [`ShardSpec::new`] or `str::parse`.
    pub fn build(self) -> CampaignDriver<'a> {
        if let Err(err) = self.shard.validate() {
            panic!("invalid campaign shard: {err}");
        }
        if let Some(Err(err)) = self.lease.map(|lease| lease.validate()) {
            panic!("invalid campaign lease: {err}");
        }
        CampaignDriver {
            campaign: Campaign::new(self.space, self.executor, self.config),
            strategy: self.strategy,
            shard: self.shard,
            lease: self.lease,
            known_signatures: self.known_signatures,
            sink: self.sink,
            checkpoint: self.checkpoint,
        }
    }
}

/// A fully configured campaign, ready to run (repeatedly, for resumes).
///
/// Built by [`CampaignBuilder::build`]; see the module docs for the
/// orchestration model.
pub struct CampaignDriver<'a> {
    campaign: Campaign<'a>,
    strategy: Box<dyn Strategy + 'a>,
    shard: ShardSpec,
    lease: Option<Lease>,
    known_signatures: Vec<CrashSignature>,
    sink: Option<&'a dyn EventSink>,
    checkpoint: Option<PathBuf>,
}

impl<'a> CampaignDriver<'a> {
    /// The underlying campaign (space, canonical unit layout, prepared
    /// sessions).
    pub fn campaign(&self) -> &Campaign<'a> {
        &self.campaign
    }

    /// Which slice of the space this driver runs.
    pub fn shard(&self) -> ShardSpec {
        self.shard
    }

    /// The leased fault-point range this driver is confined to, if any.
    pub fn lease(&self) -> Option<Lease> {
        self.lease
    }

    /// Canonical work units owned by this driver's shard.
    pub fn shard_units(&self) -> usize {
        self.campaign.shard_units(self.shard)
    }

    /// The state this run would start from: the parsed checkpoint file
    /// when a checkpoint path is configured and the file exists, an empty
    /// state otherwise.
    ///
    /// # Panics
    ///
    /// Panics when an existing checkpoint file cannot be read or parsed —
    /// a corrupt checkpoint should be surfaced, not silently discarded.
    pub fn load_state(&self) -> CampaignState {
        let Some(path) = self.checkpoint.as_deref().filter(|p| p.exists()) else {
            return CampaignState::default();
        };
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|err| panic!("read campaign checkpoint {}: {err}", path.display()));
        CampaignState::from_json(&text).unwrap_or_else(|err| {
            panic!(
                "parse campaign checkpoint {}: {} (at byte {})",
                path.display(),
                err.message,
                err.position
            )
        })
    }

    /// Run this shard to completion and return its mergeable outcome.
    ///
    /// With a checkpoint path configured this is a *resumable* entry
    /// point: the state is loaded from the file when it exists (completed
    /// units are skipped; a mismatched tag starts fresh), and persisted
    /// back after every batch. Without one it always starts fresh.
    pub fn run_to_completion(&self) -> ShardOutcome {
        let mut state = self.load_state();
        self.run_with_state(&mut state)
    }

    /// Run this shard against caller-owned state (updated in place) —
    /// the resumable entry point for callers that manage persistence
    /// themselves. Events stream into the registered sink; the checkpoint
    /// path, when configured, is still written after every batch.
    pub fn run_with_state(&self, state: &mut CampaignState) -> ShardOutcome {
        self.campaign.run_driven(
            self.strategy.as_ref(),
            state,
            self.shard,
            self.lease,
            &self.known_signatures,
            self.sink,
            self.checkpoint.as_deref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use crate::engine::{Execution, OutcomeKind, WorkUnit};
    use crate::events::{CampaignEvent, EventLog};
    use crate::space::FaultPoint;
    use crate::triage::CampaignReport;

    use super::*;

    /// Crashes on every offset that is a multiple of 8; two workloads per
    /// target.
    struct FakeExecutor {
        executions: AtomicUsize,
    }

    impl FakeExecutor {
        fn new() -> FakeExecutor {
            FakeExecutor {
                executions: AtomicUsize::new(0),
            }
        }
    }

    impl Executor for FakeExecutor {
        fn workloads(&self, _target: &str) -> Vec<Vec<String>> {
            vec![vec!["a".into()], vec!["b".into()]]
        }

        fn execute(&self, unit: &WorkUnit) -> Execution {
            self.executions.fetch_add(1, Ordering::Relaxed);
            let crashes = if unit.point.offset.is_multiple_of(8) {
                vec![crate::engine::CrashInfo {
                    module: unit.point.target.clone(),
                    offset: unit.point.offset + 100,
                    description: "segfault".into(),
                    in_function: Some("victim".into()),
                    backtrace: vec!["victim".into(), "main".into()],
                }]
            } else {
                Vec::new()
            };
            Execution {
                outcome: if crashes.is_empty() {
                    OutcomeKind::Passed
                } else {
                    OutcomeKind::Crashed
                },
                injections: 1,
                injected_sites: vec![],
                crashes,
                virtual_time: 10,
            }
        }
    }

    fn demo_space(points: usize) -> FaultSpace {
        FaultSpace {
            points: (0..points)
                .map(|i| FaultPoint {
                    target: "demo".into(),
                    function: "read".into(),
                    offset: (i as u64) * 4,
                    caller: Some("main".into()),
                    retval: -1,
                    ..FaultPoint::default()
                })
                .collect(),
        }
    }

    #[test]
    fn builder_defaults_match_the_legacy_config() {
        let executor = FakeExecutor::new();
        let driver = Campaign::builder(demo_space(3), &executor).build();
        assert_eq!(driver.shard(), ShardSpec::FULL);
        assert_eq!(driver.shard_units(), driver.campaign().total_units());
        let outcome = driver.run_to_completion();
        assert_eq!(outcome.report.strategy, "exhaustive");
        assert_eq!(outcome.report.executed_now, 6, "3 points x 2 workloads");
        assert_eq!(outcome.seed, CampaignConfig::default().seed);
        assert!(outcome.tag.ends_with("#0/1"), "tag: {}", outcome.tag);
    }

    #[test]
    #[allow(deprecated)]
    fn the_deprecated_run_shim_matches_the_driver() {
        let executor = FakeExecutor::new();
        let driver = Campaign::builder(demo_space(5), &executor).jobs(2).build();
        let via_driver = driver.run_to_completion().report;

        let campaign = Campaign::new(
            demo_space(5),
            &executor,
            CampaignConfig {
                jobs: 2,
                ..CampaignConfig::default()
            },
        );
        let via_shim = campaign.run(&Exhaustive, &mut CampaignState::default());
        assert_eq!(via_shim.records, via_driver.records);
        assert_eq!(via_shim.triage.buckets, via_driver.triage.buckets);
    }

    #[test]
    #[should_panic(expected = "invalid campaign shard")]
    fn building_with_an_invalid_shard_panics() {
        let executor = FakeExecutor::new();
        let _ = Campaign::builder(demo_space(3), &executor)
            .shard(ShardSpec { index: 2, count: 2 })
            .build();
    }

    #[test]
    fn shards_partition_the_run_and_merge_back_to_the_unsharded_report() {
        let executor = FakeExecutor::new();
        let unsharded = Campaign::builder(demo_space(7), &executor)
            .jobs(2)
            .build()
            .run_to_completion();

        let count = 3;
        let mut outcomes = Vec::new();
        let mut per_shard_units = 0;
        for index in 0..count {
            let executor = FakeExecutor::new();
            let driver = Campaign::builder(demo_space(7), &executor)
                .jobs(2)
                .shard(ShardSpec::new(index, count).unwrap())
                .build();
            per_shard_units += driver.shard_units();
            let outcome = driver.run_to_completion();
            assert_eq!(
                outcome.report.executed_now,
                driver.shard_units(),
                "shard {index} runs exactly its own units"
            );
            assert!(outcome.tag.ends_with(&format!("#{index}/{count}")));
            outcomes.push(outcome);
        }
        assert_eq!(per_shard_units, unsharded.report.units_total);

        let merged = CampaignReport::merge(outcomes).unwrap();
        assert_eq!(merged.records, unsharded.report.records);
        assert_eq!(merged.triage, unsharded.report.triage);
        assert_eq!(merged.units_total, unsharded.report.units_total);
        assert_eq!(merged.planned_points, unsharded.report.planned_points);
    }

    #[test]
    fn a_shard_checkpoint_cannot_be_resumed_by_another_shard() {
        let executor = FakeExecutor::new();
        let shard0 = Campaign::builder(demo_space(6), &executor)
            .shard(ShardSpec::new(0, 2).unwrap())
            .build();
        let mut state = CampaignState::default();
        let first = shard0.run_with_state(&mut state);
        assert_eq!(first.report.executed_now, 6, "3 owned points x 2 workloads");

        // The sibling shard must not adopt shard 0's records...
        let executor1 = FakeExecutor::new();
        let shard1 = Campaign::builder(demo_space(6), &executor1)
            .shard(ShardSpec::new(1, 2).unwrap())
            .build();
        let hijack = shard1.run_with_state(&mut state);
        assert_eq!(
            hijack.report.executed_now, 6,
            "wrong-shard resume starts fresh"
        );
        assert_eq!(hijack.report.records.len(), 6, "only shard 1's records");

        // ...and neither must the unsharded run.
        let executor_full = FakeExecutor::new();
        let full = Campaign::builder(demo_space(6), &executor_full).build();
        let report = full.run_with_state(&mut state).report;
        assert_eq!(report.executed_now, 12, "unsharded resume starts fresh");
    }

    #[test]
    fn events_stream_in_order_with_deduplicated_crashes() {
        let executor = FakeExecutor::new();
        let log = EventLog::new();
        // Offsets 0,4,..,20: points at 0, 8, 16 crash, each onto its own
        // signature; both workloads of a point share the signature.
        let outcome = Campaign::builder(demo_space(6), &executor)
            .jobs(2)
            .events(&log)
            .build()
            .run_to_completion();
        assert_eq!(outcome.report.triage.distinct_crashes(), 3);

        let events = log.events();
        assert!(
            matches!(
                events.first(),
                Some(CampaignEvent::BatchPlanned {
                    units: 12,
                    pending: 12,
                    ..
                })
            ),
            "first event plans the batch: {:?}",
            events.first()
        );
        assert!(
            matches!(
                events.last(),
                Some(CampaignEvent::ShardFinished {
                    executed: 12,
                    records: 12,
                    ..
                })
            ),
            "last event closes the shard: {:?}",
            events.last()
        );
        let count = |pred: fn(&CampaignEvent) -> bool| events.iter().filter(|e| pred(e)).count();
        assert_eq!(
            count(|e| matches!(e, CampaignEvent::UnitStarted { .. })),
            12
        );
        assert_eq!(
            count(|e| matches!(e, CampaignEvent::UnitFinished { .. })),
            12
        );
        assert_eq!(
            count(|e| matches!(e, CampaignEvent::CrashFound(_))),
            3,
            "one event per distinct signature, not one per crashing unit (6 units crashed)"
        );
        // Every unit's start precedes its finish.
        for record in &outcome.report.records {
            let started = events.iter().position(
                |e| matches!(e, CampaignEvent::UnitStarted { unit, .. } if *unit == record.unit),
            );
            let finished = events.iter().position(
                |e| matches!(e, CampaignEvent::UnitFinished { record: r, .. } if r.unit == record.unit),
            );
            assert!(started.unwrap() < finished.unwrap());
        }
    }

    #[test]
    fn checkpointing_persists_per_batch_and_resumes_without_re_execution() {
        let dir =
            std::env::temp_dir().join(format!("lfi_builder_checkpoint_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let _ = std::fs::remove_file(&path);

        let executor = FakeExecutor::new();
        let log = EventLog::new();
        let driver = Campaign::builder(demo_space(4), &executor)
            .checkpoint(&path)
            .events(&log)
            .build();
        let first = driver.run_to_completion();
        assert_eq!(first.report.executed_now, 8);
        assert!(path.exists(), "checkpoint written");
        assert_eq!(
            log.count(|e| matches!(e, CampaignEvent::CheckpointWritten { .. })),
            2,
            "exhaustive is one batch: one per-batch write plus the final completion seal"
        );
        assert!(
            driver.load_state().is_complete(),
            "the persisted state is sealed complete"
        );

        // A second run loads the file and re-executes nothing; resumed
        // crash signatures are not re-announced.
        let resumed = driver.run_to_completion();
        assert_eq!(resumed.report.executed_now, 0);
        assert_eq!(resumed.report.records, first.report.records);
        assert_eq!(executor.executions.load(Ordering::Relaxed), 8);
        assert_eq!(
            log.count(|e| matches!(e, CampaignEvent::CrashFound(_))),
            first.report.triage.distinct_crashes(),
            "resume announces no already-known signatures"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leases_partition_the_run_and_merge_back_to_the_unsharded_report() {
        let executor = FakeExecutor::new();
        let unsharded = Campaign::builder(demo_space(7), &executor)
            .jobs(2)
            .build()
            .run_to_completion();

        // Three uneven leases tiling the 7 points: separate executors,
        // like separate worker processes sharing nothing.
        let ranges = [(0usize, 3usize), (3, 5), (5, 7)];
        let mut outcomes = Vec::new();
        for (id, (start, end)) in ranges.into_iter().enumerate() {
            let executor = FakeExecutor::new();
            let driver = Campaign::builder(demo_space(7), &executor)
                .jobs(2)
                .lease(Lease {
                    id: id as u64,
                    start,
                    end,
                })
                .build();
            let mut state = CampaignState::default();
            let live = driver.run_with_state(&mut state);
            assert!(
                live.tag.ends_with(&format!("%{start}..{end}")),
                "lease tag keyed by range: {}",
                live.tag
            );
            assert_eq!(
                live.report.executed_now,
                (end - start) * 2,
                "lease {start}..{end} runs exactly its own units"
            );
            // The cross-process handoff: state → JSON → LeaseOutcome.
            let parsed = CampaignState::from_json(&state.to_json()).unwrap();
            outcomes.push(crate::control::LeaseOutcome::from_state(&parsed).unwrap());
        }
        let merged = CampaignReport::merge_leases(outcomes, 7).unwrap();
        assert_eq!(merged.records, unsharded.report.records);
        assert_eq!(merged.triage, unsharded.report.triage);
    }

    #[test]
    fn a_reassigned_lease_resumes_the_dead_workers_checkpoint() {
        let lease_range = Lease {
            id: 1,
            start: 2,
            end: 5,
        };
        let executor = FakeExecutor::new();
        let mut state = CampaignState::default();
        let first = Campaign::builder(demo_space(7), &executor)
            .lease(lease_range)
            .build()
            .run_with_state(&mut state);
        assert_eq!(
            first.report.executed_now, 6,
            "3 leased points x 2 workloads"
        );

        // The supervisor reassigns the range under a fresh grant id (a
        // different worker process: fresh executor). Checkpoint identity
        // is the range, so nothing re-executes.
        let replacement = FakeExecutor::new();
        let reassigned = Campaign::builder(demo_space(7), &replacement)
            .lease(Lease {
                id: 42,
                ..lease_range
            })
            .build()
            .run_with_state(&mut state);
        assert_eq!(
            reassigned.report.executed_now, 0,
            "reassigned lease adopts the previous worker's records"
        );
        assert_eq!(reassigned.report.records, first.report.records);
        assert_eq!(replacement.executions.load(Ordering::Relaxed), 0);

        // A *different* range must not adopt them.
        let other = FakeExecutor::new();
        let disjoint = Campaign::builder(demo_space(7), &other)
            .lease(Lease {
                id: 43,
                start: 5,
                end: 7,
            })
            .build()
            .run_with_state(&mut state);
        assert_eq!(disjoint.report.executed_now, 4, "new range starts fresh");
    }

    #[test]
    fn broadcast_signatures_steer_without_changing_records_or_re_announcing() {
        // Baseline: no hints.
        let executor = FakeExecutor::new();
        let baseline = Campaign::builder(demo_space(6), &executor)
            .build()
            .run_to_completion();

        // Seed one of the signatures the run itself will find (offset 0
        // crashes at 100) plus a foreign one it never will.
        let known = vec![
            crate::triage::CrashSignature {
                target: "demo".into(),
                function: "read".into(),
                module: "demo".into(),
                offset: 100,
                frame: Some("victim".into()),
            },
            crate::triage::CrashSignature {
                target: "other".into(),
                function: "write".into(),
                module: "other".into(),
                offset: 999,
                frame: None,
            },
        ];
        let seeded_executor = FakeExecutor::new();
        let log = EventLog::new();
        let seeded = Campaign::builder(demo_space(6), &seeded_executor)
            .known_signatures(known)
            .events(&log)
            .build()
            .run_to_completion();
        assert_eq!(
            seeded.report.records, baseline.report.records,
            "hints must never change results"
        );
        assert_eq!(
            log.count(|e| matches!(e, CampaignEvent::CrashFound(_))),
            baseline.report.triage.distinct_crashes() - 1,
            "the pre-seeded signature is not re-announced"
        );
    }

    #[test]
    #[should_panic(expected = "invalid campaign lease")]
    fn building_with_an_empty_lease_panics() {
        let executor = FakeExecutor::new();
        let _ = Campaign::builder(demo_space(3), &executor)
            .lease(Lease {
                id: 0,
                start: 2,
                end: 2,
            })
            .build();
    }

    #[test]
    fn outcomes_round_trip_through_persisted_state() {
        let executor = FakeExecutor::new();
        let count = 2;
        let mut outcomes = Vec::new();
        for index in 0..count {
            let driver = Campaign::builder(demo_space(5), &executor)
                .shard(ShardSpec::new(index, count).unwrap())
                .build();
            let mut state = CampaignState::default();
            let live = driver.run_with_state(&mut state);
            // The cross-process handoff: state → JSON → ShardOutcome.
            let parsed = CampaignState::from_json(&state.to_json()).unwrap();
            let outcome = ShardOutcome::from_state(&parsed).unwrap();
            assert_eq!(outcome.shard, live.shard);
            assert_eq!(outcome.tag, live.tag);
            assert_eq!(outcome.seed, live.seed);
            assert_eq!(
                outcome.report.strategy, "exhaustive",
                "strategy fingerprint recovered from the tag"
            );
            assert_eq!(outcome.report.records, live.report.records);
            assert_eq!(outcome.report.triage, live.report.triage);
            outcomes.push(outcome);
        }
        let executor_full = FakeExecutor::new();
        let unsharded = Campaign::builder(demo_space(5), &executor_full)
            .build()
            .run_to_completion();
        let merged = CampaignReport::merge(outcomes).unwrap();
        assert_eq!(merged.records, unsharded.report.records);
        assert_eq!(merged.triage, unsharded.report.triage);
    }
}
