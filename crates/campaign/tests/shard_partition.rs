//! Property tests for shard determinism: for **any** shard count, the
//! per-shard unit-id sets partition the unsharded unit set exactly — their
//! union is the full set and no unit appears in two shards. This is the
//! invariant `CampaignReport::merge` builds on, so it must hold for every
//! space shape (uneven workload suites, multiple targets) and survive the
//! strategy's scheduling.

use std::collections::BTreeSet;

use lfi_campaign::{
    Campaign, CampaignReport, Execution, Executor, FaultPoint, FaultSpace, OutcomeKind,
    RandomSample, ShardOutcome, ShardSpec, WorkUnit,
};
use proptest::prelude::*;

/// A synthetic executor whose workload-suite size differs per target, so
/// canonical unit ids are not a multiple of the point index and the
/// round-robin point partition maps onto *uneven* unit slices.
struct UnevenExecutor;

impl Executor for UnevenExecutor {
    fn workloads(&self, target: &str) -> Vec<Vec<String>> {
        let suite = match target {
            "alpha" => 1,
            "beta" => 3,
            _ => 2,
        };
        (0..suite).map(|w| vec![format!("w{w}")]).collect()
    }

    fn execute(&self, unit: &WorkUnit) -> Execution {
        Execution {
            outcome: if unit.point.offset.is_multiple_of(12) {
                OutcomeKind::Crashed
            } else {
                OutcomeKind::Passed
            },
            injections: 1,
            injected_sites: vec![],
            crashes: if unit.point.offset.is_multiple_of(12) {
                vec![lfi_campaign::CrashInfo {
                    module: unit.point.target.clone(),
                    offset: unit.point.offset + 1,
                    description: "segfault".into(),
                    in_function: None,
                    backtrace: vec!["main".into()],
                }]
            } else {
                vec![]
            },
            virtual_time: 1,
        }
    }
}

/// A space of `points` fault points cycling over three targets with
/// different suite sizes.
fn uneven_space(points: usize) -> FaultSpace {
    let targets = ["alpha", "beta", "gamma"];
    FaultSpace {
        points: (0..points)
            .map(|i| FaultPoint {
                target: targets[i % targets.len()].to_string(),
                function: "read".into(),
                offset: (i as u64) * 4,
                caller: Some("main".into()),
                retval: -1,
                ..FaultPoint::default()
            })
            .collect(),
    }
}

fn executed_units(report: &CampaignReport) -> BTreeSet<usize> {
    report.records.iter().map(|r| r.unit).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any shard count 1..=8 and any space size, the shards' executed
    /// unit-id sets are pairwise disjoint and their union equals the
    /// unsharded set — and the merged outcomes reproduce the unsharded
    /// records byte for byte.
    #[test]
    fn shards_partition_the_unsharded_unit_set(points in 1usize..40, count in 1usize..9) {
        let executor = UnevenExecutor;
        let unsharded = Campaign::builder(uneven_space(points), &executor)
            .build()
            .run_to_completion();
        let full_set = executed_units(&unsharded.report);

        let mut union: BTreeSet<usize> = BTreeSet::new();
        let mut outcomes: Vec<ShardOutcome> = Vec::new();
        for index in 0..count {
            let outcome = Campaign::builder(uneven_space(points), &executor)
                .shard(ShardSpec::new(index, count).unwrap())
                .build()
                .run_to_completion();
            let slice = executed_units(&outcome.report);
            prop_assert!(
                union.is_disjoint(&slice),
                "shard {index}/{count} overlaps earlier shards"
            );
            union.extend(&slice);
            outcomes.push(outcome);
        }
        prop_assert_eq!(&union, &full_set, "union of shard slices == unsharded set");

        let merged = CampaignReport::merge(outcomes).unwrap();
        prop_assert_eq!(&merged.records, &unsharded.report.records);
        prop_assert_eq!(&merged.triage, &unsharded.report.triage);
    }

    /// The partition also holds when the strategy only covers part of the
    /// space: a seed-deterministic random sample explores the same point
    /// set sharded or not, so shard slices of the sample still partition
    /// the sampled units.
    #[test]
    fn sampled_schedules_shard_to_the_same_covered_set(points in 4usize..32, count in 2usize..5) {
        let executor = UnevenExecutor;
        let sample = RandomSample { count: points / 2, seed: 11 };
        let unsharded = Campaign::builder(uneven_space(points), &executor)
            .strategy(sample)
            .build()
            .run_to_completion();

        let mut union: BTreeSet<usize> = BTreeSet::new();
        let mut total = 0usize;
        for index in 0..count {
            let outcome = Campaign::builder(uneven_space(points), &executor)
                .strategy(sample)
                .shard(ShardSpec::new(index, count).unwrap())
                .build()
                .run_to_completion();
            total += outcome.report.records.len();
            union.extend(executed_units(&outcome.report));
        }
        prop_assert_eq!(total, union.len(), "no unit ran on two shards");
        prop_assert_eq!(&union, &executed_units(&unsharded.report));
    }
}
