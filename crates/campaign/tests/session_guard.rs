//! Guard rails on session preparation: a `(target, workload)` pair whose
//! shared prefix terminates abnormally — crash, block, or instruction
//! budget — must refuse to snapshot and fall back to fresh execution,
//! exactly like the consumed-randomness case. Before these guards,
//! `build_session` inspected only the RNG: a prefix that crashed during
//! setup (or spent the whole budget) was happily snapshotted, and every
//! fork replayed the crash (or ran with zero budget) instead of the fresh
//! run's behavior.

use lfi_campaign::{Campaign, CampaignReport, ExecBackend, FaultSpace, StandardExecutor};
use lfi_cc::Compiler;
use lfi_core::{Controller, RunToCompletion, TestConfig};
use lfi_obj::{Module, ModuleKind};
use lfi_targets::{git_lite, standard_controller, FsSetupWorkload};
use lfi_vm::RunExit;

/// A stub library exposing one injectable function.
fn stub_lib() -> Module {
    Compiler::new("stublib", ModuleKind::SharedLib)
        .add_source(
            "stub.c",
            r#"
            int my_open(int path) {
                return 3;
            }
            "#,
        )
        .compile()
        .expect("stub library compiles")
}

fn controller() -> Controller {
    let mut controller = Controller::new();
    controller.add_library(stub_lib());
    controller
}

fn prep_app(source: &str, config: &TestConfig) -> lfi_core::SessionPrep {
    let exe = Compiler::new("app", ModuleKind::Executable)
        .needs("stublib")
        .add_source("app.c", source)
        .compile()
        .expect("app compiles");
    let controller = controller();
    let functions = vec!["my_open".to_string()];
    let image = controller.build_image(&exe, &functions).expect("load");
    controller.prepare_session(image, &functions, &mut RunToCompletion, config)
}

/// The regression case: setup crashes before the first injectable call.
/// The prep must report the fault and refuse to hand out a fork budget.
#[test]
fn a_prefix_that_crashes_before_the_first_injectable_call_refuses_to_snapshot() {
    let config = TestConfig::default();
    let prep = prep_app(
        r#"
        int main() {
            int p = 0;
            int x = *p;
            return my_open(x);
        }
        "#,
        &config,
    );
    assert!(
        matches!(prep.prefix_exit, RunExit::Fault(_)),
        "the prefix crashed: {:?}",
        prep.prefix_exit
    );
    assert_eq!(
        prep.fork_budget(config.max_instructions),
        None,
        "a crashed prefix must not be forked"
    );
}

/// The healthy counterpart: a prefix that pauses at the injectable call
/// does get a positive fork budget.
#[test]
fn a_prefix_paused_at_an_injectable_call_gets_a_positive_fork_budget() {
    let config = TestConfig::default();
    let prep = prep_app(
        r#"
        int main() {
            return my_open(0);
        }
        "#,
        &config,
    );
    assert_eq!(prep.prefix_exit, RunExit::Paused);
    assert_eq!(prep.paused_at.as_deref(), Some("my_open"));
    let budget = prep.fork_budget(config.max_instructions);
    assert!(budget.is_some_and(|left| left > 0), "budget: {budget:?}");
    // The same prep under an exhausted total budget refuses: zero left is
    // a refusal, not a zero-instruction session.
    assert_eq!(prep.fork_budget(prep.instructions_used), None);
    assert_eq!(
        prep.fork_budget(prep.instructions_used.saturating_sub(1)),
        None
    );
    assert_eq!(prep.fork_budget(prep.instructions_used + 1), Some(1));
}

/// A budget too small to reach the first injectable call ends the prefix
/// in `RunExit::Budget` — also a refusal.
#[test]
fn a_prefix_that_exhausts_its_budget_refuses_to_snapshot() {
    let config = TestConfig {
        max_instructions: 5,
        ..TestConfig::default()
    };
    let prep = prep_app(
        r#"
        int main() {
            return my_open(0);
        }
        "#,
        &config,
    );
    assert_eq!(prep.prefix_exit, RunExit::Budget);
    assert_eq!(prep.fork_budget(config.max_instructions), None);
}

/// One run of a restricted git-lite space under an explicit per-run
/// instruction budget.
fn run_budgeted(max_instructions: u64, backend: ExecBackend) -> (CampaignReport, usize) {
    let mut executor = StandardExecutor::new(&["git-lite"]);
    executor.set_max_instructions(max_instructions);
    let profile = standard_controller().profile_libraries();
    let mut space: FaultSpace = executor.fault_space(&["git-lite"], &profile);
    space.retain(|p| p.function == "opendir");
    assert!(!space.is_empty());
    let driver = Campaign::builder(space, &executor)
        .jobs(2)
        .seed(7)
        .backend(backend)
        .build();
    let report = driver.run_to_completion().report;
    (report, executor.sessions_prepared())
}

/// Differential test at the budget boundary: for budgets straddling the
/// prefix cost — smaller, exactly equal, one past, comfortably past, and
/// the default — fresh and snapshot triage must agree record for record.
/// The exact-boundary case is the old `budget_left: saturating_sub(..)`
/// bug: a session whose prefix consumed the entire budget was memoized
/// with zero instructions left, and its forks hung where fresh runs
/// reported the prefix's own termination.
#[test]
fn fresh_and_snapshot_backends_agree_at_the_budget_boundary() {
    // Measure the prefix cost of one git-lite workload the same way the
    // executor's session preparation does.
    let controller = standard_controller();
    let functions = controller.profile_libraries().failing_functions();
    let image = controller
        .build_image(&git_lite(), &functions)
        .expect("git-lite loads");
    let config = TestConfig {
        args: vec!["init".into()],
        record_coverage: true,
        ..TestConfig::default()
    };
    let prep = controller.prepare_session(image, &functions, &mut FsSetupWorkload, &config);
    assert_eq!(prep.prefix_exit, RunExit::Paused);
    let prefix_cost = prep.instructions_used;
    assert!(prefix_cost > 0);

    for budget in [
        prefix_cost / 2,
        prefix_cost,
        prefix_cost + 1,
        prefix_cost + 5_000,
        TestConfig::default().max_instructions,
    ] {
        let (fresh, fresh_sessions) = run_budgeted(budget, ExecBackend::Fresh);
        let (snapshot, snapshot_sessions) = run_budgeted(budget, ExecBackend::Snapshot);
        assert_eq!(fresh_sessions, 0);
        assert_eq!(
            fresh.records, snapshot.records,
            "records diverged at budget {budget} (prefix cost {prefix_cost})"
        );
        assert_eq!(fresh.triage.buckets, snapshot.triage.buckets);
        if budget <= prefix_cost {
            // The "init" workload's prefix cannot both fit the budget and
            // leave instructions over, so its session must be refused (the
            // other six workloads may have cheaper prefixes and are free to
            // snapshot or refuse on their own merits — parity above is the
            // real check).
            assert!(
                snapshot_sessions < 7,
                "the init session must refuse at budget {budget}"
            );
        }
    }
}
