//! Event-stream guarantees on a real parallel campaign: a git-lite run at
//! `jobs > 1` streamed through a [`JsonlSink`], with the documented
//! ordering invariants checked against the decoded line sequence —
//! interleaving across workers is allowed, but the per-unit and per-batch
//! ordering (and `ShardFinished` last) must survive the worker pool.

use std::collections::BTreeMap;
use std::time::Duration;

use lfi_campaign::{Campaign, CampaignEvent, ExecBackend, JsonlSink, StandardExecutor, Telemetry};
use lfi_targets::standard_controller;

fn git_space(executor: &StandardExecutor) -> lfi_campaign::FaultSpace {
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(&["git-lite"], &profile);
    space.retain(|p| matches!(p.function.as_str(), "opendir" | "setenv" | "readlink"));
    space
}

#[test]
fn parallel_run_streams_ordered_decodable_events() {
    let dir = std::env::temp_dir().join(format!("lfi-events-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");

    let executor = StandardExecutor::new(&["git-lite"]);
    let space = git_space(&executor);
    let sink = JsonlSink::create(&path).unwrap();
    let report = Campaign::builder(space, &executor)
        .jobs(4)
        .seed(7)
        .backend(ExecBackend::Snapshot)
        // A zero interval forces heartbeats between units, so the stream
        // exercises the asynchronous telemetry events too.
        .heartbeat(Some(Duration::ZERO))
        .events(&sink)
        .build()
        .run_to_completion()
        .report;
    assert!(sink.take_error().is_none());
    drop(sink);

    // Every line decodes; the stream is the wire format, not a log.
    let text = std::fs::read_to_string(&path).unwrap();
    let events: Vec<CampaignEvent> = text
        .lines()
        .map(|line| {
            CampaignEvent::from_json_line(line)
                .unwrap_or_else(|err| panic!("undecodable line {line}: {}", err.message))
        })
        .collect();
    std::fs::remove_dir_all(&dir).ok();

    // ShardFinished is the last event, exactly once.
    assert!(
        matches!(events.last(), Some(CampaignEvent::ShardFinished { .. })),
        "stream must end with shard_finished"
    );
    let finishes = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::ShardFinished { .. }))
        .count();
    assert_eq!(finishes, 1);

    // Per-unit ordering: every unit's Started precedes its Finished, and
    // both appear after the first BatchPlanned.
    let mut started_at: BTreeMap<usize, usize> = BTreeMap::new();
    let mut finished_at: BTreeMap<usize, usize> = BTreeMap::new();
    let mut first_batch = None;
    for (position, event) in events.iter().enumerate() {
        match event {
            CampaignEvent::BatchPlanned { .. } => {
                first_batch.get_or_insert(position);
            }
            CampaignEvent::UnitStarted { unit, .. } => {
                assert!(started_at.insert(*unit, position).is_none());
            }
            CampaignEvent::UnitFinished {
                record,
                duration_micros,
            } => {
                assert!(finished_at.insert(record.unit, position).is_none());
                // Wall-clock unit durations come from a monotonic clock;
                // a real git-lite run cannot take zero microseconds.
                assert!(*duration_micros > 0, "unit {} took 0us", record.unit);
            }
            _ => {}
        }
    }
    assert_eq!(started_at.len(), report.executed_now);
    assert_eq!(finished_at.len(), report.executed_now);
    let planned = first_batch.expect("a batch was planned");
    for (unit, start) in &started_at {
        let finish = finished_at[unit];
        assert!(planned < *start, "unit {unit} started before any batch");
        assert!(*start < finish, "unit {unit} finished before it started");
    }

    // With a zero heartbeat interval and jobs > 1, heartbeats flowed, and
    // each carried a metrics capture from the instrumented executor.
    let heartbeats: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            CampaignEvent::Heartbeat {
                units_done,
                metrics,
                ..
            } => Some((*units_done, metrics)),
            _ => None,
        })
        .collect();
    assert!(!heartbeats.is_empty(), "zero interval must emit heartbeats");
    assert!(
        heartbeats
            .iter()
            .any(|(_, metrics)| metrics.counter("units_executed") > 0),
        "heartbeat metrics must carry driver counters"
    );
    // units_done is monotonic across the stream.
    let mut last_done = 0;
    for (done, _) in &heartbeats {
        assert!(*done >= last_done, "heartbeat progress went backwards");
        last_done = *done;
    }

    // The executor's registry fed the report too: forks were counted and
    // the crash signatures the report triaged were announced as events.
    let metrics = report.metrics.expect("default executor telemetry is on");
    assert!(metrics.counter("tree_fork_hits") + metrics.counter("tree_fork_misses") > 0);
    let announced = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::CrashFound(_)))
        .count();
    assert_eq!(announced, report.triage.distinct_crashes());
}

#[test]
fn disabled_telemetry_omits_report_metrics() {
    let mut executor = StandardExecutor::new(&["git-lite"]);
    executor.set_telemetry(Telemetry::disabled());
    let space = git_space(&executor);
    let report = Campaign::builder(space, &executor)
        .jobs(2)
        .seed(7)
        .build()
        .run_to_completion()
        .report;
    assert!(report.metrics.is_none());
    assert!(report.triage.crashes > 0, "run still finds the crash");
}
