//! End-to-end campaign tests against a real target program.

use lfi_campaign::{Campaign, CampaignState, InjectionGuided, StandardExecutor};
use lfi_targets::standard_controller;

/// Build a small but real fault space: git-lite restricted to the functions
/// behind its Table 1 bugs (plus one that never fails a run).
fn git_space(executor: &StandardExecutor) -> lfi_campaign::FaultSpace {
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(&["git-lite"], &profile);
    space.retain(|p| matches!(p.function.as_str(), "opendir" | "setenv" | "readlink"));
    space
}

#[test]
fn campaign_finds_the_git_readdir_bug_and_triages_it() {
    let executor = StandardExecutor::new(&["git-lite"]);
    let space = git_space(&executor);
    assert!(!space.is_empty());
    let driver = Campaign::builder(space, &executor).jobs(2).seed(7).build();
    let mut state = CampaignState::default();
    let report = driver.run_with_state(&mut state).report;

    assert_eq!(report.executed_now, report.units_total);
    assert!(report.triage.crashes > 0, "opendir injection must crash");
    // The readdir-after-failed-opendir crash collapses into a signature
    // attributed to the opendir injection.
    assert!(
        report
            .triage
            .buckets
            .iter()
            .any(|b| b.signature.function == "opendir"),
        "expected an opendir crash signature, got: {report}"
    );

    // Resuming from persisted state re-executes nothing and reproduces the
    // same triage.
    let mut resumed = CampaignState::from_json(&state.to_json()).unwrap();
    let again = driver.run_with_state(&mut resumed).report;
    assert_eq!(again.executed_now, 0);
    assert_eq!(again.records, report.records);
}

#[test]
fn guided_explores_fewer_units_without_losing_the_crash() {
    let executor = StandardExecutor::new(&["db-lite"]);

    // db-lite: the close/pthread_mutex_unlock fault points include call
    // sites the default suite never reaches — exactly what InjectionGuided
    // prunes (a pruned, unreached site can never inject, so no crash is
    // lost).
    let profile = standard_controller().profile_libraries();
    let mut exhaustive_space = executor.fault_space(&["db-lite"], &profile);
    exhaustive_space.retain(|p| {
        matches!(
            p.function.as_str(),
            "close" | "pthread_mutex_unlock" | "read"
        )
    });
    executor.annotate_baseline_reachability(&mut exhaustive_space, 7);
    let guided_space = exhaustive_space.clone();

    let exhaustive = Campaign::builder(exhaustive_space, &executor)
        .jobs(2)
        .seed(7)
        .build()
        .run_to_completion()
        .report;

    let guided = Campaign::builder(guided_space, &executor)
        .strategy(InjectionGuided)
        .jobs(2)
        .seed(7)
        .build()
        .run_to_completion()
        .report;

    assert!(
        guided.units_total < exhaustive.units_total,
        "guided ({}) must prune units vs exhaustive ({})",
        guided.units_total,
        exhaustive.units_total
    );
    let signatures = |r: &lfi_campaign::CampaignReport| {
        r.triage
            .buckets
            .iter()
            .map(|b| b.signature.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        signatures(&guided),
        signatures(&exhaustive),
        "pruning unreached fault points must not lose crashes"
    );
}
