//! Property test for the supervisor control wire format:
//! `decode(encode(m)) == m` for every variant of [`ControlMessage`] over
//! generated payloads — arbitrary lease ids and ranges, and
//! identifier-ish signature strings (exercising JSON string escaping).
//! Control lines flow from the supervisor to worker stdin as a
//! cross-process protocol, so the codec must be total in both
//! directions, exactly like the event stream it travels beside.

use lfi_campaign::{ControlMessage, CrashSignature, Lease};
use proptest::option;
use proptest::prelude::*;

/// Identifier-ish strings (function names, targets, modules).
fn name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_.-]{0,11}"
}

fn lease() -> impl Strategy<Value = Lease> {
    (any::<u64>(), 0usize..10_000, 1usize..64).prop_map(|(id, start, len)| Lease {
        id,
        start,
        end: start + len,
    })
}

fn signature() -> impl Strategy<Value = CrashSignature> {
    (name(), name(), name(), any::<u64>(), option::of(name())).prop_map(
        |(target, function, module, offset, frame)| CrashSignature {
            target,
            function,
            module,
            offset,
            frame,
        },
    )
}

fn message() -> BoxedStrategy<ControlMessage> {
    prop_oneof![
        lease().prop_map(ControlMessage::Lease),
        any::<u64>().prop_map(|lease| ControlMessage::Revoke { lease }),
        signature().prop_map(ControlMessage::SignatureBroadcast),
        Just(ControlMessage::Shutdown),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every generated control message survives the JSONL wire format
    /// exactly, and the encoded line never contains an interior newline
    /// (the framing invariant the worker's stdin reader relies on).
    #[test]
    fn every_control_message_round_trips_through_the_wire_format(message in message()) {
        let line = message.to_json_line();
        prop_assert!(!line.contains('\n'), "JSONL framing: no interior newlines");
        let decoded = ControlMessage::from_json_line(&line)
            .unwrap_or_else(|err| panic!("decoding {line}: {}", err.message));
        prop_assert_eq!(decoded, message);
    }
}
