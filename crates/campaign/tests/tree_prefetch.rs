//! Concurrency stress for the shared-deepening claims table and batch
//! prefetch: many workers hammering [`Executor::execute_from`] and
//! [`Executor::prefetch_batch`] over **one** shared session must never
//! duplicate a tree depth or throw a deepening run away — and a full
//! jobs=4 campaign with prefetch on must stay record-identical to the
//! flat single-snapshot session model.

use lfi_campaign::{
    derive_seed, Campaign, ExecBackend, Executor, FaultSpace, PrefetchKey, StandardExecutor,
    WorkUnit,
};
use lfi_targets::standard_controller;

/// Functions sitting at different first-call depths in the git-lite
/// workloads, so deepening has real work to race over.
const FUNCTIONS: [&str; 5] = ["opendir", "setenv", "readlink", "close", "read"];

fn git_space(executor: &StandardExecutor) -> FaultSpace {
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(&["git-lite"], &profile);
    space.retain(|p| FUNCTIONS.contains(&p.function.as_str()));
    space
}

/// Every resident tree depth across every prepared session, asserting no
/// session holds two nodes at the same depth (a lost deepening race would
/// materialize duplicates before one copy is discarded).
fn assert_no_duplicate_depths(executor: &StandardExecutor) {
    for depths in executor.session_node_depths() {
        let mut dedup = depths.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            depths.len(),
            "a session tree holds duplicate depths: {depths:?}"
        );
    }
}

/// Four workers interleaving direct `execute_from` calls with whole-batch
/// `prefetch_batch` hints against a single prepared session. The claims
/// table must serialize the deepening walks (discarded reads 0) while the
/// node set stays duplicate-free.
#[test]
fn concurrent_forks_and_prefetch_share_one_deepening_walk() {
    let executor = StandardExecutor::new(&["git-lite"]);
    let space = git_space(&executor);
    assert!(!space.is_empty());

    // One workload → one shared session for every unit below.
    let args = executor.workloads("git-lite").remove(0);
    let units: Vec<WorkUnit> = space
        .points
        .iter()
        .enumerate()
        .map(|(id, point)| WorkUnit {
            id,
            point: point.clone(),
            scenario: point.scenario(),
            args: args.clone(),
            seed: derive_seed(7, id as u64),
        })
        .collect();
    let keys: Vec<PrefetchKey> = units
        .iter()
        .map(|unit| PrefetchKey {
            target: unit.point.target.clone(),
            args: unit.args.clone(),
            function: unit.point.function.clone(),
        })
        .collect();
    let session = executor
        .prepare("git-lite", &args)
        .expect("git-lite snapshots");

    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let (executor, session, units, keys) = (&executor, &session, &units, &keys);
            scope.spawn(move || {
                for round in 0..2usize {
                    // Half the workers lead each round with the batch
                    // hint, so prefetch walks race demand-driven forks.
                    if (worker + round) % 2 == 0 {
                        executor.prefetch_batch(keys, 4);
                    }
                    for unit in units {
                        executor.execute_from(session, unit);
                    }
                }
            });
        }
    });

    assert_no_duplicate_depths(&executor);
    let metrics = Executor::telemetry(&executor).snapshot();
    assert_eq!(
        metrics.counter("tree_deepen_discarded"),
        0,
        "the claims table must make lost deepening races impossible"
    );
    assert!(
        metrics.counter("tree_deepen_claimed") >= 1,
        "at least one worker claimed a deepening walk"
    );
    assert!(
        metrics.counter("tree_prefetch_nodes") + metrics.counter("tree_nodes_materialized") > 0,
        "deepening materialized nodes beyond the session root"
    );
}

/// The whole pipeline at jobs=4 — batch prefetch, reuse-aware ordering,
/// shared deepening — must remain a pure optimization: records identical
/// to the flat single-snapshot session model, zero discarded walks, no
/// duplicate depths.
#[test]
fn prefetching_campaign_matches_flat_sessions_at_four_jobs() {
    let run = |executor: &StandardExecutor| {
        let mut space = git_space(executor);
        executor.annotate_baseline_reachability(&mut space, 7);
        let driver = Campaign::builder(space, executor)
            .jobs(4)
            .seed(7)
            .backend(ExecBackend::Snapshot)
            .build();
        driver.run_to_completion().report
    };

    let tree_executor = StandardExecutor::new(&["git-lite"]);
    let tree = run(&tree_executor);
    assert_no_duplicate_depths(&tree_executor);
    let metrics = tree.metrics.as_ref().expect("telemetry on by default");
    assert_eq!(metrics.counter("tree_deepen_discarded"), 0);
    assert!(
        metrics.counter("tree_prefetch_runs") >= 1,
        "batch prefetch must claim deepening walks under the tree model"
    );

    let mut flat_executor = StandardExecutor::new(&["git-lite"]);
    flat_executor.set_max_session_depth(1);
    let flat = run(&flat_executor);

    assert_eq!(tree.records, flat.records);
    assert_eq!(tree.triage.buckets, flat.triage.buckets);
}
