//! Regression tests for checkpoint identity: a persisted campaign state
//! must only ever be resumed against the *exact* plan that produced it.
//!
//! Historically the state tag hashed only `(target, function, offset)`, so
//! a checkpoint could silently survive re-annotation, a changed fault
//! profile, or an edited workload suite — and attribute old records to the
//! wrong units. Each test here checkpoints a campaign, perturbs one
//! identity ingredient, resumes, and asserts the engine starts fresh.

use std::sync::atomic::{AtomicUsize, Ordering};

use lfi_analyzer::CallSiteClass;
use lfi_campaign::{
    Campaign, CampaignState, Execution, Executor, FaultPoint, FaultSpace, OutcomeKind,
    RandomSample, WorkUnit,
};

/// A synthetic executor with a configurable workload suite and an
/// execution counter.
struct CountingExecutor {
    suite: Vec<Vec<String>>,
    executions: AtomicUsize,
}

impl CountingExecutor {
    fn with_suite(suite: Vec<Vec<String>>) -> CountingExecutor {
        CountingExecutor {
            suite,
            executions: AtomicUsize::new(0),
        }
    }

    fn new() -> CountingExecutor {
        CountingExecutor::with_suite(vec![vec!["a".into()], vec!["b".into()]])
    }

    fn count(&self) -> usize {
        self.executions.load(Ordering::Relaxed)
    }
}

impl Executor for CountingExecutor {
    fn workloads(&self, _target: &str) -> Vec<Vec<String>> {
        self.suite.clone()
    }

    fn execute(&self, _unit: &WorkUnit) -> Execution {
        self.executions.fetch_add(1, Ordering::Relaxed);
        Execution {
            outcome: OutcomeKind::Passed,
            injections: 1,
            injected_sites: vec![],
            crashes: vec![],
            virtual_time: 1,
        }
    }
}

fn demo_space(points: usize) -> FaultSpace {
    FaultSpace {
        points: (0..points)
            .map(|i| FaultPoint {
                target: "demo".into(),
                function: "read".into(),
                offset: (i as u64) * 4,
                caller: Some("main".into()),
                retval: -1,
                ..FaultPoint::default()
            })
            .collect(),
    }
}

/// Run a campaign over `space`, checkpoint it through JSON, and hand back
/// the parsed state (as a resumed session would hold it).
fn checkpoint(space: FaultSpace, executor: &CountingExecutor) -> CampaignState {
    let driver = Campaign::builder(space, executor).build();
    let mut state = CampaignState::default();
    let report = driver.run_with_state(&mut state).report;
    assert_eq!(report.executed_now, report.units_total, "first run is full");
    CampaignState::from_json(&state.to_json()).unwrap()
}

#[test]
fn reannotating_the_space_invalidates_the_checkpoint() {
    let executor = CountingExecutor::new();
    let mut state = checkpoint(demo_space(3), &executor);
    assert_eq!(executor.count(), 6);

    // The analyzer re-ran and now classifies a call site: guided schedules
    // depend on that annotation, so the old records must not be reused.
    let mut reannotated = demo_space(3);
    reannotated.points[1].class = Some(CallSiteClass::Unchecked);
    let report = Campaign::builder(reannotated, &executor)
        .build()
        .run_with_state(&mut state)
        .report;
    assert_eq!(report.executed_now, 6, "annotation change starts fresh");
    assert_eq!(executor.count(), 12);

    // Same for baseline reachability.
    let mut rebaselined = demo_space(3);
    rebaselined.points[0].reached = Some(true);
    let report = Campaign::builder(rebaselined, &executor)
        .build()
        .run_with_state(&mut state)
        .report;
    assert_eq!(report.executed_now, 6, "reachability change starts fresh");
}

#[test]
fn changed_error_cases_invalidate_the_checkpoint() {
    let executor = CountingExecutor::new();
    let mut state = checkpoint(demo_space(3), &executor);

    // The fault profile now reports a different representative error case
    // for the same call site: same unit ids, different injected scenario.
    let mut reprofiled = demo_space(3);
    reprofiled.points[2].retval = 0;
    reprofiled.points[2].errno = Some(12);
    let report = Campaign::builder(reprofiled, &executor)
        .build()
        .run_with_state(&mut state)
        .report;
    assert_eq!(report.executed_now, 6, "error-case change starts fresh");
}

#[test]
fn growing_the_workload_suite_invalidates_the_checkpoint() {
    let executor = CountingExecutor::new();
    let mut state = checkpoint(demo_space(3), &executor);
    assert_eq!(executor.count(), 6, "3 points x 2 workloads");

    // The target's default test suite grew: unit ids shift under every
    // point after the first, so the checkpoint must be discarded and the
    // resumed run must cover the full new plan.
    let grown =
        CountingExecutor::with_suite(vec![vec!["a".into()], vec!["b".into()], vec!["c".into()]]);
    let report = Campaign::builder(demo_space(3), &grown)
        .build()
        .run_with_state(&mut state)
        .report;
    assert_eq!(report.units_total, 9, "3 points x 3 workloads");
    assert_eq!(
        report.executed_now, report.units_total,
        "resume after a suite change covers the full new plan"
    );
    assert_eq!(grown.count(), 9);
}

#[test]
fn seed_and_fingerprint_changes_invalidate_the_checkpoint() {
    let executor = CountingExecutor::new();
    let mut state = checkpoint(demo_space(3), &executor);

    // A different campaign seed derives different unit seeds: records from
    // the old seed are not comparable, so the state resets.
    let report = Campaign::builder(demo_space(3), &executor)
        .seed(8)
        .build()
        .run_with_state(&mut state)
        .report;
    assert_eq!(report.executed_now, 6, "seed change starts fresh");

    // A different strategy fingerprint (same space, same seed) does too.
    let report = Campaign::builder(demo_space(3), &executor)
        .seed(8)
        .strategy(RandomSample { count: 3, seed: 8 })
        .build()
        .run_with_state(&mut state)
        .report;
    assert_eq!(report.executed_now, 6, "fingerprint change starts fresh");
}

/// An executor that must never run: `execute` panics.
struct UnreachableExecutor;

impl Executor for UnreachableExecutor {
    fn workloads(&self, _target: &str) -> Vec<Vec<String>> {
        vec![vec!["a".into()], vec!["b".into()]]
    }

    fn execute(&self, unit: &WorkUnit) -> Execution {
        panic!("fully-resumed campaign executed unit {}", unit.id);
    }
}

#[test]
fn a_fully_resumed_campaign_spawns_no_workers_and_executes_nothing() {
    let executor = CountingExecutor::new();
    let state = checkpoint(demo_space(3), &executor);

    // Same plan, but an executor that panics on any execution: the resumed
    // run must make zero executor calls and spawn zero worker threads.
    let mut resumed = state;
    let report = Campaign::builder(demo_space(3), &UnreachableExecutor)
        .jobs(4)
        .seed(7)
        .build()
        .run_with_state(&mut resumed)
        .report;
    assert_eq!(report.executed_now, 0);
    assert_eq!(
        report.peak_workers, 0,
        "no thread spawned for empty pending"
    );
    assert_eq!(report.records.len(), 6, "resumed records are intact");
}
