//! Differential tests: the snapshot-fork backend must be a pure
//! performance optimization. For the same fault space, seed and strategy,
//! it has to produce exactly the same [`lfi_campaign::RunRecord`]s —
//! outcome, injected sites, crashes, virtual time — as fresh-VM execution,
//! unit for unit.

use lfi_campaign::{Campaign, CampaignReport, ExecBackend, FaultSpace, StandardExecutor};
use lfi_targets::standard_controller;

/// A Table 1 style space: the given targets restricted to the functions
/// behind their known bugs, annotated like the real hunt.
fn hunt_space(executor: &StandardExecutor, targets: &[&str], functions: &[&str]) -> FaultSpace {
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(targets, &profile);
    space.retain(|p| functions.contains(&p.function.as_str()));
    executor.annotate_baseline_reachability(&mut space, 7);
    space
}

fn run_with(
    executor: &StandardExecutor,
    space: &FaultSpace,
    jobs: usize,
    backend: ExecBackend,
) -> (CampaignReport, usize) {
    let driver = Campaign::builder(space.clone(), executor)
        .jobs(jobs)
        .seed(7)
        .backend(backend)
        .build();
    let report = driver.run_to_completion().report;
    let sessions = driver.campaign().prepared_sessions();
    (report, sessions)
}

fn assert_backends_agree(executor: &StandardExecutor, space: &FaultSpace, min_sessions: usize) {
    assert!(!space.is_empty());
    let (fresh, fresh_sessions) = run_with(executor, space, 2, ExecBackend::Fresh);
    let (snapshot, snapshot_sessions) = run_with(executor, space, 2, ExecBackend::Snapshot);
    assert_eq!(fresh_sessions, 0, "fresh backend must not prepare sessions");
    assert!(
        snapshot_sessions >= min_sessions,
        "snapshot backend prepared only {snapshot_sessions} sessions, expected >= {min_sessions}"
    );
    assert_eq!(fresh.executed_now, fresh.units_total, "all units ran");
    // Byte-for-byte identical records: same outcomes, same injection
    // counts, same injected call sites, same crash signatures and
    // backtraces, same virtual time.
    assert_eq!(fresh.records, snapshot.records);
    assert_eq!(fresh.triage.buckets, snapshot.triage.buckets);
}

#[test]
fn snapshot_forks_match_fresh_vms_on_git_lite() {
    let executor = StandardExecutor::new(&["git-lite"]);
    // The functions behind the Table 1 git bugs (opendir: readdir-null
    // crash; setenv: the silent commit data loss; readlink: checked site).
    let space = hunt_space(&executor, &["git-lite"], &["opendir", "setenv", "readlink"]);
    // 7 workloads in the git-lite suite, each with at least one unit.
    assert_backends_agree(&executor, &space, 7);
}

#[test]
fn snapshot_forks_match_fresh_vms_on_db_lite() {
    let executor = StandardExecutor::new(&["db-lite"]);
    // The MySQL-analogue bugs: double unlock, unchecked close, read errors.
    let space = hunt_space(
        &executor,
        &["db-lite"],
        &["pthread_mutex_unlock", "close", "read"],
    );
    assert_backends_agree(&executor, &space, 4);
}

#[test]
fn snapshot_forks_match_fresh_vms_on_the_networked_target() {
    let executor = StandardExecutor::new(&["bind-lite"]);
    // bind-lite runs behind its queued client workload: the snapshot must
    // capture the simulated network (pending queries) faithfully.
    let space = hunt_space(&executor, &["bind-lite"], &["malloc", "recvfrom", "open"]);
    assert_backends_agree(&executor, &space, 1);
}

/// The snapshot-tree extension: with deepening enabled (the default), the
/// executor keeps snapshots *beyond* the per-session roots — and the
/// records still match both the flat single-snapshot model
/// (`max_session_depth = 1`, the pre-tree behavior) and fresh VMs, byte
/// for byte.
#[test]
fn deep_snapshot_trees_match_flat_sessions_and_fresh_vms() {
    use lfi_campaign::Executor;

    // Functions chosen to sit at different first-call depths in the
    // git-lite workloads, so the tree genuinely deepens.
    let functions = &["opendir", "setenv", "readlink", "close", "read"];

    let tree_executor = StandardExecutor::new(&["git-lite"]);
    let space = hunt_space(&tree_executor, &["git-lite"], functions);
    let (tree, tree_sessions) = run_with(&tree_executor, &space, 2, ExecBackend::Snapshot);
    assert!(tree_sessions >= 7, "one session per git-lite workload");
    assert!(
        tree_executor.snapshot_nodes() > tree_sessions,
        "deepening must store nodes beyond the {tree_sessions} session roots, got {}",
        tree_executor.snapshot_nodes()
    );
    assert!(
        tree_executor.max_session_node_depth() > 1,
        "some resident snapshot must sit past the first injectable call"
    );
    assert!(
        tree_executor.snapshot_bytes() > 0,
        "resident nodes are charged against the snapshot budget"
    );

    let mut flat_executor = StandardExecutor::new(&["git-lite"]);
    flat_executor.set_max_session_depth(1);
    let flat_space = hunt_space(&flat_executor, &["git-lite"], functions);
    let (flat, flat_sessions) = run_with(&flat_executor, &flat_space, 2, ExecBackend::Snapshot);
    assert_eq!(
        flat_executor.snapshot_nodes(),
        flat_sessions,
        "depth 1 keeps exactly the roots"
    );
    assert_eq!(flat_executor.max_session_node_depth(), 1);

    let fresh_executor = StandardExecutor::new(&["git-lite"]);
    let fresh_space = hunt_space(&fresh_executor, &["git-lite"], functions);
    let (fresh, _) = run_with(&fresh_executor, &fresh_space, 2, ExecBackend::Fresh);

    assert_eq!(fresh.records, tree.records);
    assert_eq!(fresh.records, flat.records);
    assert_eq!(fresh.triage.buckets, tree.triage.buckets);
}

/// A starved snapshot budget forces constant eviction; results must not
/// change (eviction re-derives snapshots, never alters unit execution).
#[test]
fn a_tiny_snapshot_budget_only_costs_time_never_correctness() {
    use lfi_campaign::Executor;

    let starved = StandardExecutor::new(&["git-lite"]);
    let space = hunt_space(&starved, &["git-lite"], &["opendir", "setenv"]);
    let driver = Campaign::builder(space.clone(), &starved)
        .jobs(2)
        .seed(7)
        .backend(ExecBackend::Snapshot)
        .snapshot_budget(1) // below even one root: evict everything evictable
        .build();
    let starved_report = driver.run_to_completion().report;
    assert_eq!(
        starved.snapshot_nodes(),
        starved.sessions_prepared(),
        "a 1-byte budget keeps only the unevictable roots"
    );

    let roomy = StandardExecutor::new(&["git-lite"]);
    let roomy_space = hunt_space(&roomy, &["git-lite"], &["opendir", "setenv"]);
    let (roomy_report, _) = run_with(&roomy, &roomy_space, 2, ExecBackend::Snapshot);
    assert!(
        roomy.snapshot_bytes() > starved.snapshot_bytes(),
        "the default budget retains more resident bytes than the starved one"
    );
    assert_eq!(starved_report.records, roomy_report.records);
}

#[test]
fn cluster_targets_fall_back_to_fresh_execution() {
    let executor = StandardExecutor::new(&["bft-lite"]);
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(&["bft-lite"], &profile);
    space.retain(|p| matches!(p.function.as_str(), "fopen" | "fwrite"));
    assert!(!space.is_empty());

    let (fresh, _) = run_with(&executor, &space, 2, ExecBackend::Fresh);
    let (snapshot, sessions) = run_with(&executor, &space, 2, ExecBackend::Snapshot);
    assert_eq!(sessions, 0, "bft-lite cannot snapshot");
    assert_eq!(fresh.records, snapshot.records);
}
