//! Differential tests: the snapshot-fork backend must be a pure
//! performance optimization. For the same fault space, seed and strategy,
//! it has to produce exactly the same [`lfi_campaign::RunRecord`]s —
//! outcome, injected sites, crashes, virtual time — as fresh-VM execution,
//! unit for unit.

use lfi_campaign::{Campaign, CampaignReport, ExecBackend, FaultSpace, StandardExecutor};
use lfi_targets::standard_controller;

/// A Table 1 style space: the given targets restricted to the functions
/// behind their known bugs, annotated like the real hunt.
fn hunt_space(executor: &StandardExecutor, targets: &[&str], functions: &[&str]) -> FaultSpace {
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(targets, &profile);
    space.retain(|p| functions.contains(&p.function.as_str()));
    executor.annotate_baseline_reachability(&mut space, 7);
    space
}

fn run_with(
    executor: &StandardExecutor,
    space: &FaultSpace,
    jobs: usize,
    backend: ExecBackend,
) -> (CampaignReport, usize) {
    let driver = Campaign::builder(space.clone(), executor)
        .jobs(jobs)
        .seed(7)
        .backend(backend)
        .build();
    let report = driver.run_to_completion().report;
    let sessions = driver.campaign().prepared_sessions();
    (report, sessions)
}

fn assert_backends_agree(executor: &StandardExecutor, space: &FaultSpace, min_sessions: usize) {
    assert!(!space.is_empty());
    let (fresh, fresh_sessions) = run_with(executor, space, 2, ExecBackend::Fresh);
    let (snapshot, snapshot_sessions) = run_with(executor, space, 2, ExecBackend::Snapshot);
    assert_eq!(fresh_sessions, 0, "fresh backend must not prepare sessions");
    assert!(
        snapshot_sessions >= min_sessions,
        "snapshot backend prepared only {snapshot_sessions} sessions, expected >= {min_sessions}"
    );
    assert_eq!(fresh.executed_now, fresh.units_total, "all units ran");
    // Byte-for-byte identical records: same outcomes, same injection
    // counts, same injected call sites, same crash signatures and
    // backtraces, same virtual time.
    assert_eq!(fresh.records, snapshot.records);
    assert_eq!(fresh.triage.buckets, snapshot.triage.buckets);
}

#[test]
fn snapshot_forks_match_fresh_vms_on_git_lite() {
    let executor = StandardExecutor::new(&["git-lite"]);
    // The functions behind the Table 1 git bugs (opendir: readdir-null
    // crash; setenv: the silent commit data loss; readlink: checked site).
    let space = hunt_space(&executor, &["git-lite"], &["opendir", "setenv", "readlink"]);
    // 7 workloads in the git-lite suite, each with at least one unit.
    assert_backends_agree(&executor, &space, 7);
}

#[test]
fn snapshot_forks_match_fresh_vms_on_db_lite() {
    let executor = StandardExecutor::new(&["db-lite"]);
    // The MySQL-analogue bugs: double unlock, unchecked close, read errors.
    let space = hunt_space(
        &executor,
        &["db-lite"],
        &["pthread_mutex_unlock", "close", "read"],
    );
    assert_backends_agree(&executor, &space, 4);
}

#[test]
fn snapshot_forks_match_fresh_vms_on_the_networked_target() {
    let executor = StandardExecutor::new(&["bind-lite"]);
    // bind-lite runs behind its queued client workload: the snapshot must
    // capture the simulated network (pending queries) faithfully.
    let space = hunt_space(&executor, &["bind-lite"], &["malloc", "recvfrom", "open"]);
    assert_backends_agree(&executor, &space, 1);
}

#[test]
fn cluster_targets_fall_back_to_fresh_execution() {
    let executor = StandardExecutor::new(&["bft-lite"]);
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(&["bft-lite"], &profile);
    space.retain(|p| matches!(p.function.as_str(), "fopen" | "fwrite"));
    assert!(!space.is_empty());

    let (fresh, _) = run_with(&executor, &space, 2, ExecBackend::Fresh);
    let (snapshot, sessions) = run_with(&executor, &space, 2, ExecBackend::Snapshot);
    assert_eq!(sessions, 0, "bft-lite cannot snapshot");
    assert_eq!(fresh.records, snapshot.records);
}
