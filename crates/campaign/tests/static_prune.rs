//! Differential safety of the static-prune pass, on real targets.
//!
//! `FaultSpace::static_prune` demotes fault points whose error return the
//! interprocedural analysis proved handled. Demotion is a *priority*, not a
//! proof of safety: the paper's seeded mysql-double-unlock bug lives in the
//! recovery path of a checked `close` — exactly the kind of site the
//! analysis demotes — so a demoted unit can still find a bug. The pass
//! therefore claims two things, both checked here against git-lite and
//! db-lite:
//!
//! 1. **Demotion never removes a unit** — the exhaustive sweep still runs
//!    every demoted point, and at least one of them crashes (the
//!    double-unlock bug), proving that hard-dropping on the static verdict
//!    alone would lose a known bug.
//! 2. **No lost crashes** — a pruned adaptive campaign (which skips a
//!    demoted point only once a passing run, and no failure, in its caller
//!    neighborhood corroborates the proof) reports exactly the same crash
//!    signatures as the exhaustive sweep, in fewer units.

use std::collections::BTreeSet;

use lfi_campaign::{Campaign, CampaignReport, CoverageAdaptive, CrashSignature, StandardExecutor};
use lfi_targets::standard_controller;

fn signatures(report: &CampaignReport) -> Vec<CrashSignature> {
    report
        .triage
        .buckets
        .iter()
        .map(|b| b.signature.clone())
        .collect()
}

#[test]
fn static_prune_never_drops_a_bug_finding_unit() {
    let executor = StandardExecutor::new(&["git-lite", "db-lite"]);
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(&["git-lite", "db-lite"], &profile);
    executor.annotate_baseline_reachability(&mut space, 7);

    // The propagation pass must have found provably handled sites to
    // demote, or this differential proves nothing.
    let demoted: BTreeSet<(String, String, u64)> = space
        .points
        .iter()
        .filter(|p| p.demoted)
        .map(|p| (p.target.clone(), p.function.clone(), p.offset))
        .collect();
    assert!(
        !demoted.is_empty(),
        "static prune must demote at least one point on real targets"
    );

    let adaptive_space = space.clone();

    // Ground truth: the default exhaustive strategy runs every unit,
    // demoted or not.
    let exhaustive = Campaign::builder(space, &executor)
        .jobs(2)
        .seed(7)
        .build()
        .run_to_completion()
        .report;
    assert_eq!(exhaustive.executed_now, exhaustive.units_total);
    assert!(exhaustive.triage.crashes > 0, "the sweep must find bugs");

    // Every demoted point still executed, and at least one of them found a
    // bug (db-lite's checked `close` with the fatal double-unlock recovery
    // path) — demotion must stay a priority, never a drop.
    let mut demoted_executed = BTreeSet::new();
    let mut demoted_crashed = false;
    for record in &exhaustive.records {
        let key = (
            record.target.clone(),
            record.function.clone(),
            record.offset,
        );
        if demoted.contains(&key) {
            demoted_executed.insert(key);
            demoted_crashed |= record.outcome == lfi_campaign::OutcomeKind::Crashed;
        }
    }
    assert_eq!(
        demoted_executed, demoted,
        "the exhaustive sweep must execute every demoted point"
    );
    assert!(
        demoted_crashed,
        "a demoted (statically handled) point must still find the seeded \
         double-unlock bug — hard-dropping on the verdict would lose it"
    );

    // A pruned adaptive campaign skips corroborated demoted points but
    // must keep every crash signature.
    let adaptive = Campaign::builder(adaptive_space, &executor)
        .strategy(CoverageAdaptive {
            prune_saturated: true,
            ..CoverageAdaptive::default()
        })
        .jobs(2)
        .seed(7)
        .build()
        .run_to_completion()
        .report;
    assert!(
        adaptive.executed_now < exhaustive.executed_now,
        "pruned adaptive ({}) must run fewer units than exhaustive ({})",
        adaptive.executed_now,
        exhaustive.executed_now
    );
    assert_eq!(
        signatures(&adaptive),
        signatures(&exhaustive),
        "static pruning must not lose a crash signature"
    );
}
