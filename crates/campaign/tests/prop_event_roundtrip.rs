//! Property test for the campaign event wire format: `decode(encode(e))
//! == e` for *every* variant of [`CampaignEvent`] over generated payloads
//! — arbitrary offsets, durations, shard specs, metric snapshots, and
//! printable-ASCII strings (exercising JSON string escaping). The JSONL
//! streams are a cross-process protocol (`table1_bugs --events-jsonl` →
//! `campaign_status`), so the format must be total in both directions,
//! not merely round-trip on the handful of shapes unit tests pin.

use std::ops::Range;

use lfi_campaign::{
    CampaignEvent, CrashInfo, CrashSignature, InjectedSite, MetricsSnapshot, OutcomeKind,
    RunRecord, ShardSpec,
};
use lfi_telemetry::HistogramSnapshot;
use proptest::prelude::*;
use proptest::{collection, option};

/// Identifier-ish strings (function names, targets, modules).
fn name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_.-]{0,11}"
}

/// Free-form printable text (messages, descriptions, paths) — includes
/// quotes and backslashes, so JSON escaping is exercised.
fn text() -> impl Strategy<Value = String> {
    "\\PC{0,16}"
}

/// Metric values stay within `i64` so the snapshot encoding (which
/// saturates above `i64::MAX`) is lossless.
fn metric_value() -> Range<u64> {
    0u64..(1u64 << 62)
}

fn shard() -> impl Strategy<Value = ShardSpec> {
    (0usize..8, 1usize..9).prop_map(|(index, count)| ShardSpec::new(index % count, count).unwrap())
}

fn outcome() -> BoxedStrategy<OutcomeKind> {
    prop_oneof![
        Just(OutcomeKind::Passed),
        any::<i64>().prop_map(OutcomeKind::CleanFailure),
        Just(OutcomeKind::Crashed),
        Just(OutcomeKind::Hung),
    ]
    .boxed()
}

fn injected_site() -> impl Strategy<Value = InjectedSite> {
    (name(), any::<u64>(), option::of(name())).prop_map(|(module, offset, caller)| InjectedSite {
        module,
        offset,
        caller,
    })
}

fn crash_info() -> impl Strategy<Value = CrashInfo> {
    (
        name(),
        any::<u64>(),
        text(),
        option::of(name()),
        collection::vec(name(), 0..4),
    )
        .prop_map(
            |(module, offset, description, in_function, backtrace)| CrashInfo {
                module,
                offset,
                description,
                in_function,
                backtrace,
            },
        )
}

fn run_record() -> impl Strategy<Value = RunRecord> {
    (
        (any::<usize>(), name(), name(), any::<u64>()),
        collection::vec(text(), 0..4),
        outcome(),
        (any::<u64>(), any::<u64>()),
        collection::vec(injected_site(), 0..3),
        collection::vec(crash_info(), 0..3),
    )
        .prop_map(
            |(
                (unit, target, function, offset),
                args,
                outcome,
                (injections, virtual_time),
                injected_sites,
                crashes,
            )| RunRecord {
                unit,
                target,
                function,
                offset,
                args,
                outcome,
                injections,
                injected_sites,
                crashes,
                virtual_time,
            },
        )
}

fn histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        metric_value(),
        metric_value(),
        collection::vec((0u32..65, metric_value()), 0..6),
    )
        .prop_map(|(count, sum, mut buckets)| {
            // The capture type keeps buckets sorted and unique by index.
            buckets.sort_by_key(|&(index, _)| index);
            buckets.dedup_by_key(|&mut (index, _)| index);
            HistogramSnapshot {
                count,
                sum,
                buckets,
            }
        })
}

fn metrics() -> impl Strategy<Value = MetricsSnapshot> {
    (
        collection::btree_map(name(), metric_value(), 0..4),
        collection::btree_map(name(), metric_value(), 0..4),
        collection::btree_map(name(), histogram(), 0..3),
    )
        .prop_map(|(counters, gauges, histograms)| MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
}

fn event() -> BoxedStrategy<CampaignEvent> {
    prop_oneof![
        (
            any::<usize>(),
            any::<usize>(),
            any::<usize>(),
            any::<usize>()
        )
            .prop_map(
                |(batch, points, units, pending)| CampaignEvent::BatchPlanned {
                    batch,
                    points,
                    units,
                    pending,
                }
            ),
        (any::<usize>(), name(), name(), any::<u64>()).prop_map(
            |(unit, target, function, offset)| CampaignEvent::UnitStarted {
                unit,
                target,
                function,
                offset,
            }
        ),
        (run_record(), any::<u64>()).prop_map(|(record, duration_micros)| {
            CampaignEvent::UnitFinished {
                record,
                duration_micros,
            }
        }),
        (name(), name(), name(), any::<u64>(), option::of(name())).prop_map(
            |(target, function, module, offset, frame)| CampaignEvent::CrashFound(CrashSignature {
                target,
                function,
                module,
                offset,
                frame,
            })
        ),
        (text(), any::<usize>(), any::<u64>()).prop_map(
            |(path, completed, batch_duration_micros)| CampaignEvent::CheckpointWritten {
                path: path.into(),
                completed,
                batch_duration_micros,
            }
        ),
        (
            shard(),
            any::<usize>(),
            any::<usize>(),
            any::<u64>(),
            metrics()
        )
            .prop_map(
                |(shard, units_done, units_planned, milli_units_per_sec, metrics)| {
                    CampaignEvent::Heartbeat {
                        shard,
                        units_done,
                        units_planned,
                        milli_units_per_sec,
                        metrics,
                    }
                }
            ),
        (name(), text()).prop_map(|(source, message)| CampaignEvent::Note { source, message }),
        (shard(), any::<usize>(), any::<usize>()).prop_map(|(shard, executed, records)| {
            CampaignEvent::ShardFinished {
                shard,
                executed,
                records,
            }
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every generated event survives the JSONL wire format exactly, and
    /// the encoded line never contains an interior newline (the framing
    /// invariant `JsonlSink` and `campaign_status` rely on).
    #[test]
    fn every_event_round_trips_through_the_wire_format(event in event()) {
        let line = event.to_json_line();
        prop_assert!(!line.contains('\n'), "JSONL framing: no interior newlines");
        let decoded = CampaignEvent::from_json_line(&line)
            .unwrap_or_else(|err| panic!("decoding {line}: {}", err.message));
        prop_assert_eq!(decoded, event);
    }
}
