//! Differential tests for sharded campaigns against a real target:
//! running the git-lite space as two shards and merging the outcomes must
//! reproduce the unsharded run's records and triage **byte for byte** —
//! under every static strategy and under both execution backends, and
//! equally when the merge consumes persisted state files instead of live
//! outcomes (the cross-process workflow).

use lfi_campaign::{
    Campaign, CampaignReport, CampaignState, ExecBackend, Exhaustive, FaultSpace, InjectionGuided,
    RandomSample, ShardOutcome, ShardSpec, StandardExecutor, Strategy,
};
use lfi_targets::standard_controller;

/// The Table 1 git-lite slice: the functions behind its known bugs
/// (opendir: readdir-null crash; setenv: silent data loss; readlink:
/// checked site), annotated like the real hunt so guided pruning has
/// reachability to work with.
fn git_space(executor: &StandardExecutor) -> FaultSpace {
    let profile = standard_controller().profile_libraries();
    let mut space = executor.fault_space(&["git-lite"], &profile);
    space.retain(|p| matches!(p.function.as_str(), "opendir" | "setenv" | "readlink"));
    executor.annotate_baseline_reachability(&mut space, 7);
    space
}

fn strategy_of(name: &str) -> Box<dyn Strategy> {
    match name {
        "exhaustive" => Box::new(Exhaustive),
        "guided" => Box::new(InjectionGuided),
        "random" => Box::new(RandomSample { count: 9, seed: 7 }),
        other => panic!("unknown strategy {other}"),
    }
}

/// Run the space unsharded, then as `count` shards, and assert the merged
/// outcomes reproduce the unsharded report exactly.
fn assert_merge_matches_unsharded(strategy: &str, backend: ExecBackend, count: usize) {
    let executor = StandardExecutor::new(&["git-lite"]);
    let space = git_space(&executor);
    assert!(!space.is_empty());

    let unsharded = Campaign::builder(space.clone(), &executor)
        .boxed_strategy(strategy_of(strategy))
        .jobs(2)
        .seed(7)
        .backend(backend)
        .build()
        .run_to_completion();

    let mut outcomes = Vec::new();
    for index in 0..count {
        // Each shard gets its own executor: separate processes share
        // nothing, so the test must not either.
        let executor = StandardExecutor::new(&["git-lite"]);
        let outcome = Campaign::builder(space.clone(), &executor)
            .boxed_strategy(strategy_of(strategy))
            .jobs(2)
            .seed(7)
            .backend(backend)
            .shard(ShardSpec::new(index, count).unwrap())
            .build()
            .run_to_completion();
        outcomes.push(outcome);
    }

    let merged = CampaignReport::merge(outcomes).unwrap();
    assert_eq!(
        merged.records, unsharded.report.records,
        "{strategy}/{backend}: merged records differ from the unsharded run"
    );
    assert_eq!(
        merged.triage, unsharded.report.triage,
        "{strategy}/{backend}: merged triage differs from the unsharded run"
    );
    assert_eq!(merged.units_total, unsharded.report.units_total);
}

#[test]
fn merged_shards_match_unsharded_exhaustive() {
    assert_merge_matches_unsharded("exhaustive", ExecBackend::Fresh, 2);
}

#[test]
fn merged_shards_match_unsharded_guided() {
    assert_merge_matches_unsharded("guided", ExecBackend::Fresh, 2);
}

#[test]
fn merged_shards_match_unsharded_random() {
    assert_merge_matches_unsharded("random", ExecBackend::Fresh, 2);
}

#[test]
fn merged_shards_match_unsharded_on_the_snapshot_backend() {
    assert_merge_matches_unsharded("exhaustive", ExecBackend::Snapshot, 2);
}

#[test]
fn merged_shards_match_unsharded_with_three_shards() {
    assert_merge_matches_unsharded("guided", ExecBackend::Snapshot, 3);
}

/// The cross-process workflow: each shard persists its state as JSON, the
/// merge step parses the files back into outcomes — identical result.
#[test]
fn merge_from_persisted_states_matches_live_outcomes() {
    let executor = StandardExecutor::new(&["git-lite"]);
    let space = git_space(&executor);

    let unsharded = Campaign::builder(space.clone(), &executor)
        .jobs(2)
        .seed(7)
        .build()
        .run_to_completion();

    let mut parsed = Vec::new();
    for index in 0..2 {
        let executor = StandardExecutor::new(&["git-lite"]);
        let driver = Campaign::builder(space.clone(), &executor)
            .jobs(2)
            .seed(7)
            .shard(ShardSpec::new(index, 2).unwrap())
            .build();
        let mut state = CampaignState::default();
        driver.run_with_state(&mut state);
        let json = state.to_json();
        let state = CampaignState::from_json(&json).unwrap();
        parsed.push(ShardOutcome::from_state(&state).unwrap());
    }

    let merged = CampaignReport::merge(parsed).unwrap();
    assert_eq!(merged.records, unsharded.report.records);
    assert_eq!(merged.triage, unsharded.report.triage);
}
