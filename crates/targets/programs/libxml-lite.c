// libxml-lite: the xmlNewTextWriterDoc-style XML writer library that
// bind-lite's statistics channel uses. Its constructor can fail (returning
// NULL with errno), which is exactly the failure LFI injects to expose the
// BIND stats-channel bug of Table 1.

int xml_new_writer() {
    int w = malloc(512);
    if (w == 0) { errno = ENOMEM; return 0; }
    strcpy(w, "<statistics>");
    return w;
}

// Append `<key>value</key>` to the document under construction.
int xml_writer_add(int w, int key, int value) {
    strcat(w, "<");
    strcat(w, key);
    strcat(w, ">");
    int digits[4];
    itoa(value, digits);
    strcat(w, digits);
    strcat(w, "</");
    strcat(w, key);
    strcat(w, ">");
    return 0;
}

// Close the document; returns its total length in bytes.
int xml_writer_end(int w) {
    strcat(w, "</statistics>");
    return strlen(w);
}
