// db-lite: the MySQL analogue. A storage engine with OLTP transactions over
// /data/table.myd, fcntl-based locking, table creation under a mutex, and an
// error-message catalogue loaded at startup. Seeded with the two MySQL
// defects of Table 1:
//
//   * mysql-double-unlock — mi_create's close-failure cleanup path unlocks
//     a mutex it already released (glibc error-checking mutexes abort);
//   * mysql-errmsg-read   — init_errmsg never checks read's -1 error
//     return, leaving the message table NULL before it is dereferenced.

int thread_count = 1;
int shutdown_in_progress = 0;
int msg_ptrs[8];

// Load the errmsg.sys catalogue. BUG (mysql-errmsg-read): the read error
// return is not checked; when read fails, no messages are parsed and the
// greeting below dereferences a NULL entry.
int init_errmsg() {
    int fd = open("/share/errmsg.sys", O_RDONLY, 0);
    if (fd == -1) {
        print("no errmsg.sys\n");
        return -1;
    }
    int buf[64];
    int n = read(fd, buf, 400);
    int count = 0;
    int off = 0;
    while (off < n && count < 3) {
        msg_ptrs[count] = buf + off;
        count = count + 1;
        off = off + strlen(buf + off) + 1;
    }
    print("errmsg: ");
    print(msg_ptrs[0]);
    print("\n");
    close(fd);
    return count;
}

// Create a table file under the global DDL mutex. The close IS checked —
// but BUG (mysql-double-unlock): the cleanup path releases the mutex a
// second time, which is fatal.
int mi_create(int name) {
    pthread_mutex_lock(3);
    int fd = open(name, O_WRONLY | O_CREAT | O_TRUNC, 0);
    if (fd == -1) {
        pthread_mutex_unlock(3);
        return -1;
    }
    write(fd, "tbl", 3);
    pthread_mutex_unlock(3);
    if (close(fd) == -1) {
        pthread_mutex_unlock(3);
        return -1;
    }
    return 0;
}

// One OLTP transaction: lock, read a record, optionally write it back.
int do_txn(int id, int readonly) {
    int fd = open("/data/table.myd", O_RDWR, 0);
    if (fd == -1) { return -1; }
    fcntl(fd, F_GETLK, 0);
    int buf[16];
    lseek(fd, (id % 8) * 16, SEEK_SET);
    int n = read(fd, buf, 64);
    if (n == -1) {
        close(fd);
        return -1;
    }
    if (readonly == 0) {
        lseek(fd, (id % 8) * 16, SEEK_SET);
        write(fd, buf, 16);
    }
    fcntl(fd, F_SETLK, 0);
    close(fd);
    return 0;
}

int cmd_oltp(int txns, int readonly) {
    int i = 0;
    int failures = 0;
    while (i < txns) {
        if (do_txn(i, readonly) == -1) {
            failures = failures + 1;
        }
        i = i + 1;
    }
    print("oltp done\n");
    if (failures > txns / 2) { return 1; }
    return 0;
}

int cmd_merge_big(int tables) {
    int i = 0;
    while (i < tables) {
        int name[8];
        strcpy(name, "/data/t");
        int digits[4];
        itoa(i, digits);
        strcat(name, digits);
        mi_create(name);
        i = i + 1;
    }
    print("merged\n");
    return 0;
}

int cmd_bootstrap() {
    init_errmsg();
    mi_create("/data/bootstrap.myd");
    print("bootstrapped\n");
    return 0;
}

int main(int argc) {
    int cmd[8];
    if (argc < 1) {
        print("usage: db-lite <command>\n");
        return 1;
    }
    if (getenv_r("ARG0", cmd, 60) == -1) {
        print("usage: db-lite <command>\n");
        return 1;
    }
    shutdown_in_progress = 0;
    thread_count = 1;
    if (strcmp(cmd, "bootstrap") == 0) { return cmd_bootstrap(); }
    if (strcmp(cmd, "oltp") == 0) {
        int a1[8];
        int a2[8];
        if (getenv_r("ARG1", a1, 60) == -1) { return 1; }
        if (getenv_r("ARG2", a2, 60) == -1) { return 1; }
        int r = cmd_oltp(atoi(a1), atoi(a2));
        shutdown_in_progress = 1;
        return r;
    }
    if (strcmp(cmd, "merge-big") == 0) {
        int m1[8];
        if (getenv_r("ARG1", m1, 60) == -1) { return 1; }
        int mr = cmd_merge_big(atoi(m1));
        shutdown_in_progress = 1;
        return mr;
    }
    print("unknown command\n");
    return 1;
}
