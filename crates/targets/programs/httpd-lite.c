// httpd-lite: the Apache analogue used by the overhead experiments
// (Table 5). Serves `count` requests of one kind (1 = static HTML,
// 2 = PHP-style compute) from /www, reading files through the apr_file_read
// wrapper and processing every request under the accept mutex — the
// structure the paper's five-trigger stack (file-kind, caller, program
// state, with-mutex) keys on.

int requests_done = 0;

// APR-style read wrapper: logs read errors and keeps serving.
int apr_file_read(int fd, int buf, int cap) {
    int n = read(fd, buf, cap);
    if (n == -1) {
        print("read error\n");
        return -1;
    }
    return n;
}

int handle_static(int path) {
    int fd = open(path, O_RDONLY, 0);
    if (fd == -1) {
        print("404\n");
        return -1;
    }
    int buf[150];
    int total = 0;
    int n = apr_file_read(fd, buf, 1000);
    while (n > 0) {
        total = total + n;
        n = apr_file_read(fd, buf, 1000);
    }
    close(fd);
    return total;
}

int run_php(int path) {
    int fd = open(path, O_RDONLY, 0);
    if (fd == -1) {
        print("404\n");
        return -1;
    }
    int buf[150];
    apr_file_read(fd, buf, 1000);
    close(fd);
    int i = 0;
    int acc = 0;
    while (i < 200) {
        acc = acc + i * i;
        i = i + 1;
    }
    return acc;
}

int ap_process_request_internal(int kind) {
    pthread_mutex_lock(1);
    int r = 0;
    if (kind == 1) { r = handle_static("/www/index.html"); }
    if (kind == 2) { r = run_php("/www/page.php"); }
    requests_done = requests_done + 1;
    pthread_mutex_unlock(1);
    return r;
}

int main(int argc) {
    int a0[8];
    int a1[8];
    int count = 10;
    int kind = 1;
    if (argc > 0) {
        if (getenv_r("ARG0", a0, 60) == -1) { return 1; }
        count = atoi(a0);
    }
    if (argc > 1) {
        if (getenv_r("ARG1", a1, 60) == -1) { return 1; }
        kind = atoi(a1);
    }
    pthread_mutex_init(1);
    int i = 0;
    while (i < count) {
        ap_process_request_internal(kind);
        i = i + 1;
    }
    print("served ");
    print_num(count);
    print(" requests\n");
    return 0;
}
