// git-lite: the Git analogue. Implements init/add/commit/log/diff/check-head
// subcommands over the simulated filesystem. Seeded with the five Git
// defects of Table 1:
//
//   * git-setenv-env     — cmd_commit ignores a failed setenv and records
//                          the commit without its author (silent data loss);
//   * git-readdir-null   — cmd_log passes opendir's unchecked NULL result
//                          straight to readdir;
//   * git-xmerge-567/571 — two unchecked mallocs in xdl_merge;
//   * git-xpatience-191  — an unchecked malloc in xdl_patience.

// Store an object under /repo/.git/objects. The open is checked; the close
// is not (one of the paper's unchecked Git close sites).
int write_object(int name, int data) {
    int path[16];
    strcpy(path, "/repo/.git/objects/");
    strcat(path, name);
    int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0);
    if (fd == -1) { return -1; }
    write(fd, data, strlen(data));
    close(fd);
    return 0;
}

// Post-commit hook runner; its close is also unchecked.
int run_commit_hook() {
    int fd = open("/repo/.git/hook.log", O_WRONLY | O_CREAT | O_APPEND, 0);
    if (fd == -1) { return -1; }
    write(fd, "hook\n", 5);
    close(fd);
    return 0;
}

int cmd_init() {
    mkdir("/repo", 0);
    mkdir("/repo/.git", 0);
    mkdir("/repo/.git/objects", 0);
    write_object("head", "ref: main");
    print("initialized\n");
    return 0;
}

// Stage a file. This close IS checked — the well-behaved call site the
// Table 4 ground truth lists for close.
int cmd_add(int path) {
    int fd = open(path, O_RDONLY, 0);
    if (fd == -1) {
        print("add: cannot open input\n");
        return 1;
    }
    int buf[64];
    int n = read(fd, buf, 500);
    if (n < 0) { n = 0; }
    __store8(buf + n, 0);
    if (close(fd) == -1) {
        print("add: close failed\n");
        return 1;
    }
    write_object("staged", buf);
    print("added\n");
    return 0;
}

// Record a commit. BUG (git-setenv-env): the setenv return value is
// ignored; if it fails, the external hook and the record run with an
// incomplete environment and the commit silently loses its author.
int cmd_commit(int msg) {
    setenv("GIT_AUTHOR", "dev@example.com", 1);
    int author[8];
    int have_author = getenv_r("GIT_AUTHOR", author, 60);
    int record[32];
    strcpy(record, "commit ");
    strcat(record, msg);
    if (have_author > 0) {
        strcat(record, " by ");
        strcat(record, author);
    }
    write_object("commit", record);
    run_commit_hook();
    print("committed\n");
    return 0;
}

// List objects. BUG (git-readdir-null): opendir's result is not checked,
// so a failed opendir hands NULL to readdir.
int cmd_log() {
    int d = opendir("/repo/.git/objects");
    int n = 0;
    while (readdir(d) != 0) {
        n = n + 1;
    }
    closedir(d);
    print("objects: ");
    print_num(n);
    print("\n");
    return 0;
}

// The xdiff merge kernel. BUGS (git-xmerge-567, git-xmerge-571): neither
// allocation checks for NULL before the first store.
int xdl_merge(int lines_a, int lines_b) {
    int base = malloc(lines_a * 8 + 8);
    *base = lines_a;
    int side = malloc(lines_b * 8 + 8);
    *side = lines_b;
    int i = 1;
    while (i <= lines_a) {
        base[i] = i;
        i = i + 1;
    }
    i = 1;
    while (i <= lines_b) {
        side[i] = i + 1;
        i = i + 1;
    }
    return *base + *side;
}

// The patience-diff kernel. BUG (git-xpatience-191): unchecked malloc.
int xdl_patience(int lines) {
    int table = malloc(lines * 8 + 8);
    *table = lines;
    int i = 1;
    while (i <= lines) {
        table[i] = table[i - 1] + 1;
        i = i + 1;
    }
    return *table;
}

int cmd_diff(int a, int b) {
    int m = xdl_merge(a, b);
    int p = xdl_patience(a + b);
    print("diff: ");
    print_num(m + p);
    print("\n");
    return 0;
}

// Resolve the HEAD symlink with a checked readlink (Table 4 row).
int cmd_check_head() {
    int target[16];
    int n = readlink("/repo/.git/HEAD-link", target, 120);
    if (n == -1) {
        print("check-head: not a symlink\n");
        return 0;
    }
    __store8(target + n, 0);
    print("HEAD -> ");
    print(target);
    print("\n");
    return 0;
}

int main(int argc) {
    int cmd[8];
    if (argc < 1) {
        print("usage: git-lite <command>\n");
        return 1;
    }
    if (getenv_r("ARG0", cmd, 60) == -1) {
        print("usage: git-lite <command>\n");
        return 1;
    }
    int arg1[16];
    if (argc > 1) {
        if (getenv_r("ARG1", arg1, 120) == -1) {
            print("git-lite: bad argument\n");
            return 1;
        }
    }
    if (strcmp(cmd, "init") == 0) { return cmd_init(); }
    if (strcmp(cmd, "add") == 0) { return cmd_add(arg1); }
    if (strcmp(cmd, "commit") == 0) { return cmd_commit(arg1); }
    if (strcmp(cmd, "log") == 0) { return cmd_log(); }
    if (strcmp(cmd, "diff") == 0) {
        int arg2[8];
        if (getenv_r("ARG2", arg2, 60) == -1) {
            print("git-lite: bad argument\n");
            return 1;
        }
        return cmd_diff(atoi(arg1), atoi(arg2));
    }
    if (strcmp(cmd, "check-head") == 0) { return cmd_check_head(); }
    print("unknown command\n");
    return 1;
}
