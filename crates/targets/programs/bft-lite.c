// bft-lite: the PBFT analogue. Runs either as a replica ("replica <id>
// <idle-budget>") or as the client ("client <requests> <timeout>") on the
// shared simulated network; the harness in lfi-targets wires 4 replicas and
// one client together. Seeded with the two PBFT defects of Table 1:
//
//   * pbft-recvfrom    — the startup receive's error return is not checked
//     and the NULL message object is parsed;
//   * pbft-fopen-fwrite — write_checkpoint passes fopen's unchecked NULL
//     straight to fwrite.

int my_id = 0;

// Copy a received datagram into a fresh message object; returns NULL for
// bogus sizes, like the real codebase's message constructor.
int msg_dup(int buf, int n) {
    if (n <= 0) { return 0; }
    int m = malloc(n + 8);
    if (m == 0) { return 0; }
    memcpy(m, buf, n);
    __store8(m + n, 0);
    return m;
}

// Wait for the harness's startup hello (queued before the replica runs).
// BUG (pbft-recvfrom): the recvfrom error return is not checked, so a
// failed receive yields a NULL message object that is parsed anyway.
int await_startup(int s) {
    int buf[16];
    int src[2];
    int n = recvfrom(s, buf, 100, src);
    int m = msg_dup(buf, n);
    return __load8(m);
}

// Persist a checkpoint. BUG (pbft-fopen-fwrite): fopen's NULL return is
// not checked before fwrite dereferences the FILE object.
int write_checkpoint(int seq) {
    int name[8];
    strcpy(name, "/ckpt/r");
    int digits[4];
    itoa(my_id, digits);
    strcat(name, digits);
    int f = fopen(name, "w");
    fwrite("chk ", 1, 4, f);
    int seqtxt[4];
    itoa(seq, seqtxt);
    fwrite(seqtxt, 1, strlen(seqtxt), f);
    fclose(f);
    return 0;
}

int replica_main(int id, int idle_budget) {
    my_id = id;
    int s = socket(0, 0, 0);
    if (s == -1) { return 1; }
    if (bind(s, 5000 + id) == -1) { return 1; }
    await_startup(s);
    int buf[64];
    int src[2];
    int idle = 0;
    int handled = 0;
    while (idle < idle_budget) {
        int n = recvfrom(s, buf, 400, src);
        if (n <= 0) {
            idle = idle + 1;
            continue;
        }
        idle = 0;
        __store8(buf + n, 0);
        int seq = atoi(buf);
        handled = handled + 1;
        if (handled % 4 == 0) {
            write_checkpoint(seq);
        }
        int out[8];
        int len = itoa(seq, out);
        sendto(s, out, len, 99, 6000);
    }
    return 0;
}

// Issue one request to every replica and wait for f+1 = 2 matching replies
// from distinct replicas, retransmitting on timeout.
int run_request(int s, int r, int timeout) {
    int out[4];
    int len = itoa(r, out);
    int buf[16];
    int src[2];
    int seen[8];
    int matching = 0;
    int attempts = 0;
    while (attempts < 50) {
        int i = 1;
        while (i <= 4) {
            sendto(s, out, len, i, 5000 + i);
            i = i + 1;
        }
        int waited = 0;
        while (waited < timeout) {
            int n = recvfrom(s, buf, 100, src);
            if (n <= 0) {
                waited = waited + 1;
                continue;
            }
            __store8(buf + n, 0);
            if (atoi(buf) == r && src[0] >= 1 && src[0] <= 4) {
                if (seen[src[0]] == 0) {
                    seen[src[0]] = 1;
                    matching = matching + 1;
                    if (matching >= 2) { return 1; }
                }
            }
        }
        attempts = attempts + 1;
    }
    return 0;
}

int client_main(int requests, int timeout) {
    int s = socket(0, 0, 0);
    if (s == -1) { exit(0); }
    if (bind(s, 6000) == -1) { exit(0); }
    int completed = 0;
    int r = 0;
    while (r < requests) {
        completed = completed + run_request(s, r, timeout);
        r = r + 1;
    }
    print("completed ");
    print_num(completed);
    print(" requests\n");
    exit(completed);
    return 0;
}

int main(int argc) {
    int role[8];
    int a1[8];
    int a2[8];
    if (argc < 3) { return 1; }
    if (getenv_r("ARG0", role, 60) == -1) { return 1; }
    if (getenv_r("ARG1", a1, 60) == -1) { return 1; }
    if (getenv_r("ARG2", a2, 60) == -1) { return 1; }
    if (strcmp(role, "replica") == 0) {
        return replica_main(atoi(a1), atoi(a2));
    }
    if (strcmp(role, "client") == 0) {
        return client_main(atoi(a1), atoi(a2));
    }
    return 1;
}
