// bind-lite: the BIND analogue. A small DNS-style server that loads a zone
// file, answers queries over the simulated network, and exposes a statistics
// channel rendered with libxml-lite. Seeded with the two BIND defects of
// Table 1:
//
//   * bind-xml-writer — stats_channel uses the writer returned by
//     xml_new_writer without checking it for NULL;
//   * bind-dst-lib-init — dst_lib_init checks its malloc, but the recovery
//     path trips an assertion (abort), i.e. the recovery code itself is the
//     bug.

int zone_keys[16];
int zone_values[16];
int zone_count = 0;

// The DST (crypto) subsystem bootstrap. The malloc IS checked, but the
// error path's sanity check aborts — the paper's "incorrectly handled
// malloc return value in dst_lib_init".
int dst_lib_init() {
    int key = malloc(64);
    if (key == 0) {
        assert_true(0, "dst_lib_init: key table must exist");
        return -1;
    }
    *key = 777;
    return 0;
}

// Load zone records (16 bytes each: 8-byte key string, 8-byte value
// string). Both the open and the close are checked — load_zone is the
// well-written recovery code the paper's Table 4 row expects.
int load_zone() {
    int fd = open("/etc/bind/zone.db", O_RDONLY, 0);
    if (fd == -1) {
        print("cannot open zone file\n");
        exit(1);
    }
    int rec[2];
    int n = read(fd, rec, 16);
    while (n == 16) {
        zone_keys[zone_count] = atoi(rec);
        zone_values[zone_count] = atoi(rec + 8);
        zone_count = zone_count + 1;
        n = read(fd, rec, 16);
    }
    if (close(fd) == -1) {
        print("warning: zone file close failed\n");
    }
    return zone_count;
}

// Answer one query: look the key up and reply with its value, or NXDOMAIN.
int answer_query(int s, int q, int node, int port) {
    int key = atoi(q);
    int out[8];
    int i = 0;
    while (i < zone_count) {
        if (zone_keys[i] == key) {
            int len = itoa(zone_values[i], out);
            sendto(s, out, len, node, port);
            return 1;
        }
        i = i + 1;
    }
    strcpy(out, "NXDOMAIN");
    sendto(s, out, 8, node, port);
    return 0;
}

// The statistics channel. BUG (bind-xml-writer): the writer returned by
// xml_new_writer is used without a NULL check, so an allocation failure in
// the library crashes the server while a user retrieves statistics.
int stats_channel(int s, int node, int port) {
    int w = xml_new_writer();
    xml_writer_add(w, "zones", zone_count);
    xml_writer_add(w, "workers", 1);
    int len = xml_writer_end(w);
    sendto(s, w, len, node, port);
    return 0;
}

// Dump server state; the open is checked but the close is not (the paper's
// unchecked close in BIND's dump writer).
int write_dump(int queries) {
    int fd = open("/var/bind/named.dump", O_WRONLY | O_CREAT | O_TRUNC, 0);
    if (fd == -1) { return -1; }
    int out[8];
    int len = itoa(queries, out);
    write(fd, out, len);
    close(fd);
    return 0;
}

// Journal cleanup with a checked unlink (Table 4 row).
int cleanup_journal() {
    if (unlink("/var/bind/journal") == -1) {
        print("journal cleanup failed\n");
        return -1;
    }
    return 0;
}

// Serve `requests` datagrams (queries or STATS requests); returns the
// number of data queries answered.
int serve(int requests) {
    int s = socket(0, 0, 0);
    if (s == -1) { exit(2); }
    if (bind(s, 53) == -1) { exit(2); }
    int buf[64];
    int src[2];
    int served = 0;
    int queries = 0;
    int idle = 0;
    while (served < requests && idle < 20000) {
        int n = recvfrom(s, buf, 500, src);
        if (n <= 0) {
            idle = idle + 1;
            continue;
        }
        idle = 0;
        __store8(buf + n, 0);
        served = served + 1;
        if (strcmp(buf, "STATS") == 0) {
            stats_channel(s, src[0], src[1]);
        } else {
            queries = queries + answer_query(s, buf, src[0], src[1]);
        }
    }
    return queries;
}

int main(int argc) {
    int arg[8];
    int requests = 4;
    if (argc > 0) {
        if (getenv_r("ARG0", arg, 60) == -1) {
            print("bind-lite: bad arguments\n");
        } else {
            requests = atoi(arg);
        }
    }
    dst_lib_init();
    load_zone();
    int queries = serve(requests);
    write_dump(queries);
    cleanup_journal();
    print("served ");
    print_num(queries);
    print(" queries\n");
    return 0;
}
