//! Multi-process harness for `bft-lite`: four replicas plus one client on a
//! shared simulated network, each with its own injection engine (all engines
//! share the distributed trigger controller when one is registered).
//!
//! This harness backs the distributed experiments: the Table 1 PBFT bugs,
//! Figure 3 (slowdown under progressively worse "network conditions",
//! implemented as random injections into `sendto`/`recvfrom`), and the §7.3
//! denial-of-service study.

use lfi_core::{InjectionEngine, Scenario, TriggerRegistry};
use lfi_libc::build as build_libc;
use lfi_vm::{Datagram, Fault, Loader, Machine, NetHandle, ProcessConfig, RunExit, SimNet};

use crate::{bft_lite, standard_fs_setup};

/// Configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct BftClusterConfig {
    /// Number of replicas (the paper uses 4, i.e. f = 1).
    pub replicas: usize,
    /// Number of client requests to issue.
    pub requests: usize,
    /// Client retransmission timeout, in polling iterations.
    pub client_timeout: i64,
    /// Replica idle budget before it shuts down, in polling iterations.
    pub replica_idle: i64,
    /// RNG seed (propagated to every node).
    pub seed: u64,
    /// The injection scenario applied to every node.
    pub scenario: Scenario,
    /// Trigger registry used to build each node's engine (register the
    /// `DistributedTrigger` controller here).
    pub registry: TriggerRegistry,
    /// Global instruction budget across all nodes.
    pub budget: u64,
    /// Round-robin slice per node, in instructions.
    pub slice: u64,
}

impl Default for BftClusterConfig {
    fn default() -> Self {
        BftClusterConfig {
            replicas: 4,
            requests: 8,
            client_timeout: 300,
            replica_idle: 4000,
            seed: 1,
            scenario: Scenario::new(),
            registry: TriggerRegistry::default(),
            budget: 120_000_000,
            slice: 20_000,
        }
    }
}

/// Outcome of one cluster run.
#[derive(Debug)]
pub struct BftRunResult {
    /// Requests the client completed (got f+1 matching replies for).
    pub completed: i64,
    /// Maximum virtual time across all nodes — the cluster's makespan.
    pub virtual_time: u64,
    /// Requests per million virtual ticks (the throughput measure used for
    /// Figure 3 and the DoS study).
    pub throughput: f64,
    /// Crashes observed, as `(node id, fault)`.
    pub crashes: Vec<(i64, Fault)>,
    /// Total injections across all nodes.
    pub injections: u64,
    /// Client output.
    pub client_output: String,
}

const CLIENT_NODE: i64 = 99;
const BASE_PORT: i64 = 5000;
const CLIENT_PORT: i64 = 6000;

/// Run a bft-lite cluster under the given configuration.
pub fn run_bft_cluster(config: &BftClusterConfig) -> BftRunResult {
    let net = NetHandle::new(SimNet::new(config.seed));
    let libc = build_libc();
    let exe = bft_lite();

    // Pre-bind every endpoint so early datagrams are queued, not dropped.
    for replica in 1..=config.replicas as i64 {
        net.bind(replica, BASE_PORT + replica);
    }
    net.bind(CLIENT_NODE, CLIENT_PORT);

    // Startup synchronization expected by the replicas (see bft-lite.c).
    for replica in 1..=config.replicas as i64 {
        net.send(Datagram {
            from_node: 0,
            from_port: 0,
            to_node: replica,
            to_port: BASE_PORT + replica,
            payload: b"hello".to_vec(),
        });
    }

    let mut nodes: Vec<(i64, Machine, InjectionEngine)> = Vec::new();
    let make_node = |node_id: i64, args: Vec<String>| {
        let mut loader = Loader::new();
        loader.add_library(libc.clone());
        let engine =
            InjectionEngine::with_registry(config.scenario.clone(), config.registry.clone())
                .expect("scenario must compile");
        loader.interpose_all(engine.interposed_functions());
        let image = loader.load(exe.clone()).expect("bft-lite must load");
        let mut machine = Machine::new(
            image,
            ProcessConfig {
                node_id,
                seed: config.seed.wrapping_add(node_id as u64),
                args,
                ..ProcessConfig::default()
            },
        );
        machine.attach_net(net.clone());
        standard_fs_setup(&mut machine);
        (node_id, machine, engine)
    };

    for replica in 1..=config.replicas as i64 {
        nodes.push(make_node(
            replica,
            vec![
                "replica".to_string(),
                replica.to_string(),
                config.replica_idle.to_string(),
            ],
        ));
    }
    nodes.push(make_node(
        CLIENT_NODE,
        vec![
            "client".to_string(),
            config.requests.to_string(),
            config.client_timeout.to_string(),
        ],
    ));

    let mut crashes = Vec::new();
    let mut client_exit: Option<RunExit> = None;
    let mut spent: u64 = 0;
    while spent < config.budget {
        let mut any_progress = false;
        for (node_id, machine, engine) in nodes.iter_mut() {
            if machine.finished().is_some() {
                continue;
            }
            let before = machine.stats.instructions;
            let exit = machine.run(engine, config.slice);
            spent += machine.stats.instructions - before;
            match &exit {
                // `Paused` cannot occur here (injection engines never
                // pause), but treat it like an idle slice if it ever does.
                RunExit::Budget | RunExit::Blocked | RunExit::Paused => {}
                RunExit::Fault(fault) => crashes.push((*node_id, fault.clone())),
                RunExit::Exited(_) => {
                    if *node_id == CLIENT_NODE {
                        client_exit = Some(exit.clone());
                    }
                }
            }
            if machine.stats.instructions != before {
                any_progress = true;
            }
        }
        // Stop once the client is done (or everything is stuck).
        if client_exit.is_some() || !any_progress {
            break;
        }
    }

    let client = nodes
        .iter()
        .find(|(id, _, _)| *id == CLIENT_NODE)
        .expect("client node exists");
    let completed = match client_exit {
        Some(RunExit::Exited(code)) => code,
        _ => 0,
    };
    let virtual_time = nodes.iter().map(|(_, m, _)| m.clock()).max().unwrap_or(0);
    let injections: u64 = nodes
        .iter()
        .map(|(_, _, e)| e.log.injection_count() as u64)
        .sum();
    let throughput = if virtual_time > 0 {
        completed as f64 * 1_000_000.0 / virtual_time as f64
    } else {
        0.0
    };
    BftRunResult {
        completed,
        virtual_time,
        throughput,
        crashes,
        injections,
        client_output: client.1.output_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_completes_requests_without_injection() {
        let result = run_bft_cluster(&BftClusterConfig {
            requests: 6,
            ..BftClusterConfig::default()
        });
        assert!(
            result.completed >= 5,
            "expected most requests to complete, got {} (output: {})",
            result.completed,
            result.client_output
        );
        assert!(result.crashes.is_empty(), "crashes: {:?}", result.crashes);
        assert!(result.virtual_time > 0);
        assert!(result.throughput > 0.0);
        assert_eq!(result.injections, 0);
    }
}
