//! Target applications for the LFI evaluation.
//!
//! The paper evaluates LFI on BIND, MySQL, Git, PBFT and (for overhead)
//! Apache. This crate provides the analogues used by the reproduction:
//! `bind-lite`, `db-lite`, `git-lite`, `bft-lite` and `httpd-lite`, written in
//! mini-C (see `programs/*.c`), each seeded with the corresponding Table 1
//! defects and shipped with the workloads the experiments drive them with.

use std::sync::OnceLock;

use lfi_cc::Compiler;
use lfi_obj::{Module, ModuleKind};
use lfi_vm::{Machine, NetHandle};

pub mod bft;
pub mod bugs;
pub mod truth;
pub mod workloads;

pub use bft::{run_bft_cluster, BftClusterConfig, BftRunResult};
pub use bugs::{KnownBug, KNOWN_BUGS};
pub use truth::{ground_truth, GroundTruth};
pub use workloads::{BindWorkload, FsSetupWorkload, HttpdWorkload};

fn compile_target(name: &str, kind: ModuleKind, libs: &[&str], file: &str, source: &str) -> Module {
    let mut compiler = Compiler::new(name, kind);
    for lib in libs {
        compiler = compiler.needs(*lib);
    }
    compiler
        .add_source(file, source)
        .compile()
        .unwrap_or_else(|e| panic!("target `{name}` must compile: {e}"))
}

macro_rules! cached_target {
    ($fn_name:ident, $name:literal, $kind:expr, $libs:expr, $file:literal) => {
        /// Build (and cache) this target module.
        pub fn $fn_name() -> Module {
            static CACHE: OnceLock<Module> = OnceLock::new();
            CACHE
                .get_or_init(|| {
                    compile_target(
                        $name,
                        $kind,
                        $libs,
                        $file,
                        include_str!(concat!("../programs/", $file)),
                    )
                })
                .clone()
        }
    };
}

cached_target!(
    libxml_lite,
    "libxml",
    ModuleKind::SharedLib,
    &["libc"],
    "libxml-lite.c"
);
cached_target!(
    bind_lite,
    "bind-lite",
    ModuleKind::Executable,
    &["libc", "libxml"],
    "bind-lite.c"
);
cached_target!(
    git_lite,
    "git-lite",
    ModuleKind::Executable,
    &["libc"],
    "git-lite.c"
);
cached_target!(
    db_lite,
    "db-lite",
    ModuleKind::Executable,
    &["libc"],
    "db-lite.c"
);
cached_target!(
    bft_lite,
    "bft-lite",
    ModuleKind::Executable,
    &["libc"],
    "bft-lite.c"
);
cached_target!(
    httpd_lite,
    "httpd-lite",
    ModuleKind::Executable,
    &["libc"],
    "httpd-lite.c"
);

/// All target binaries with their names, for sweeps over every system.
pub fn all_targets() -> Vec<(&'static str, Module)> {
    vec![
        ("bind-lite", bind_lite()),
        ("git-lite", git_lite()),
        ("db-lite", db_lite()),
        ("bft-lite", bft_lite()),
        ("httpd-lite", httpd_lite()),
    ]
}

/// Prepare the filesystem every target expects (configuration files, data
/// directories, web content, repository layout).
pub fn standard_fs_setup(machine: &mut Machine) {
    let fs = machine.fs_mut();
    fs.mkdir_all("/etc/bind");
    // Zone records: 16 bytes each (8-byte key string, 8-byte value string).
    let mut zone = Vec::new();
    for (key, value) in [(10, 70), (11, 71), (12, 72), (13, 73)] {
        let mut rec = format!("{key}").into_bytes();
        rec.resize(8, 0);
        let mut val = format!("{value}").into_bytes();
        val.resize(8, 0);
        zone.extend_from_slice(&rec);
        zone.extend_from_slice(&val);
    }
    fs.write_file("/etc/bind/zone.db", &zone).unwrap();
    fs.mkdir_all("/var/bind");
    fs.write_file("/var/bind/journal", b"journal").unwrap();

    fs.mkdir_all("/repo/.git/objects");
    fs.write_file("/repo/README.md", b"hello repository\n")
        .unwrap();
    fs.write_file("/repo/main.c", b"int main() { return 0; }\n")
        .unwrap();
    fs.write_file("/repo/.git/HEAD", b"ref: main\n").unwrap();
    let _ = fs.symlink("/repo/.git/HEAD", "/repo/.git/HEAD-link");

    fs.mkdir_all("/data");
    fs.write_file("/data/table.myd", &vec![7u8; 1024]).unwrap();
    fs.mkdir_all("/share");
    fs.write_file("/share/errmsg.sys", b"ER_OK\0ER_DUP\0ER_LOCK\0")
        .unwrap();

    fs.mkdir_all("/ckpt");

    fs.mkdir_all("/www");
    fs.write_file("/www/index.html", &vec![b'x'; 1000]).unwrap();
    fs.write_file("/www/page.php", b"<?php compute(); ?>")
        .unwrap();
}

/// Convenience: a controller pre-loaded with the simulated libc, the
/// libxml-lite shared library, and the stock trigger registry, ready to run
/// any of the targets.
pub fn standard_controller() -> lfi_core::Controller {
    let mut controller = lfi_core::Controller::new();
    controller.add_library(lfi_libc::build());
    controller.add_library(libxml_lite());
    controller
}

/// Convenience: a controller as above, already attached to a network handle
/// (needed by the server-style targets).
pub fn networked_controller(net: NetHandle) -> lfi_core::Controller {
    let mut controller = standard_controller();
    controller.attach_net(net);
    controller
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_targets_compile_and_validate() {
        for (name, module) in all_targets() {
            assert_eq!(module.validate(), Ok(()), "{name} must validate");
            assert!(module.func_export("main").is_some(), "{name} needs main");
        }
    }

    #[test]
    fn targets_import_the_libc_functions_the_paper_injects_into() {
        let bind = bind_lite();
        for f in [
            "malloc", "open", "read", "close", "unlink", "sendto", "recvfrom",
        ] {
            assert!(
                bind.imported_functions().iter().any(|i| i == f),
                "bind-lite must import {f}"
            );
        }
        let git = git_lite();
        for f in ["malloc", "opendir", "readdir", "setenv", "readlink"] {
            assert!(
                git.imported_functions().iter().any(|i| i == f),
                "git-lite must import {f}"
            );
        }
        let db = db_lite();
        for f in ["pthread_mutex_unlock", "close", "fcntl", "read"] {
            assert!(
                db.imported_functions().iter().any(|i| i == f),
                "db-lite must import {f}"
            );
        }
        let bft = bft_lite();
        for f in ["recvfrom", "sendto", "fopen", "fwrite"] {
            assert!(
                bft.imported_functions().iter().any(|i| i == f),
                "bft-lite must import {f}"
            );
        }
    }
}
