//! Metadata describing the seeded Table 1 defects, used by the experiment
//! harness to match observed crashes back to the paper's bug list.

use serde::Serialize;

/// One of the eleven previously-unknown bugs from Table 1, as seeded in the
/// corresponding `*-lite` target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct KnownBug {
    /// Stable identifier used in reports (e.g. `bind-xml-writer`).
    pub id: &'static str,
    /// The system it lives in (paper column "System").
    pub system: &'static str,
    /// Paper description (abridged).
    pub description: &'static str,
    /// The library function whose injected failure exposes the bug.
    pub injected_function: &'static str,
    /// The target function in whose body the failure manifests (matched
    /// against crash backtraces / injection call sites).
    pub manifests_in: &'static str,
    /// Whether the bug manifests as a crash/abort (true) or as silent data
    /// loss detected by inspecting outputs (false).
    pub crashes: bool,
}

/// The eleven bugs of Table 1.
pub const KNOWN_BUGS: &[KnownBug] = &[
    KnownBug {
        id: "bind-xml-writer",
        system: "BIND",
        description: "Crash if the XML writer allocation (xmlNewTextWriterDoc analogue) fails while a user retrieves statistics over the network",
        injected_function: "xml_new_writer",
        manifests_in: "stats_channel",
        crashes: true,
    },
    KnownBug {
        id: "bind-dst-lib-init",
        system: "BIND",
        description: "Abort due to incorrectly handled malloc return value in dst_lib_init (recovery path trips an assertion)",
        injected_function: "malloc",
        manifests_in: "dst_lib_init",
        crashes: true,
    },
    KnownBug {
        id: "mysql-double-unlock",
        system: "MySQL",
        description: "Abort after a double mutex unlock, due to a failed close in mi_create's error handling",
        injected_function: "close",
        manifests_in: "mi_create",
        crashes: true,
    },
    KnownBug {
        id: "mysql-errmsg-read",
        system: "MySQL",
        description: "Crash due to a failed read (EIO) while processing errmsg.sys",
        injected_function: "read",
        manifests_in: "init_errmsg",
        crashes: true,
    },
    KnownBug {
        id: "git-setenv-env",
        system: "Git",
        description: "Data loss caused by running an external command with an incomplete environment, due to failed setenv",
        injected_function: "setenv",
        manifests_in: "cmd_commit",
        crashes: false,
    },
    KnownBug {
        id: "git-readdir-null",
        system: "Git",
        description: "Crash due to calling readdir with the NULL pointer returned by a previously failed opendir",
        injected_function: "opendir",
        manifests_in: "cmd_log",
        crashes: true,
    },
    KnownBug {
        id: "git-xmerge-567",
        system: "Git",
        description: "Crash due to unhandled malloc return value in xdiff/xmerge.c (first allocation)",
        injected_function: "malloc",
        manifests_in: "xdl_merge",
        crashes: true,
    },
    KnownBug {
        id: "git-xmerge-571",
        system: "Git",
        description: "Crash due to unhandled malloc return value in xdiff/xmerge.c (second allocation)",
        injected_function: "malloc",
        manifests_in: "xdl_merge",
        crashes: true,
    },
    KnownBug {
        id: "git-xpatience-191",
        system: "Git",
        description: "Crash due to unhandled malloc return value in xdiff/xpatience.c",
        injected_function: "malloc",
        manifests_in: "xdl_patience",
        crashes: true,
    },
    KnownBug {
        id: "pbft-recvfrom",
        system: "PBFT",
        description: "Crash caused by a failed recvfrom call",
        injected_function: "recvfrom",
        manifests_in: "replica_main",
        crashes: true,
    },
    KnownBug {
        id: "pbft-fopen-fwrite",
        system: "PBFT",
        description: "Crash due to calling fwrite with the NULL pointer returned by a previously failed fopen (checkpoint writer)",
        injected_function: "fopen",
        manifests_in: "write_checkpoint",
        crashes: true,
    },
];

/// Bugs belonging to one system.
pub fn bugs_for(system: &str) -> Vec<&'static KnownBug> {
    KNOWN_BUGS.iter().filter(|b| b.system == system).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_eleven_bugs_with_the_papers_distribution() {
        assert_eq!(KNOWN_BUGS.len(), 11);
        assert_eq!(bugs_for("BIND").len(), 2);
        assert_eq!(bugs_for("MySQL").len(), 2);
        assert_eq!(bugs_for("Git").len(), 5);
        assert_eq!(bugs_for("PBFT").len(), 2);
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<_> = KNOWN_BUGS.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), KNOWN_BUGS.len());
    }
}
