//! Workloads that drive the target applications.

use lfi_core::Workload;
use lfi_vm::{Datagram, HookHandler, Machine, NetHandle, RunExit};

use crate::standard_fs_setup;

/// A workload that only prepares the standard filesystem layout and lets the
/// program run to completion (used for git-lite, db-lite and httpd-lite,
/// whose inputs arrive via program arguments and files).
#[derive(Debug, Default, Clone, Copy)]
pub struct FsSetupWorkload;

impl Workload for FsSetupWorkload {
    fn name(&self) -> &str {
        "fs-setup"
    }

    fn setup(&mut self, machine: &mut Machine) {
        standard_fs_setup(machine);
    }
}

/// Workload for `httpd-lite`: standard filesystem plus nothing else — the
/// request count and type are program arguments. Present as its own type so
/// experiment code reads naturally.
pub type HttpdWorkload = FsSetupWorkload;

/// Workload for `bind-lite`: prepares the filesystem and queues DNS queries
/// (and optionally a statistics request) on the server's socket before the
/// server starts, playing the role of the external clients.
#[derive(Debug, Clone)]
pub struct BindWorkload {
    /// Shared network the server is attached to.
    pub net: NetHandle,
    /// Keys to query.
    pub queries: Vec<i64>,
    /// Whether to also request the statistics channel (exercises the
    /// xmlNewTextWriterDoc-style bug site).
    pub include_stats: bool,
}

impl BindWorkload {
    /// A typical client session: three lookups plus a statistics request.
    pub fn typical(net: NetHandle) -> BindWorkload {
        BindWorkload {
            net,
            queries: vec![10, 11, 12],
            include_stats: true,
        }
    }

    /// Total number of requests this workload queues.
    pub fn request_count(&self) -> usize {
        self.queries.len() + usize::from(self.include_stats)
    }
}

impl Workload for BindWorkload {
    fn name(&self) -> &str {
        "bind-client"
    }

    fn setup(&mut self, machine: &mut Machine) {
        standard_fs_setup(machine);
        let server_node = machine.node_id();
        // The harness plays the client: node 90, port 1000.
        self.net.bind(90, 1000);
        self.net.bind(server_node, 53);
        for key in &self.queries {
            self.net.send(Datagram {
                from_node: 90,
                from_port: 1000,
                to_node: server_node,
                to_port: 53,
                payload: key.to_string().into_bytes(),
            });
        }
        if self.include_stats {
            self.net.send(Datagram {
                from_node: 90,
                from_port: 1000,
                to_node: server_node,
                to_port: 53,
                payload: b"STATS".to_vec(),
            });
        }
    }

    fn drive(
        &mut self,
        machine: &mut Machine,
        handler: &mut dyn HookHandler,
        budget: u64,
    ) -> RunExit {
        machine.run(handler, budget)
    }
}

#[cfg(test)]
mod tests {
    use lfi_core::{TestConfig, TestOutcome};

    use crate::{
        bind_lite, db_lite, git_lite, httpd_lite, networked_controller, standard_controller,
    };

    use super::*;

    #[test]
    fn bind_lite_serves_queries_without_injection() {
        let net = NetHandle::default();
        let controller = networked_controller(net.clone());
        let mut workload = BindWorkload::typical(net.clone());
        let config = TestConfig {
            args: vec![workload.request_count().to_string()],
            ..TestConfig::default()
        };
        let report = controller
            .run_test(
                &bind_lite(),
                &lfi_core::Scenario::new(),
                &mut workload,
                &config,
            )
            .expect("run");
        assert_eq!(report.outcome, TestOutcome::Passed, "{}", report.output);
        assert!(report.output.contains("served 3 queries"));
        // The client got its three answers plus the statistics blob.
        let mut replies = 0;
        while net.recv(90, 1000).is_some() {
            replies += 1;
        }
        assert_eq!(replies, 4);
    }

    #[test]
    fn git_lite_add_and_commit_work_without_injection() {
        let controller = standard_controller();
        for (args, expect_in_output) in [
            (vec!["init".to_string()], ""),
            (vec!["add".into(), "/repo/README.md".into()], ""),
            (vec!["commit".into(), "first".into()], "committed"),
            (vec!["log".into()], "objects:"),
            (vec!["diff".into(), "3".into(), "4".into()], "diff:"),
            (vec!["check-head".into()], ""),
        ] {
            let config = TestConfig {
                args: args.clone(),
                ..TestConfig::default()
            };
            let report = controller
                .run_test(
                    &git_lite(),
                    &lfi_core::Scenario::new(),
                    &mut FsSetupWorkload,
                    &config,
                )
                .expect("run");
            assert_eq!(
                report.outcome,
                TestOutcome::Passed,
                "git-lite {args:?}: {}",
                report.output
            );
            assert!(report.output.contains(expect_in_output));
        }
    }

    #[test]
    fn db_lite_oltp_and_merge_big_work_without_injection() {
        let controller = standard_controller();
        for args in [
            vec!["bootstrap".to_string()],
            vec!["oltp".into(), "20".into(), "1".into()],
            vec!["oltp".into(), "20".into(), "0".into()],
            vec!["merge-big".into(), "4".into()],
        ] {
            let config = TestConfig {
                args: args.clone(),
                ..TestConfig::default()
            };
            let report = controller
                .run_test(
                    &db_lite(),
                    &lfi_core::Scenario::new(),
                    &mut FsSetupWorkload,
                    &config,
                )
                .expect("run");
            assert_eq!(
                report.outcome,
                TestOutcome::Passed,
                "db-lite {args:?}: {}",
                report.output
            );
        }
    }

    #[test]
    fn httpd_lite_serves_static_and_php_workloads() {
        let controller = standard_controller();
        for kind in ["1", "2"] {
            let config = TestConfig {
                args: vec!["25".to_string(), kind.to_string()],
                ..TestConfig::default()
            };
            let report = controller
                .run_test(
                    &httpd_lite(),
                    &lfi_core::Scenario::new(),
                    &mut FsSetupWorkload,
                    &config,
                )
                .expect("run");
            assert_eq!(report.outcome, TestOutcome::Passed, "{}", report.output);
            assert!(report.output.contains("served 25 requests"));
        }
    }
}
