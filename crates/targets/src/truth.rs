//! Ground truth for the call-site analysis accuracy experiment (Table 4).
//!
//! The paper manually inspected the source of BIND, Git and PBFT to decide,
//! for each call site, whether its error return really is checked. Because we
//! author the `*-lite` targets, the ground truth is known by construction:
//! for every (program, library function) pair in Table 4 we list which
//! *caller functions* contain call sites that check the error return and
//! which do not.

use serde::Serialize;

/// Ground truth for one (program, library function) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GroundTruth {
    /// Target program name.
    pub program: &'static str,
    /// Library function whose call sites are listed.
    pub function: &'static str,
    /// Caller functions whose call sites check the error return.
    pub checking_callers: &'static [&'static str],
    /// Caller functions whose call sites do not check the error return.
    pub unchecked_callers: &'static [&'static str],
}

/// The ground truth backing the Table 4 reproduction. The rows mirror the
/// paper's (BIND: malloc/unlink/open/close, Git: malloc/close/readlink,
/// PBFT: fopen), adapted to the `*-lite` sources.
pub fn ground_truth() -> Vec<GroundTruth> {
    vec![
        GroundTruth {
            program: "bind-lite",
            function: "malloc",
            checking_callers: &["dst_lib_init"],
            unchecked_callers: &[],
        },
        GroundTruth {
            program: "bind-lite",
            function: "unlink",
            checking_callers: &["cleanup_journal"],
            unchecked_callers: &[],
        },
        GroundTruth {
            program: "bind-lite",
            function: "open",
            checking_callers: &["load_zone", "write_dump"],
            unchecked_callers: &[],
        },
        GroundTruth {
            program: "bind-lite",
            function: "close",
            checking_callers: &["load_zone"],
            unchecked_callers: &["write_dump"],
        },
        GroundTruth {
            program: "git-lite",
            function: "malloc",
            checking_callers: &[],
            unchecked_callers: &["xdl_merge", "xdl_patience"],
        },
        GroundTruth {
            program: "git-lite",
            function: "close",
            checking_callers: &["cmd_add"],
            unchecked_callers: &["write_object", "run_commit_hook"],
        },
        GroundTruth {
            program: "git-lite",
            function: "readlink",
            checking_callers: &["cmd_check_head"],
            unchecked_callers: &[],
        },
        GroundTruth {
            program: "bft-lite",
            function: "fopen",
            checking_callers: &[],
            unchecked_callers: &["write_checkpoint"],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_matches_the_papers_function_rows() {
        let rows = ground_truth();
        assert_eq!(rows.len(), 8);
        let bind_rows: Vec<_> = rows.iter().filter(|r| r.program == "bind-lite").collect();
        assert_eq!(bind_rows.len(), 4);
        assert!(rows
            .iter()
            .any(|r| r.program == "bft-lite" && r.function == "fopen"));
    }

    #[test]
    fn every_listed_caller_exists_in_the_target_binary() {
        for row in ground_truth() {
            let module = crate::all_targets()
                .into_iter()
                .find(|(name, _)| *name == row.program)
                .map(|(_, m)| m)
                .expect("program exists");
            for caller in row.checking_callers.iter().chain(row.unchecked_callers) {
                assert!(
                    module.func_export(caller).is_some(),
                    "{}: caller `{caller}` not found",
                    row.program
                );
            }
        }
    }
}
